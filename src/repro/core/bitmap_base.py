"""Abstract interface shared by AFL's flat bitmap and BigMap.

A :class:`CoverageMap` is the per-execution ("local") trace store. The
fuzzing loop drives it through the operation sequence of paper §II-A2:

    reset → (target runs, emitting updates) → classify → compare → [hash]

Both implementations receive the same *keys*: integers in
``[0, map_size)`` produced by an instrumentation pipeline (plain AFL edge
hashes, N-gram hashes, ...). The difference is purely in how the backing
storage is organized and therefore what each operation has to touch —
which is the whole point of the paper.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .access import AccessLog, NullAccessLog
from .classify import classify_counts
from .compare import CompareResult, VirginMap
from .errors import KeyRangeError, MapSizeError, TraceShapeError

#: Counter overflow policies. AFL's 8-bit counters wrap silently; modern
#: forks saturate. Both are provided; ``saturate`` is the default.
COUNTER_SATURATE = "saturate"
COUNTER_WRAP = "wrap"


def _require_power_of_two(map_size: int) -> None:
    if map_size <= 0 or (map_size & (map_size - 1)) != 0:
        raise MapSizeError(
            f"map size must be a positive power of two, got {map_size}")


def aggregate_keys(keys: np.ndarray, counts: np.ndarray
                   ) -> Tuple[np.ndarray, np.ndarray]:
    """Combine duplicate keys, summing their counts.

    Distinct program edges whose IDs collide into the same map key must
    accumulate into one location — this is exactly the hash-collision
    aliasing the paper studies, so it must be modeled faithfully.

    Returns:
        ``(unique_keys, summed_counts)`` with ``unique_keys`` sorted.
    """
    if keys.ndim != 1 or counts.ndim != 1 or keys.shape != counts.shape:
        raise TraceShapeError(
            f"keys/counts must be equal-length 1-D arrays, got shapes "
            f"{keys.shape} and {counts.shape}")
    if keys.size == 0:
        return keys.astype(np.int64), counts.astype(np.int64)
    unique, inverse = np.unique(keys, return_inverse=True)
    # np.bincount(weights=) would accumulate in float64 and round-trip
    # through a cast; add.at keeps the sums exact in int64, matching
    # aggregate_keys_batch's explicit int64 prefix sums.
    summed = np.zeros(unique.size, dtype=np.int64)
    np.add.at(summed, inverse, np.asarray(counts, dtype=np.int64))
    return unique.astype(np.int64), summed


def aggregate_keys_batch(keys: np.ndarray, counts: np.ndarray,
                         offsets: np.ndarray, map_size: int,
                         *, return_segments: bool = False):
    """Per-segment :func:`aggregate_keys` over one flat key array.

    Trace ``i`` owns ``keys[offsets[i]:offsets[i+1]]``. Each segment is
    aggregated independently — duplicate keys within a segment sum
    their counts; identical keys in *different* segments stay separate.
    Within each output segment keys are sorted ascending, exactly like
    the scalar helper.

    Returns:
        ``(unique_keys, summed_counts, out_offsets)`` — flat aggregated
        arrays plus the new segment boundaries. With
        ``return_segments=True`` a fourth array carries the segment id
        of every flat output entry (a by-product of the aggregation
        pass; callers that need it avoid re-expanding the offsets).
    """
    n_seg = offsets.size - 1
    if keys.size == 0:
        empty = (keys.astype(np.int64), counts.astype(np.int64),
                 np.zeros(n_seg + 1, dtype=np.int64))
        if return_segments:
            return empty + (np.zeros(0, dtype=np.int64),)
        return empty
    seg = np.repeat(np.arange(n_seg, dtype=np.int64), np.diff(offsets))
    counts64 = np.asarray(counts, dtype=np.int64)
    # Sorting values beats argsort-then-gather by ~3x, so when counts
    # fit in the low 20 bits of a non-negative int64 (hit counts are
    # tiny — 1 + input_byte % loop_cap), pack (composite, count) into
    # one word and sort that. Equal composites still land adjacent
    # (count bits only order ties, whose counts just sum either way).
    cmax = int(counts64.max())
    if (0 <= int(counts64.min()) and cmax < (1 << 20)
            and n_seg * map_size <= (1 << 43)):
        # packed = (seg * map_size + keys) << 20 | counts, built
        # in place on the owned `seg` buffer to skip three temporaries.
        packed = seg
        packed *= np.int64(map_size) << np.int64(20)
        packed += keys.astype(np.int64) << np.int64(20)
        packed += counts64
        packed.sort()
        sorted_comp = packed >> np.int64(20)
        sorted_counts = packed & np.int64((1 << 20) - 1)
    else:
        # Hand-rolled unique: argsort + group-boundary prefix sums stay
        # in int64 and skip the inverse array np.unique would build.
        # Order among equal composites is irrelevant (counts just sum).
        composite = seg * np.int64(map_size) + keys
        order = np.argsort(composite)
        sorted_comp = composite[order]
        sorted_counts = counts64[order]
    neq = np.empty(sorted_comp.size, dtype=bool)
    neq[0] = True
    np.not_equal(sorted_comp[1:], sorted_comp[:-1], out=neq[1:])
    bounds = np.flatnonzero(neq)
    unique = sorted_comp[bounds]
    prefix = np.empty(sorted_counts.size + 1, dtype=np.int64)
    prefix[0] = 0
    np.cumsum(sorted_counts, out=prefix[1:])
    ends = np.concatenate([bounds[1:], [sorted_comp.size]])
    summed = prefix[ends] - prefix[bounds]
    if map_size & (map_size - 1) == 0:
        shift = np.int64(map_size.bit_length() - 1)
        out_seg = unique >> shift
        out_keys = unique & np.int64(map_size - 1)
    else:
        out_seg = unique // np.int64(map_size)
        out_keys = (unique - out_seg * np.int64(map_size)).astype(np.int64)
    out_offsets = np.searchsorted(
        out_seg, np.arange(n_seg + 1, dtype=np.int64)).astype(np.int64)
    if return_segments:
        return out_keys, summed, out_offsets, out_seg
    return out_keys, summed, out_offsets


def classified_counts(summed: np.ndarray, mode: str) -> np.ndarray:
    """Classified trace bytes a fresh map would hold after ``summed``.

    Every execution starts from a reset map, so the stored byte for a
    location is a pure function of that execution's summed hit count:
    saturate/wrap to ``uint8``, then bucket. This is what lets batched
    compare work from aggregated counts without materializing any map.
    """
    if mode == COUNTER_SATURATE:
        stored = np.minimum(summed, 255).astype(np.uint8)
    elif mode == COUNTER_WRAP:
        stored = (summed & 0xFF).astype(np.uint8)
    else:
        raise ValueError(f"unknown counter mode {mode!r}")
    return classify_counts(stored)


@dataclass
class BatchUpdate:
    """Aggregated, classified view of a batch of traces.

    Produced by :meth:`CoverageMap.update_batch`. Nothing here touches
    the coverage map itself — per-execution maps are reset-scoped, so
    the classified bytes are derivable from the counts alone (see
    :func:`classified_counts`); the map is only materialized for the
    rare traces that survive the batched compare pre-filter.

    Attributes:
        keys: flat per-segment-unique map keys, ascending per segment.
        summed: collision-aggregated hit counts aligned with ``keys``.
        classified: bucketed trace bytes aligned with ``keys``.
        offsets: segment boundaries (``n + 1`` entries).
        n_unique: distinct locations per trace (the cost model's
            ``unique_locations``).
        seg: optional cached segment id per flat entry (the aggregation
            pass produces it for free; ``segment_ids`` falls back to
            expanding ``offsets`` when absent).
    """

    keys: np.ndarray
    summed: np.ndarray
    classified: np.ndarray
    offsets: np.ndarray
    n_unique: np.ndarray
    seg: Optional[np.ndarray] = None

    @property
    def n(self) -> int:
        return int(self.offsets.size - 1)

    def segment(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """(keys, summed) views for trace ``i``."""
        lo, hi = int(self.offsets[i]), int(self.offsets[i + 1])
        return self.keys[lo:hi], self.summed[lo:hi]

    def segment_ids(self) -> np.ndarray:
        """Segment index of every flat entry."""
        if self.seg is None:
            self.seg = np.repeat(np.arange(self.n, dtype=np.int64),
                                 np.diff(self.offsets))
        return self.seg


def apply_counts(store: np.ndarray, slots: np.ndarray, summed: np.ndarray,
                 mode: str) -> None:
    """Add ``summed`` hit counts into 8-bit ``store[slots]``.

    ``slots`` must be unique. Saturation clamps at 255 (sticky, like a
    per-increment saturating counter); wrap reduces mod 256 (like AFL's
    raw ``u8`` increments).
    """
    current = store[slots].astype(np.int64) + summed
    if mode == COUNTER_SATURATE:
        store[slots] = np.minimum(current, 255).astype(np.uint8)
    elif mode == COUNTER_WRAP:
        store[slots] = (current & 0xFF).astype(np.uint8)
    else:
        raise ValueError(f"unknown counter mode {mode!r}")


class CoverageMap(ABC):
    """Per-execution coverage store: the fuzzer's ``trace_bits``."""

    def __init__(self, map_size: int, *,
                 counter_mode: str = COUNTER_SATURATE,
                 log: Optional[AccessLog] = None,
                 validate_keys: bool = True) -> None:
        _require_power_of_two(map_size)
        if counter_mode not in (COUNTER_SATURATE, COUNTER_WRAP):
            raise ValueError(f"unknown counter mode {counter_mode!r}")
        self.map_size = map_size
        self.counter_mode = counter_mode
        self.log = log if log is not None else NullAccessLog()
        self._validate_keys = validate_keys

    # -- operations ------------------------------------------------------

    @abstractmethod
    def reset(self) -> None:
        """Clear per-execution state ahead of the next test case."""

    @abstractmethod
    def update(self, keys: np.ndarray, counts: np.ndarray) -> int:
        """Record that each ``keys[i]`` was traversed ``counts[i]`` times.

        Returns:
            Number of distinct map locations touched (after collision
            aliasing) — the ``unique_locations`` of the cost model.
        """

    @abstractmethod
    def classify(self) -> None:
        """Bucket the stored hit counts in place."""

    @abstractmethod
    def compare(self, virgin: VirginMap) -> CompareResult:
        """Merge the (already classified) trace into ``virgin``."""

    @abstractmethod
    def hash(self) -> int:
        """Hash of the classified trace, stable across unrelated growth."""

    def classify_and_compare(self, virgin: VirginMap) -> CompareResult:
        """Merged classify+compare sweep (paper §IV-E optimization).

        Functionally identical to ``classify(); compare(virgin)`` but
        performs (and accounts) a single pass over the active region,
        halving the sweep cost. Subclasses override the accounting; the
        default implementation simply chains the two steps.
        """
        self.classify()
        return self.compare(virgin)

    # -- batched pipeline -------------------------------------------------

    def update_batch(self, keys: np.ndarray, counts: np.ndarray,
                     offsets: np.ndarray) -> BatchUpdate:
        """Aggregate + classify a whole batch of traces at once.

        The flat ``keys``/``counts`` arrays hold one segment per trace
        (``offsets`` as in :class:`BatchExecResult`). Unlike
        :meth:`update` this does NOT touch the map: it computes, per
        trace, exactly what ``reset(); update(seg)`` would store and
        what ``classify()`` would bucket it to (see
        :func:`classified_counts`). Traces that turn out to need real
        map state (interesting / crash / hang) replay the scalar path.
        """
        self._check_keys(keys)
        u_keys, summed, u_off, u_seg = aggregate_keys_batch(
            keys, counts, offsets, self.map_size, return_segments=True)
        return BatchUpdate(
            keys=u_keys, summed=summed,
            classified=classified_counts(summed, self.counter_mode),
            offsets=u_off, n_unique=np.diff(u_off), seg=u_seg)

    def compare_batch(self, update: BatchUpdate,
                      virgin: VirginMap) -> np.ndarray:
        """Per-trace "could this be interesting?" flags (read-only).

        Conservative superset of :meth:`compare`'s ``interesting``
        against the virgin map *as it is now*: virgin bits only clear
        monotonically, so a trace flagged ``False`` here stays
        uninteresting no matter what earlier traces in the batch merge
        in the meantime. Flagged traces must replay the full scalar
        pipeline to learn the truth (and to perform the merge).
        """
        raise NotImplementedError

    def update_compare_batch(self, keys: np.ndarray, counts: np.ndarray,
                             offsets: np.ndarray, virgin: VirginMap
                             ) -> Tuple[BatchUpdate, np.ndarray]:
        """Fused :meth:`update_batch` + :meth:`compare_batch`.

        One pass produces both the aggregated/classified view and the
        conservative interest flags, so a cold batch (no new coverage,
        no crash or hang candidates) never takes a second pass over its
        keys. Subclasses fuse the virgin gather into the aggregation
        pass; this default simply chains the two methods and is
        guaranteed to return identical values.
        """
        update = self.update_batch(keys, counts, offsets)
        return update, self.compare_batch(update, virgin)

    # -- introspection ---------------------------------------------------

    @abstractmethod
    def active_bytes(self) -> int:
        """Bytes a full-map operation must sweep for this structure."""

    @abstractmethod
    def count_for_key(self, key: int) -> int:
        """Current stored (possibly classified) count for a map key."""

    @abstractmethod
    def nonzero_locations(self) -> np.ndarray:
        """Storage slots with a nonzero count (structure-native indexing)."""

    # -- shared helpers ---------------------------------------------------

    def _check_keys(self, keys: np.ndarray) -> None:
        if not self._validate_keys or keys.size == 0:
            return
        if int(keys.min()) < 0 or int(keys.max()) >= self.map_size:
            raise KeyRangeError(
                f"keys must lie in [0, {self.map_size}), got range "
                f"[{int(keys.min())}, {int(keys.max())}]")
