"""Abstract interface shared by AFL's flat bitmap and BigMap.

A :class:`CoverageMap` is the per-execution ("local") trace store. The
fuzzing loop drives it through the operation sequence of paper §II-A2:

    reset → (target runs, emitting updates) → classify → compare → [hash]

Both implementations receive the same *keys*: integers in
``[0, map_size)`` produced by an instrumentation pipeline (plain AFL edge
hashes, N-gram hashes, ...). The difference is purely in how the backing
storage is organized and therefore what each operation has to touch —
which is the whole point of the paper.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Tuple

import numpy as np

from .access import AccessLog, NullAccessLog
from .compare import CompareResult, VirginMap
from .errors import KeyRangeError, MapSizeError, TraceShapeError

#: Counter overflow policies. AFL's 8-bit counters wrap silently; modern
#: forks saturate. Both are provided; ``saturate`` is the default.
COUNTER_SATURATE = "saturate"
COUNTER_WRAP = "wrap"


def _require_power_of_two(map_size: int) -> None:
    if map_size <= 0 or (map_size & (map_size - 1)) != 0:
        raise MapSizeError(
            f"map size must be a positive power of two, got {map_size}")


def aggregate_keys(keys: np.ndarray, counts: np.ndarray
                   ) -> Tuple[np.ndarray, np.ndarray]:
    """Combine duplicate keys, summing their counts.

    Distinct program edges whose IDs collide into the same map key must
    accumulate into one location — this is exactly the hash-collision
    aliasing the paper studies, so it must be modeled faithfully.

    Returns:
        ``(unique_keys, summed_counts)`` with ``unique_keys`` sorted.
    """
    if keys.ndim != 1 or counts.ndim != 1 or keys.shape != counts.shape:
        raise TraceShapeError(
            f"keys/counts must be equal-length 1-D arrays, got shapes "
            f"{keys.shape} and {counts.shape}")
    if keys.size == 0:
        return keys.astype(np.int64), counts.astype(np.int64)
    unique, inverse = np.unique(keys, return_inverse=True)
    summed = np.bincount(inverse, weights=counts).astype(np.int64)
    return unique.astype(np.int64), summed


def apply_counts(store: np.ndarray, slots: np.ndarray, summed: np.ndarray,
                 mode: str) -> None:
    """Add ``summed`` hit counts into 8-bit ``store[slots]``.

    ``slots`` must be unique. Saturation clamps at 255 (sticky, like a
    per-increment saturating counter); wrap reduces mod 256 (like AFL's
    raw ``u8`` increments).
    """
    current = store[slots].astype(np.int64) + summed
    if mode == COUNTER_SATURATE:
        store[slots] = np.minimum(current, 255).astype(np.uint8)
    elif mode == COUNTER_WRAP:
        store[slots] = (current & 0xFF).astype(np.uint8)
    else:
        raise ValueError(f"unknown counter mode {mode!r}")


class CoverageMap(ABC):
    """Per-execution coverage store: the fuzzer's ``trace_bits``."""

    def __init__(self, map_size: int, *,
                 counter_mode: str = COUNTER_SATURATE,
                 log: Optional[AccessLog] = None,
                 validate_keys: bool = True) -> None:
        _require_power_of_two(map_size)
        if counter_mode not in (COUNTER_SATURATE, COUNTER_WRAP):
            raise ValueError(f"unknown counter mode {counter_mode!r}")
        self.map_size = map_size
        self.counter_mode = counter_mode
        self.log = log if log is not None else NullAccessLog()
        self._validate_keys = validate_keys

    # -- operations ------------------------------------------------------

    @abstractmethod
    def reset(self) -> None:
        """Clear per-execution state ahead of the next test case."""

    @abstractmethod
    def update(self, keys: np.ndarray, counts: np.ndarray) -> int:
        """Record that each ``keys[i]`` was traversed ``counts[i]`` times.

        Returns:
            Number of distinct map locations touched (after collision
            aliasing) — the ``unique_locations`` of the cost model.
        """

    @abstractmethod
    def classify(self) -> None:
        """Bucket the stored hit counts in place."""

    @abstractmethod
    def compare(self, virgin: VirginMap) -> CompareResult:
        """Merge the (already classified) trace into ``virgin``."""

    @abstractmethod
    def hash(self) -> int:
        """Hash of the classified trace, stable across unrelated growth."""

    def classify_and_compare(self, virgin: VirginMap) -> CompareResult:
        """Merged classify+compare sweep (paper §IV-E optimization).

        Functionally identical to ``classify(); compare(virgin)`` but
        performs (and accounts) a single pass over the active region,
        halving the sweep cost. Subclasses override the accounting; the
        default implementation simply chains the two steps.
        """
        self.classify()
        return self.compare(virgin)

    # -- introspection ---------------------------------------------------

    @abstractmethod
    def active_bytes(self) -> int:
        """Bytes a full-map operation must sweep for this structure."""

    @abstractmethod
    def count_for_key(self, key: int) -> int:
        """Current stored (possibly classified) count for a map key."""

    @abstractmethod
    def nonzero_locations(self) -> np.ndarray:
        """Storage slots with a nonzero count (structure-native indexing)."""

    # -- shared helpers ---------------------------------------------------

    def _check_keys(self, keys: np.ndarray) -> None:
        if not self._validate_keys or keys.size == 0:
            return
        if int(keys.min()) < 0 or int(keys.max()) >= self.map_size:
            raise KeyRangeError(
                f"keys must lie in [0, {self.map_size}), got range "
                f"[{int(keys.min())}, {int(keys.max())}]")
