"""AFL's flat coverage bitmap (the paper's baseline).

One byte per map location; edge keys index the array directly
(``coverage_bitmap[E_XY]++``, Listing 1). Reset, classify, compare and
hash all sweep the *full* map regardless of how little of it is in use —
the inefficiency BigMap removes.

Implementation note — the *simulation fast path*: on multi-megabyte
maps, literally sweeping the numpy array per execution costs tens of
host-milliseconds without changing a single result (zero bytes classify
to zero; virgin bytes whose trace byte is zero cannot change; resetting
untouched bytes is a no-op). With ``sparse_host_ops=True`` (default)
the implementation therefore performs reset/classify/compare only on
the locations touched since the last reset, while the *access
accounting and cost model still charge the full-map sweeps* — the
physics the paper measures. ``sparse_host_ops=False`` executes the
literal full sweeps (used by the equivalence tests, which assert both
modes produce byte-identical maps and identical compare outcomes).
"""

from __future__ import annotations

import zlib
from typing import List

import numpy as np

from .access import Op
from .bitmap_base import (BatchUpdate, CoverageMap, aggregate_keys,
                          aggregate_keys_batch, apply_counts,
                          classified_counts)
from .classify import classify_counts
from .compare import CompareResult, VirginMap
from .hashing import crc32_full


class AflCoverage(CoverageMap):
    """Flat one-level coverage bitmap, as in stock AFL.

    Args:
        map_size: bitmap size in bytes (power of two; AFL default 65536).
        non_temporal_reset: model the §IV-E optimization of resetting
            with non-temporal stores, which avoids polluting the cache
            with never-used map regions. Only affects access accounting.
        sparse_host_ops: see the module docstring; results are
            identical either way.
    """

    def __init__(self, map_size: int, *, non_temporal_reset: bool = False,
                 sparse_host_ops: bool = True, **kwargs) -> None:
        super().__init__(map_size, **kwargs)
        self.non_temporal_reset = non_temporal_reset
        self.sparse_host_ops = sparse_host_ops
        self.trace = np.zeros(map_size, dtype=np.uint8)
        self._touched: List[np.ndarray] = []
        self.log.sweep(Op.INIT, "coverage", map_size, write=True)

    def _touched_unique(self) -> np.ndarray:
        if not self._touched:
            return np.empty(0, dtype=np.int64)
        if len(self._touched) == 1:
            return self._touched[0]
        merged = np.unique(np.concatenate(self._touched))
        self._touched = [merged]
        return merged

    def reset(self) -> None:
        if self.sparse_host_ops:
            touched = self._touched_unique()
            if touched.size:
                self.trace[touched] = 0
            self._touched = []
        else:
            self.trace.fill(0)
            self._touched = []
        self.log.sweep(Op.RESET, "coverage", self.map_size, write=True,
                       non_temporal=self.non_temporal_reset)

    def update(self, keys: np.ndarray, counts: np.ndarray) -> int:
        self._check_keys(keys)
        unique, summed = aggregate_keys(keys, counts)
        if unique.size == 0:
            return 0
        apply_counts(self.trace, unique, summed, self.counter_mode)
        self._touched.append(unique)
        # Scattered read-modify-writes across the full map span: the cache
        # footprint is governed by the map size, not by how many locations
        # are live (paper Table I-a).
        self.log.scatter(Op.UPDATE, "coverage", int(unique.size),
                         self.map_size, write=True)
        return int(unique.size)

    def classify(self) -> None:
        if self.sparse_host_ops:
            touched = self._touched_unique()
            if touched.size:
                self.trace[touched] = classify_counts(self.trace[touched])
        else:
            classify_counts(self.trace, out=self.trace)
        self.log.sweep(Op.CLASSIFY, "coverage", self.map_size, write=True)

    def _merge_virgin(self, virgin: VirginMap) -> CompareResult:
        if not self.sparse_host_ops:
            return virgin.merge(self.trace)
        touched = self._touched_unique()
        return virgin.merge_sparse(touched, self.trace[touched])

    def compare(self, virgin: VirginMap) -> CompareResult:
        result = self._merge_virgin(virgin)
        self.log.sweep(Op.COMPARE, "coverage", self.map_size)
        self.log.sweep(Op.COMPARE, "virgin", self.map_size,
                       write=result.interesting)
        return result

    def classify_and_compare(self, virgin: VirginMap) -> CompareResult:
        self.classify()
        result = self._merge_virgin(virgin)
        # The classify sweep above already accounted a full read-write
        # pass; under the merged §IV-E optimization the compare rides
        # along, so only the virgin-side traffic is added here. The
        # cost model prices the merged sweep explicitly either way.
        self.log.sweep(Op.COMPARE, "virgin", self.map_size,
                       write=result.interesting)
        return result

    def compare_batch(self, update: BatchUpdate,
                      virgin: VirginMap) -> np.ndarray:
        """Per-trace would-be-interesting flags: keys index virgin
        directly (flat map), so one gather covers the whole batch."""
        if update.keys.size == 0:
            return np.zeros(update.n, dtype=bool)
        hit = (update.classified & virgin.virgin[update.keys]) != 0
        seg = update.segment_ids()
        return np.bincount(seg[hit], minlength=update.n) > 0

    def update_compare_batch(self, keys: np.ndarray, counts: np.ndarray,
                             offsets: np.ndarray, virgin: VirginMap):
        """Fused aggregate + classify + virgin gather (one key pass).

        The flat map needs no indirection: aggregated keys index the
        virgin array directly, so the interest flags ride the same pass
        that produced the aggregation — a cold batch is dismissed
        without a second walk over its keys.
        """
        self._check_keys(keys)
        u_keys, summed, u_off, seg = aggregate_keys_batch(
            keys, counts, offsets, self.map_size, return_segments=True)
        classified = classified_counts(summed, self.counter_mode)
        update = BatchUpdate(keys=u_keys, summed=summed,
                             classified=classified, offsets=u_off,
                             n_unique=np.diff(u_off), seg=seg)
        if u_keys.size == 0:
            return update, np.zeros(update.n, dtype=bool)
        hit = (classified & virgin.virgin[u_keys]) != 0
        return update, np.bincount(seg[hit], minlength=update.n) > 0

    def segment_interesting(self, update: BatchUpdate, i: int,
                            virgin: VirginMap) -> bool:
        """Re-test one batched trace's flag against the current virgin.

        Flat-map version of the stale-flag re-check: keys index virgin
        directly. Virgin bits only clear, so False is final. Host-only;
        no access accounting.
        """
        lo, hi = int(update.offsets[i]), int(update.offsets[i + 1])
        if hi == lo:
            return False
        return bool(((update.classified[lo:hi] &
                      virgin.virgin[update.keys[lo:hi]]) != 0).any())

    def hash(self) -> int:
        """Path identifier of the classified trace.

        AFL hashes the full map with CRC32. The fast path computes a
        functionally equivalent identifier from the (location, bucket)
        pairs — the full map is fully determined by them, so two traces
        hash equal iff their full maps are byte-identical.
        """
        self.log.sweep(Op.HASH, "coverage", self.map_size)
        if not self.sparse_host_ops:
            return crc32_full(self.trace)
        touched = self._touched_unique()
        live = touched[self.trace[touched] != 0]
        return zlib.crc32(self.trace[live].tobytes(),
                          zlib.crc32(live.tobytes()))

    def active_bytes(self) -> int:
        return self.map_size

    def count_for_key(self, key: int) -> int:
        return int(self.trace[key])

    def nonzero_locations(self) -> np.ndarray:
        if self.sparse_host_ops:
            touched = self._touched_unique()
            return touched[self.trace[touched] != 0]
        return np.flatnonzero(self.trace)
