"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to discriminate on the specific failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the repro package."""


class MapSizeError(ReproError, ValueError):
    """An invalid coverage-map size was requested.

    Map sizes must be positive. AFL additionally requires power-of-two sizes
    because edge keys are reduced with a mask; we enforce the same rule for
    both data structures so keys are interchangeable between them.
    """


class MapFullError(ReproError, RuntimeError):
    """BigMap's condensed coverage bitmap ran out of free slots.

    This can only happen when the number of *distinct* keys observed exceeds
    the map size, i.e. the map is undersized for the target. AFL silently
    aliases in that situation; BigMap makes the condition explicit.
    """


class KeyRangeError(ReproError, ValueError):
    """A coverage key fell outside ``[0, map_size)``.

    Instrumentation is responsible for reducing raw hashes into the map
    range; receiving an out-of-range key indicates a broken metric pipeline.
    """


class TraceShapeError(ReproError, ValueError):
    """Edge-trace arrays passed to ``update`` were malformed.

    ``keys`` and ``counts`` must be one-dimensional arrays of equal length.
    """


class CalibrationError(ReproError, ValueError):
    """A memory-model calibration parameter was out of its valid domain."""


class CampaignConfigError(ReproError, ValueError):
    """A fuzzing-campaign configuration was internally inconsistent."""


class ProgramValidationError(ReproError, ValueError):
    """A synthetic target :class:`~repro.target.Program` violated a
    structural invariant (see ``Program.validate``)."""


class ProgramSpecError(ReproError, ValueError):
    """A :class:`~repro.target.ProgramSpec` was internally inconsistent."""


class FaultPlanError(ReproError, ValueError):
    """A fault-injection plan (:mod:`repro.faults`) was malformed.

    Raised for unknown event kinds, negative times/durations, or events
    addressed to instances a session does not have.
    """


class InstanceLostError(ReproError, RuntimeError):
    """A supervised parallel instance exhausted its restart budget.

    Sessions do not propagate this by default — the supervisor marks the
    instance as lost and carries on with the survivors — but callers
    that require a full fleet can check
    :attr:`~repro.fuzzer.ParallelResultSummary.lost_instances`.
    """


class InstanceFaultError(ReproError, RuntimeError):
    """An unplanned exception inside a supervised parallel instance.

    The session supervisor converts arbitrary instance failures into
    this class (original exception chained as ``__cause__``) instead of
    swallowing them: the failure enters the fault accounting — restart
    scheduling, per-instance failure logs, the summary's
    ``unplanned_failures`` — with its type and message intact.
    """

    @classmethod
    def wrap(cls, instance: int, exc: BaseException,
             during: str = "run") -> "InstanceFaultError":
        fault = cls(f"instance {instance} ({during}): {exc!r}")
        fault.__cause__ = exc
        return fault


class CheckpointError(ReproError, RuntimeError):
    """A campaign snapshot/restore operation was invalid.

    Raised when snapshotting a campaign that has not been started, or
    restoring a checkpoint onto a campaign with a different
    configuration.
    """


class TelemetryError(ReproError, ValueError):
    """A telemetry record violated the event schema or metric contract.

    Raised when an event is emitted with an unknown kind or a payload
    that does not match :data:`repro.telemetry.events.EVENT_SCHEMA`, or
    when a metric is re-registered with incompatible parameters.
    Producer-side validation keeps the JSONL stream schema-valid by
    construction; consumers re-validate with
    :func:`repro.telemetry.events.validate_event`.
    """


class ExperimentError(ReproError, RuntimeError):
    """An experiment harness failed while regenerating a report.

    Wraps the underlying exception so the runner can report which
    experiment failed (and, with ``--keep-going``, continue with the
    rest) while preserving the original traceback as ``__cause__``.
    """


class FleetSpecError(ReproError, ValueError):
    """A fleet experiment spec (:mod:`repro.fleet`) was malformed.

    Raised for empty fuzzer/benchmark/map-size axes, non-positive trial
    counts, or injected faults addressed to trials the spec does not
    expand to.
    """


class FleetDispatchError(ReproError, RuntimeError):
    """The fleet dispatcher could not complete an experiment.

    Raised when a worker backend fails structurally (a worker process
    that can neither produce a result nor be retried within the retry
    budget is *not* this — such trials are recorded as lost) — e.g. a
    result artifact that exists but cannot be loaded, or a backend
    driven after shutdown. The underlying exception, when any, is
    chained as ``__cause__``.
    """


class ArtifactIntegrityError(ReproError, RuntimeError):
    """A fleet artifact failed its integrity check.

    Raised by :mod:`repro.fleet.artifacts` when a sealed artifact is
    truncated, bit-corrupt, or missing its trailer. Fleet readers do
    not propagate this: the measurer and the worker checkpoint loader
    quarantine the bad file and fall back to their last good state,
    recording the incident as an ``integrity``/``artifact_quarantine``
    telemetry event.
    """


class FleetStateError(ReproError, RuntimeError):
    """An illegal trial state-machine transition was requested.

    The :class:`repro.fleet.ResultsStore` owns the durable trial state
    machine (``pending → dispatched → running → measuring →
    done/lost/quarantined``); any transition outside that graph
    indicates a dispatcher bug or a store shared between two live
    dispatchers, and must fail loudly rather than corrupt bookkeeping.
    """


class FleetResumeError(ReproError, RuntimeError):
    """A fleet resume could not reconcile the store with reality.

    Raised when ``fleet --resume`` is pointed at a store with no
    persisted spec, a spec that does not match the requested one, or a
    work directory that no longer exists.
    """
