"""Virgin-map comparison with AFL's ``has_new_bits`` semantics.

AFL keeps a *virgin map*: one byte per map location, initialized to 0xFF,
in which every bit still set marks a (location, bucket) pair never yet seen.
After classifying a trace, the fuzzer ANDs it against the virgin map:

* a location whose virgin byte is still 0xFF and is hit at all → a brand
  new edge (interest level 2);
* a location already known but hit with a new count bucket → level 1;
* otherwise nothing new (level 0).

Hit buckets are then cleared from the virgin map (``virgin &= ~trace``).

Crash and hang deduplication in stock AFL use additional virgin maps with
the same semantics (``virgin_crash``, ``virgin_tmout``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .errors import MapSizeError


#: Interest levels returned by the compare step.
NO_NEW_COVERAGE = 0
NEW_HIT_COUNT = 1
NEW_EDGE = 2


@dataclass(frozen=True)
class CompareResult:
    """Outcome of merging one classified trace into a virgin map.

    Attributes:
        level: 0 (nothing new), 1 (new hit-count bucket), 2 (new edge).
        new_edges: number of locations that transitioned from fully
            virgin (0xFF) to touched in this merge.
        new_buckets: number of locations that gained a new bucket without
            being brand new edges.
    """

    level: int
    new_edges: int
    new_buckets: int

    @property
    def interesting(self) -> bool:
        return self.level > 0


class VirginMap:
    """Global not-yet-seen coverage state, one byte per map location."""

    def __init__(self, map_size: int) -> None:
        if map_size <= 0:
            raise MapSizeError(f"map size must be positive, got {map_size}")
        self.map_size = map_size
        self.virgin = np.full(map_size, 0xFF, dtype=np.uint8)

    def merge(self, classified: np.ndarray, limit: int = None) -> CompareResult:
        """Merge a classified trace, returning what was new.

        Args:
            classified: bucketed trace bytes (same indexing as this map).
            limit: restrict the compare to ``classified[:limit]`` — BigMap
                passes ``used_key`` here so only the condensed region is
                swept. AFL passes ``None`` (full map).
        """
        trace = classified if limit is None else classified[:limit]
        virgin = self.virgin if limit is None else self.virgin[:limit]

        hits = (trace & virgin) != 0
        if not hits.any():
            return CompareResult(NO_NEW_COVERAGE, 0, 0)

        brand_new = hits & (virgin == 0xFF) & (trace != 0)
        new_edges = int(np.count_nonzero(brand_new))
        new_buckets = int(np.count_nonzero(hits)) - new_edges
        np.bitwise_and(virgin, np.bitwise_not(trace), out=virgin)

        level = NEW_EDGE if new_edges else NEW_HIT_COUNT
        return CompareResult(level, new_edges, new_buckets)

    def merge_sparse(self, indices: np.ndarray,
                     values: np.ndarray) -> CompareResult:
        """Merge a trace given as (location, classified byte) pairs.

        Exactly equivalent to :meth:`merge` on a full map that is zero
        everywhere outside ``indices`` — locations with a zero trace
        byte can never clear virgin bits. Duplicate indices are OR-ed
        together first (the dense equivalent holds one byte per
        location, the union of the observed buckets); without the
        aggregation, duplicate fancy-index stores would be last-write-
        wins and ``new_edges``/``new_buckets`` would double-count.
        """
        if indices.size == 0:
            return CompareResult(NO_NEW_COVERAGE, 0, 0)
        if indices.size > 1 and not bool(np.all(np.diff(indices) > 0)):
            # Not strictly increasing, so possibly duplicated (the hot
            # callers pass np.unique output, which skips this branch).
            unique, inverse = np.unique(indices, return_inverse=True)
            if unique.size != indices.size:
                merged = np.zeros(unique.size, dtype=np.uint8)
                np.bitwise_or.at(merged, inverse, values)
                indices, values = unique, merged
        virgin_vals = self.virgin[indices]
        hits = (values & virgin_vals) != 0
        if not hits.any():
            return CompareResult(NO_NEW_COVERAGE, 0, 0)
        brand_new = hits & (virgin_vals == 0xFF) & (values != 0)
        new_edges = int(np.count_nonzero(brand_new))
        new_buckets = int(np.count_nonzero(hits)) - new_edges
        self.virgin[indices] = virgin_vals & np.bitwise_not(values)
        level = NEW_EDGE if new_edges else NEW_HIT_COUNT
        return CompareResult(level, new_edges, new_buckets)

    def would_be_new(self, classified: np.ndarray, limit: int = None) -> int:
        """Like :meth:`merge` but without mutating the virgin map."""
        trace = classified if limit is None else classified[:limit]
        virgin = self.virgin if limit is None else self.virgin[:limit]
        hits = (trace & virgin) != 0
        if not hits.any():
            return NO_NEW_COVERAGE
        if ((virgin == 0xFF) & (trace != 0) & hits).any():
            return NEW_EDGE
        return NEW_HIT_COUNT

    def count_discovered(self) -> int:
        """Number of map locations with at least one bucket cleared."""
        return int(np.count_nonzero(self.virgin != 0xFF))

    def reset(self) -> None:
        """Forget all coverage (fresh campaign)."""
        self.virgin.fill(0xFF)

    def copy(self) -> "VirginMap":
        clone = VirginMap(self.map_size)
        clone.virgin[:] = self.virgin
        return clone

    def merge_from(self, other: "VirginMap") -> int:
        """Absorb another instance's discoveries (parallel-fuzzing sync).

        A location is discovered in the merged view if it is discovered in
        either map, i.e. the merged virgin bytes are the bitwise AND.

        Returns:
            Number of locations newly discovered from ``other``.
        """
        if other.map_size != self.map_size:
            raise MapSizeError(
                f"cannot merge virgin maps of sizes {other.map_size} "
                f"and {self.map_size}")
        before = self.count_discovered()
        np.bitwise_and(self.virgin, other.virgin, out=self.virgin)
        return self.count_discovered() - before
