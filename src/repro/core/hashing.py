"""Bitmap hashing with BigMap's up-to-last-nonzero rule.

AFL hashes the classified trace map of every interesting test case so that
future test cases with an identical map can be recognized cheaply. AFL
hashes the *full* map; BigMap must not hash ``[0, used_key)`` because
``used_key`` only grows — the same execution path would hash differently
before and after an unrelated discovery extended ``used_key`` (the
three-execution example of paper §IV-D). BigMap therefore hashes up to and
including the last non-zero byte, which is a pure function of the path.
"""

from __future__ import annotations

import zlib

import numpy as np


def crc32_full(bitmap: np.ndarray) -> int:
    """AFL's hash: CRC32 over the entire map (classified trace bits)."""
    return zlib.crc32(memoryview(np.ascontiguousarray(bitmap)))


def last_nonzero_index(bitmap: np.ndarray, search_limit: int = None) -> int:
    """Index of the last non-zero byte in ``bitmap[:search_limit]``, or -1.

    ``search_limit`` lets BigMap restrict the scan to ``[0, used_key)``;
    everything past ``used_key`` is zero by construction.
    """
    view = bitmap if search_limit is None else bitmap[:search_limit]
    nz = np.flatnonzero(view)
    if nz.size == 0:
        return -1
    return int(nz[-1])


def crc32_trimmed(bitmap: np.ndarray, search_limit: int = None, *,
                  last_index: int = None) -> int:
    """BigMap's hash: CRC32 up to (and including) the last non-zero byte.

    Two executions that populate the same prefix of the condensed map hash
    identically regardless of how far ``used_key`` has advanced in between.
    An all-zero map hashes as the empty string.

    Args:
        bitmap: the condensed coverage bytes.
        search_limit: restrict the last-non-zero scan to
            ``bitmap[:search_limit]``.
        last_index: a precomputed :func:`last_nonzero_index` result.
            Callers that already swept the condensed region (e.g. for
            access accounting) pass it here so the region is scanned
            exactly once; ``search_limit`` is then ignored.
    """
    last = last_nonzero_index(bitmap, search_limit) \
        if last_index is None else last_index
    return zlib.crc32(memoryview(np.ascontiguousarray(bitmap[:last + 1])))
