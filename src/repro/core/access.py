"""Access-stream accounting for coverage-map operations.

The paper's performance argument is entirely about *memory access patterns*:
AFL's bitmap operations sweep the full map (sequential, cache-polluting)
while its update scatters over the full map (poor spatial locality); BigMap
confines everything except the index lookup to the condensed used region.

Every coverage-map operation in :mod:`repro.core` reports what it touched
through an :class:`AccessLog`. The memory-hierarchy model in
:mod:`repro.memsim` consumes these records to price operations in cycles,
which is how the throughput figures (Fig. 3, Fig. 6, Fig. 9) are
reproduced without the paper's Xeon testbed.

Two granularities are supported:

* aggregate per-operation counters (:class:`OpStats`) — cheap, always on,
  used by campaign-scale experiments;
* an optional detailed record list — used by unit tests and by the
  cache-simulator validation path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional


class Pattern(str, Enum):
    """Spatial shape of an access burst."""

    SEQUENTIAL = "sequential"
    SCATTERED = "scattered"


class Op(str, Enum):
    """The bitmap operations the paper's Figure 3 decomposes runtime into."""

    RESET = "reset"
    UPDATE = "update"
    CLASSIFY = "classify"
    COMPARE = "compare"
    HASH = "hash"
    INIT = "init"


@dataclass(frozen=True)
class AccessRecord:
    """One burst of memory accesses performed by a bitmap operation.

    Attributes:
        op: which logical bitmap operation issued the burst.
        array: name of the touched array (``coverage``, ``index``,
            ``virgin`` ...), useful for asserting BigMap's claim that the
            index bitmap is touched only during update.
        pattern: sequential sweep or scattered (data-dependent) accesses.
        n_accesses: number of element accesses in the burst.
        element_size: bytes per element access.
        region_bytes: size of the address region the burst lands in. For a
            sweep this equals ``n_accesses * element_size``; for scattered
            accesses it is the span the keys are drawn from, which is what
            determines cache behaviour.
        write: whether the burst writes (affects non-temporal handling).
        non_temporal: non-temporal stores bypass cache fills (§IV-E).
    """

    op: Op
    array: str
    pattern: Pattern
    n_accesses: int
    element_size: int
    region_bytes: int
    write: bool = False
    non_temporal: bool = False

    @property
    def bytes_touched(self) -> int:
        """Total bytes referenced by the burst."""
        return self.n_accesses * self.element_size


@dataclass
class OpCounter:
    """Aggregate counters for one (operation, array, pattern) bucket."""

    calls: int = 0
    n_accesses: int = 0
    bytes_touched: int = 0
    region_bytes: int = 0  # summed; divide by calls for the mean region

    def absorb(self, record: AccessRecord) -> None:
        self.calls += 1
        self.n_accesses += record.n_accesses
        self.bytes_touched += record.bytes_touched
        self.region_bytes += record.region_bytes


#: Key used to bucket aggregate counters.
CounterKey = tuple


@dataclass
class OpStats:
    """Aggregate access statistics keyed by ``(op, array, pattern)``."""

    counters: Dict[CounterKey, OpCounter] = field(default_factory=dict)

    def absorb(self, record: AccessRecord) -> None:
        key = (record.op, record.array, record.pattern,
               record.write, record.non_temporal)
        counter = self.counters.get(key)
        if counter is None:
            counter = OpCounter()
            self.counters[key] = counter
        counter.absorb(record)

    def per_op(self) -> Dict[Op, OpCounter]:
        """Collapse counters over arrays/patterns into one counter per op."""
        merged: Dict[Op, OpCounter] = {}
        for (op, _array, _pattern, _w, _nt), counter in self.counters.items():
            tgt = merged.setdefault(op, OpCounter())
            tgt.calls += counter.calls
            tgt.n_accesses += counter.n_accesses
            tgt.bytes_touched += counter.bytes_touched
            tgt.region_bytes += counter.region_bytes
        return merged

    def total_bytes(self) -> int:
        return sum(c.bytes_touched for c in self.counters.values())

    def clear(self) -> None:
        self.counters.clear()


class AccessLog:
    """Collects :class:`AccessRecord` bursts emitted by coverage maps.

    Aggregation into :class:`OpStats` is always on. Keeping the individual
    records (``keep_records=True``) is optional because campaigns emit
    millions of bursts.
    """

    def __init__(self, keep_records: bool = False) -> None:
        self.stats = OpStats()
        self._keep_records = keep_records
        self.records: List[AccessRecord] = []

    def emit(self, record: AccessRecord) -> None:
        """Account one burst."""
        self.stats.absorb(record)
        if self._keep_records:
            self.records.append(record)

    def clear(self) -> None:
        """Drop all accumulated statistics and records."""
        self.stats.clear()
        self.records.clear()

    # Convenience constructors -------------------------------------------

    def sweep(self, op: Op, array: str, n_bytes: int, *, write: bool = False,
              non_temporal: bool = False, element_size: int = 1) -> None:
        """Record a sequential sweep over ``n_bytes`` of ``array``."""
        if n_bytes <= 0:
            return
        self.emit(AccessRecord(
            op=op, array=array, pattern=Pattern.SEQUENTIAL,
            n_accesses=n_bytes // element_size, element_size=element_size,
            region_bytes=n_bytes, write=write, non_temporal=non_temporal))

    def scatter(self, op: Op, array: str, n_accesses: int, region_bytes: int,
                *, element_size: int = 1, write: bool = False) -> None:
        """Record ``n_accesses`` data-dependent accesses within a region."""
        if n_accesses <= 0:
            return
        self.emit(AccessRecord(
            op=op, array=array, pattern=Pattern.SCATTERED,
            n_accesses=n_accesses, element_size=element_size,
            region_bytes=region_bytes, write=write))


class NullAccessLog(AccessLog):
    """An :class:`AccessLog` that discards everything (zero overhead mode).

    Useful for pure-functional tests where access accounting is noise.
    """

    def __init__(self) -> None:
        super().__init__(keep_records=False)

    def emit(self, record: AccessRecord) -> None:  # noqa: D102
        pass
