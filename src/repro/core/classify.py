"""AFL hit-count bucketing ("classify").

AFL coarsens exact edge hit counts into power-of-two-ish buckets before
comparing against the global virgin map (paper §II-A2). A change of count
*within* a bucket is not an interesting control-flow change; a change
*across* buckets is. Bucketing also blunts accidental hash collisions.

The buckets, identical to AFL's ``count_class_lookup8``:

    count:   0   1   2   3   4..7  8..15  16..31  32..127  128..255
    bucket:  0   1   2   4   8     16     32      64       128

Each bucket is encoded as a single distinct bit so the virgin-map compare
can use bitwise AND/NOT semantics (see :mod:`repro.core.compare`).
"""

from __future__ import annotations

import numpy as np

#: Lookup table mapping an exact 8-bit hit count to its bucket byte.
COUNT_CLASS_LOOKUP8 = np.zeros(256, dtype=np.uint8)
COUNT_CLASS_LOOKUP8[0] = 0
COUNT_CLASS_LOOKUP8[1] = 1
COUNT_CLASS_LOOKUP8[2] = 2
COUNT_CLASS_LOOKUP8[3] = 4
COUNT_CLASS_LOOKUP8[4:8] = 8
COUNT_CLASS_LOOKUP8[8:16] = 16
COUNT_CLASS_LOOKUP8[16:32] = 32
COUNT_CLASS_LOOKUP8[32:128] = 64
COUNT_CLASS_LOOKUP8[128:256] = 128

#: The set of byte values a classified map may contain.
BUCKET_VALUES = frozenset(int(v) for v in np.unique(COUNT_CLASS_LOOKUP8))


def classify_counts(counts: np.ndarray, out: np.ndarray = None) -> np.ndarray:
    """Bucket raw hit counts in place or into ``out``.

    Args:
        counts: uint8 array of exact hit counts.
        out: optional destination; defaults to a new array. Passing
            ``out=counts`` classifies in place, matching AFL which
            overwrites ``trace_bits``.

    Returns:
        The bucketed array.
    """
    if counts.dtype != np.uint8:
        raise TypeError(f"classify expects uint8 counts, got {counts.dtype}")
    return np.take(COUNT_CLASS_LOOKUP8, counts, out=out)


def bucket_of(count: int) -> int:
    """Return the bucket byte for a single exact hit count.

    Counts above 255 saturate into the top bucket, mirroring AFL's 8-bit
    counters.
    """
    if count < 0:
        raise ValueError(f"hit count must be non-negative, got {count}")
    return int(COUNT_CLASS_LOOKUP8[min(count, 255)])


def is_classified(counts: np.ndarray) -> bool:
    """True if every byte of ``counts`` is already a valid bucket value."""
    present = np.unique(counts)
    return all(int(v) in BUCKET_VALUES for v in present)
