"""Host wall-time measurement shim — the only sanctioned clock access.

Determinism invariant (statlint DET001): simulated results must be a
function of configuration alone. Campaign time is *virtual*
(:class:`repro.fuzzer.clock.VirtualClock`, charged from the cost
model); host wall time may influence nothing but operator-facing
telemetry, such as how long an experiment harness took to regenerate a
report. That legitimate use is isolated here, on the monotonic
``perf_counter`` (immune to NTP steps and calendar jumps, unlike
``time.time``), and ``[tool.statlint]`` allowlists exactly this module
— any other wall-clock read in the tree fails CI.
"""

from __future__ import annotations

import time


def wall_now() -> float:
    """Monotonic host-clock reading, for elapsed-time measurement only."""
    return time.perf_counter()


class Stopwatch:
    """Measures elapsed host seconds (never feeds simulated state).

    ::

        watch = Stopwatch()
        run_expensive_thing()
        print(f"took {watch.elapsed():.1f}s")
    """

    def __init__(self) -> None:
        self._start = wall_now()

    def elapsed(self) -> float:
        """Seconds since construction (or the last :meth:`restart`)."""
        return wall_now() - self._start

    def restart(self) -> float:
        """Reset the origin; returns the elapsed time it closed out."""
        elapsed = self.elapsed()
        self._start = wall_now()
        return elapsed
