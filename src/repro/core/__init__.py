"""Coverage-map data structures: AFL's flat bitmap and BigMap.

This package is the paper's primary contribution. Public surface:

* :class:`AflCoverage` — the one-level baseline (Listing 1).
* :class:`BigMapCoverage` — the two-level condensed bitmap (Listing 2).
* :class:`VirginMap` / :class:`CompareResult` — global-coverage compare
  with AFL's ``has_new_bits`` semantics.
* :func:`classify_counts` and the bucket LUT.
* :class:`AccessLog` / :class:`OpStats` — access accounting consumed by
  :mod:`repro.memsim` to price operations.
"""

from .access import (AccessLog, AccessRecord, NullAccessLog, Op, OpCounter,
                     OpStats, Pattern)
from .afl_bitmap import AflCoverage
from .bigmap import BigMapCoverage
from .bitmap_base import (BatchUpdate, COUNTER_SATURATE, COUNTER_WRAP,
                          CoverageMap, aggregate_keys,
                          aggregate_keys_batch, apply_counts,
                          classified_counts)
from .classify import (BUCKET_VALUES, COUNT_CLASS_LOOKUP8, bucket_of,
                       classify_counts, is_classified)
from .compare import (NEW_EDGE, NEW_HIT_COUNT, NO_NEW_COVERAGE,
                      CompareResult, VirginMap)
from .errors import (CalibrationError, CampaignConfigError, KeyRangeError,
                     MapFullError, MapSizeError, ReproError, TraceShapeError)
from .hashing import crc32_full, crc32_trimmed, last_nonzero_index
from .walltime import Stopwatch, wall_now

__all__ = [
    "AccessLog", "AccessRecord", "NullAccessLog", "Op", "OpCounter",
    "OpStats", "Pattern",
    "AflCoverage", "BigMapCoverage", "CoverageMap",
    "BatchUpdate", "COUNTER_SATURATE", "COUNTER_WRAP", "aggregate_keys",
    "aggregate_keys_batch", "apply_counts", "classified_counts",
    "BUCKET_VALUES", "COUNT_CLASS_LOOKUP8", "bucket_of", "classify_counts",
    "is_classified",
    "NEW_EDGE", "NEW_HIT_COUNT", "NO_NEW_COVERAGE", "CompareResult",
    "VirginMap",
    "CalibrationError", "CampaignConfigError", "KeyRangeError",
    "MapFullError", "MapSizeError", "ReproError", "TraceShapeError",
    "crc32_full", "crc32_trimmed", "last_nonzero_index",
    "Stopwatch", "wall_now",
]
