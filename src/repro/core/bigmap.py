"""BigMap: the adaptive two-level coverage bitmap (paper §IV).

Three pieces of state (Figure 4b):

* ``index``  — maps an edge key to its slot in the condensed coverage
  bitmap; -1 marks a key never seen in the whole campaign. Written only
  when a key is first discovered; *read* only during update.
* ``cov``    — the condensed coverage bitmap. All live counters occupy
  the prefix ``[0, used_key)``.
* ``used_key`` — next free slot; grows monotonically over the campaign.

Consequences, which the access accounting makes measurable:

* reset / classify / compare sweep only ``[0, used_key)``;
* hash covers up to the last non-zero byte (not ``used_key``) so that a
  path's hash is independent of unrelated discoveries (§IV-D);
* the index bitmap is never touched outside update, so its cache lines
  compete for capacity only during execution, not during the sweeps.

The slot assignment — next free slot on first appearance — is what
condenses scattered keys into a dense prefix. (Within one batched
update, fresh keys are assigned in sorted order rather than trace
order; any dense assignment is equivalent because the index persists
for the whole campaign, so every key keeps one stable slot.)
"""

from __future__ import annotations

import numpy as np

from .access import Op
from .bitmap_base import (BatchUpdate, CoverageMap, aggregate_keys,
                          aggregate_keys_batch, apply_counts,
                          classified_counts)
from .classify import classify_counts
from .compare import CompareResult, VirginMap
from .errors import MapFullError
from .hashing import crc32_trimmed, last_nonzero_index


class BigMapCoverage(CoverageMap):
    """Two-level condensed coverage bitmap.

    Args:
        map_size: capacity in keys/bytes (power of two). Can be made
            arbitrarily large: per-execution cost depends on ``used_key``,
            i.e. on how many distinct keys the target has produced so far,
            not on ``map_size``.
    """

    #: Sentinel marking an unassigned index entry.
    UNASSIGNED = -1

    def __init__(self, map_size: int, **kwargs) -> None:
        super().__init__(map_size, **kwargs)
        self.index = np.full(map_size, self.UNASSIGNED, dtype=np.int64)
        self.cov = np.zeros(map_size, dtype=np.uint8)
        self.used_key = 0
        # One-time full-map touch; the only one in the whole campaign.
        self.log.sweep(Op.INIT, "index", map_size * 8, write=True,
                       element_size=8)
        self.log.sweep(Op.INIT, "coverage", map_size, write=True)

    # -- operations ------------------------------------------------------

    def reset(self) -> None:
        self.cov[:self.used_key] = 0
        self.log.sweep(Op.RESET, "coverage", self.used_key, write=True)

    def update(self, keys: np.ndarray, counts: np.ndarray) -> int:
        self._check_keys(keys)
        unique, summed = aggregate_keys(keys, counts)
        if unique.size == 0:
            return 0
        slots = self.index[unique]
        fresh = slots == self.UNASSIGNED
        n_fresh = int(np.count_nonzero(fresh))
        if n_fresh:
            if self.used_key + n_fresh > self.map_size:
                raise MapFullError(
                    f"{self.used_key + n_fresh} distinct keys exceed map "
                    f"size {self.map_size}")
            new_slots = np.arange(self.used_key,
                                  self.used_key + n_fresh, dtype=np.int64)
            self.index[unique[fresh]] = new_slots
            self.used_key += n_fresh
            slots = self.index[unique]
        apply_counts(self.cov, slots, summed, self.counter_mode)
        # Scattered reads over the index span (same pattern as AFL's
        # trace accesses) ...
        self.log.scatter(Op.UPDATE, "index", int(unique.size),
                         self.map_size * 8, element_size=8,
                         write=bool(n_fresh))
        # ... but the counter writes land in the dense prefix.
        self.log.scatter(Op.UPDATE, "coverage", int(unique.size),
                         max(self.used_key, 1), write=True)
        return int(unique.size)

    def classify(self) -> None:
        region = self.cov[:self.used_key]
        classify_counts(region, out=region)
        self.log.sweep(Op.CLASSIFY, "coverage", self.used_key, write=True)

    def compare(self, virgin: VirginMap) -> CompareResult:
        result = virgin.merge(self.cov, limit=self.used_key)
        self.log.sweep(Op.COMPARE, "coverage", self.used_key)
        self.log.sweep(Op.COMPARE, "virgin", self.used_key,
                       write=result.interesting)
        return result

    def classify_and_compare(self, virgin: VirginMap) -> CompareResult:
        region = self.cov[:self.used_key]
        classify_counts(region, out=region)
        result = virgin.merge(self.cov, limit=self.used_key)
        self.log.sweep(Op.COMPARE, "coverage", self.used_key, write=True)
        self.log.sweep(Op.COMPARE, "virgin", self.used_key,
                       write=result.interesting)
        return result

    def compare_batch(self, update: BatchUpdate,
                      virgin: VirginMap) -> np.ndarray:
        """Per-trace would-be-interesting flags (read-only).

        A key with no condensed slot yet would allocate one on a real
        update — a brand-new edge — so it flags its trace outright.
        Assigned keys test their classified byte against the virgin
        byte of their slot, like :meth:`compare` restricted to the
        condensed prefix.
        """
        if update.keys.size == 0:
            return np.zeros(update.n, dtype=bool)
        slots = self.index[update.keys]
        fresh = slots == self.UNASSIGNED
        virgin_vals = virgin.virgin[np.where(fresh, 0, slots)]
        hit = fresh | ((update.classified & virgin_vals) != 0)
        seg = update.segment_ids()
        return np.bincount(seg[hit], minlength=update.n) > 0

    def update_compare_batch(self, keys: np.ndarray, counts: np.ndarray,
                             offsets: np.ndarray, virgin: VirginMap):
        """Fused aggregate + classify + index/virgin gather.

        The interest flags need one index gather (slot lookup) and one
        virgin gather per aggregated key; fusing them into the
        aggregation pass lets a cold batch skip the second walk over
        its keys entirely. Flag semantics match :meth:`compare_batch`:
        unassigned keys are brand-new edges and flag outright.
        """
        self._check_keys(keys)
        u_keys, summed, u_off, seg = aggregate_keys_batch(
            keys, counts, offsets, self.map_size, return_segments=True)
        classified = classified_counts(summed, self.counter_mode)
        update = BatchUpdate(keys=u_keys, summed=summed,
                             classified=classified, offsets=u_off,
                             n_unique=np.diff(u_off), seg=seg)
        if u_keys.size == 0:
            return update, np.zeros(update.n, dtype=bool)
        slots = self.index[u_keys]
        fresh = slots == self.UNASSIGNED
        virgin_vals = virgin.virgin[np.where(fresh, 0, slots)]
        hit = fresh | ((classified & virgin_vals) != 0)
        return update, np.bincount(seg[hit], minlength=update.n) > 0

    def segment_interesting(self, update: BatchUpdate, i: int,
                            virgin: VirginMap) -> bool:
        """Re-test one batched trace's flag against the *current* state.

        Same semantics as :meth:`compare_batch` restricted to trace
        ``i``, but evaluated against the index/virgin as they stand now
        rather than at batch time. Because the index only gains entries
        and virgin bits only clear, a False here is final — the batched
        engine uses this to dismiss flags that went stale after earlier
        traces in the same window claimed the bits. Host-only: no
        access accounting (the serial engine discovers the same verdict
        inside its normally-priced pipeline).
        """
        lo, hi = int(update.offsets[i]), int(update.offsets[i + 1])
        if hi == lo:
            return False
        keys = update.keys[lo:hi]
        slots = self.index[keys]
        fresh = slots == self.UNASSIGNED
        if fresh.any():
            return True
        return bool(((update.classified[lo:hi] &
                      virgin.virgin[slots]) != 0).any())

    def hash(self) -> int:
        last = last_nonzero_index(self.cov, self.used_key)
        self.log.sweep(Op.HASH, "coverage", last + 1)
        return crc32_trimmed(self.cov, last_index=last)

    # -- introspection ---------------------------------------------------

    def active_bytes(self) -> int:
        return self.used_key

    def slot_for_key(self, key: int) -> int:
        """Condensed slot assigned to ``key``, or -1 if never seen."""
        return int(self.index[key])

    def count_for_key(self, key: int) -> int:
        slot = self.index[key]
        if slot == self.UNASSIGNED:
            return 0
        return int(self.cov[slot])

    def nonzero_locations(self) -> np.ndarray:
        return np.flatnonzero(self.cov[:self.used_key])

    def check_invariants(self) -> None:
        """Assert the structural invariants; used by property tests.

        * assigned slots are exactly ``0..used_key-1``, each used once;
        * nothing beyond ``used_key`` is nonzero in the coverage bitmap;
        * unassigned index entries are the sentinel.
        """
        assigned = self.index[self.index != self.UNASSIGNED]
        if assigned.size != self.used_key:
            raise AssertionError(
                f"{assigned.size} assigned slots but used_key="
                f"{self.used_key}")
        if assigned.size and (np.sort(assigned) !=
                              np.arange(self.used_key)).any():
            raise AssertionError("assigned slots are not a dense prefix")
        if np.count_nonzero(self.cov[self.used_key:]):
            raise AssertionError("coverage bytes beyond used_key are dirty")
