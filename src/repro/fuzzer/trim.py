"""Seed trimming (AFL's ``trim_case``).

Before fuzzing a newly admitted queue entry, AFL tries to shorten it:
remove chunks (starting at 1/16 of the file, halving down to 1/1024)
and keep each removal whose execution produces the *same classified
trace hash*. Shorter seeds mutate better — a havoc byte-op is more
likely to land on control structure (paper §II-A1).

The trimmer operates above the executor/instrumentation layer and uses
the coverage map's own hash as the equivalence oracle, exactly like
AFL; every trial execution is charged to the campaign like any other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

import numpy as np

#: AFL's trim geometry.
TRIM_START_STEPS = 16
TRIM_END_STEPS = 1024
TRIM_MIN_BYTES = 4


@dataclass
class TrimResult:
    """Outcome of trimming one input.

    Attributes:
        data: the (possibly shortened) input.
        executions: trial executions spent.
        removed_bytes: how much was cut.
    """

    data: bytes
    executions: int
    removed_bytes: int


def trim_input(data: bytes,
               trace_hash_of: Callable[[bytes], int],
               *, max_executions: int = 256) -> TrimResult:
    """Shorten ``data`` while its classified trace hash is unchanged.

    Args:
        data: the input to trim.
        trace_hash_of: runs an input through the full coverage pipeline
            and returns the classified-trace hash (the campaign wires
            this to its pipeline so costs are charged).
        max_executions: budget cap for pathological inputs.

    Returns:
        :class:`TrimResult` with the final input.
    """
    if len(data) <= TRIM_MIN_BYTES:
        return TrimResult(data=data, executions=0, removed_bytes=0)

    target_hash = trace_hash_of(data)
    executions = 1
    current = data
    steps = TRIM_START_STEPS
    while steps <= TRIM_END_STEPS and len(current) > TRIM_MIN_BYTES:
        # AFL's trim_case geometry: the removal unit is fixed for the
        # round (recomputed from the *current* length each round, so it
        # never goes stale after successful removals), the final
        # partial chunk is still attempted, and the unit always halves
        # from one round to the next regardless of progress.
        remove_len = max(len(current) // steps, 1)
        pos = 0
        while pos < len(current):
            if executions >= max_executions:
                return TrimResult(current, executions,
                                  len(data) - len(current))
            avail = min(remove_len, len(current) - pos)
            if len(current) - avail < TRIM_MIN_BYTES:
                # Removing this chunk would undershoot the minimum;
                # skip over it rather than aborting the round.
                pos += avail
                continue
            candidate = current[:pos] + current[pos + avail:]
            executions += 1
            if trace_hash_of(candidate) == target_hash:
                current = candidate
                # Do not advance: the next chunk slid into place.
            else:
                pos += avail
        steps *= 2
    return TrimResult(current, executions, len(data) - len(current))
