"""Seed scheduling: skip probabilities and energy assignment.

Follows AFL's queue walk: cycle through the pool; favored entries are
always fuzzed, non-favored ones are skipped with high probability
(higher still while unfuzzed favored entries are pending). A selected
seed receives an *energy* (AFL's ``perf_score``-scaled havoc budget):
faster-executing, broader-coverage, deeper seeds get more mutations.

The paper's approach is orthogonal to all of this (§II-A1) — the same
scheduler drives both AFL and BigMap campaigns, so throughput and
coverage differences come only from the map structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from .pool import SeedPool
from .seed import Seed

#: AFL's skip probabilities (queue_cur not favored).
SKIP_WITH_PENDING_FAVORED = 0.99
SKIP_FUZZED_NO_FAVORED = 0.95
SKIP_UNFUZZED_NO_FAVORED = 0.75


@dataclass(frozen=True)
class EnergyPolicy:
    """Havoc-budget parameters (AFL's ``calculate_score`` simplified).

    Attributes:
        base_energy: mutations for an average seed.
        min_energy / max_energy: clamp bounds.
    """

    base_energy: int = 64
    min_energy: int = 16
    max_energy: int = 512

    def energy_for(self, seed: Seed, pool_mean_cycles: float,
                   max_locations: int) -> int:
        """Mutation budget for one selected seed."""
        score = float(self.base_energy)
        # Faster-than-average execution earns up to 3x, slower down to
        # 0.25x (AFL uses the same bounds).
        if pool_mean_cycles > 0 and seed.exec_cycles > 0:
            ratio = pool_mean_cycles / seed.exec_cycles
            score *= float(np.clip(ratio, 0.25, 3.0))
        # Broad coverage earns up to 2x.
        if max_locations > 0:
            score *= 1.0 + seed.n_locations / max_locations
        # Depth bonus: later generations get a boost, as in AFL.
        score *= min(1.0 + seed.depth * 0.1, 2.0)
        return int(np.clip(score, self.min_energy, self.max_energy))


class Scheduler:
    """Cycles the queue, yielding seeds to fuzz with their energy."""

    def __init__(self, pool: SeedPool, rng: np.random.Generator,
                 policy: Optional[EnergyPolicy] = None) -> None:
        self.pool = pool
        self.rng = rng
        self.policy = policy or EnergyPolicy()
        self._cursor = 0
        self.queue_cycles = 0  # completed passes over the queue

    def _should_skip(self, seed: Seed, pending_favored: int) -> bool:
        if seed.favored:
            return False
        if pending_favored > 0:
            return self.rng.random() < SKIP_WITH_PENDING_FAVORED
        if seed.fuzzed:
            return self.rng.random() < SKIP_FUZZED_NO_FAVORED
        return self.rng.random() < SKIP_UNFUZZED_NO_FAVORED

    def next_seed(self) -> Seed:
        """Select the next seed to fuzz (always terminates).

        Walks the queue applying skip probabilities; if an entire pass
        skips everything, the entry under the cursor is used anyway
        (AFL's behaviour after a full skip cycle).
        """
        if not self.pool.seeds:
            raise RuntimeError("cannot schedule from an empty seed pool")
        pending = self.pool.pending_favored()
        n = len(self.pool.seeds)
        for _ in range(n):
            if self._cursor >= len(self.pool.seeds):
                self._cursor = 0
                self.queue_cycles += 1
            seed = self.pool.seeds[self._cursor]
            self._cursor += 1
            if not self._should_skip(seed, pending):
                return seed
        # Full pass skipped everything: fuzz the entry under the cursor
        # anyway, and *advance past it* so the next call starts from the
        # following entry (and wrap-arounds keep counting queue cycles).
        if self._cursor >= len(self.pool.seeds):
            self._cursor = 0
            self.queue_cycles += 1
        seed = self.pool.seeds[self._cursor]
        self._cursor += 1
        return seed

    def energy_for(self, seed: Seed) -> int:
        max_locs = max((s.n_locations for s in self.pool.seeds), default=0)
        return self.policy.energy_for(seed, self.pool.mean_exec_cycles(),
                                      max_locs)

    def iterate(self) -> Iterator:
        """Endless stream of ``(seed, energy)`` pairs."""
        while True:
            seed = self.next_seed()
            yield seed, self.energy_for(seed)
