"""Virtual campaign clock.

Campaigns advance a virtual clock by the *modeled* cycle cost of every
iteration (see :mod:`repro.memsim.costmodel`), so "24 hours of fuzzing"
means 24 hours on the paper's Xeon, not 24 hours of Python. A fuzzer
configuration with cheap iterations therefore fits more executions into
the same virtual budget — which is exactly the coupling that produces
the paper's coverage and crash results (slow AFL-8MB campaigns discover
less because they execute less).
"""

from __future__ import annotations

from ..core.errors import CampaignConfigError


class VirtualClock:
    """Accumulates modeled cycles and converts them to virtual seconds."""

    def __init__(self, frequency_hz: float) -> None:
        if frequency_hz <= 0:
            raise CampaignConfigError(
                f"frequency must be positive, got {frequency_hz}")
        self.frequency_hz = frequency_hz
        self.cycles = 0.0

    def charge(self, cycles: float) -> None:
        """Advance the clock by ``cycles`` (must be non-negative)."""
        if cycles < 0:
            raise CampaignConfigError(
                f"cannot charge negative cycles ({cycles})")
        self.cycles += cycles

    @property
    def seconds(self) -> float:
        """Virtual seconds elapsed."""
        return self.cycles / self.frequency_hz

    def before(self, deadline_seconds: float) -> bool:
        """Whether the clock is still before ``deadline_seconds``."""
        return self.seconds < deadline_seconds
