"""Campaign statistics: counters, curves and result records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..memsim.costmodel import ExecShape


@dataclass
class RunningShape:
    """Accumulates per-execution shape quantities for averaging."""

    execs: int = 0
    traversals: int = 0
    unique_locations: int = 0
    used_bytes_last: int = 0
    interesting: int = 0

    def absorb(self, shape: ExecShape) -> None:
        self.execs += 1
        self.traversals += shape.traversals
        self.unique_locations += shape.unique_locations
        self.used_bytes_last = shape.used_bytes
        if shape.interesting:
            self.interesting += 1

    def mean_shape(self) -> ExecShape:
        """Representative steady-state shape (for the contention model)."""
        n = max(self.execs, 1)
        return ExecShape(
            traversals=self.traversals // n,
            unique_locations=self.unique_locations // n,
            used_bytes=self.used_bytes_last,
            interesting=False)


@dataclass
class CampaignResult:
    """Everything a finished campaign reports.

    Attributes:
        benchmark / fuzzer / map_size / metric / lafintel: configuration
            echo for reporting.
        execs: test cases executed (including the seed dry-run).
        virtual_seconds: modeled campaign duration consumed.
        throughput: execs per virtual second.
        discovered_locations: distinct map locations ever lit (the
            campaign's map-space coverage).
        true_edge_coverage: distinct *program* edges covered by the final
            corpus under a collision-free independent evaluation, or
            None if not computed (paper §V-A3's "bias-free coverage
            build").
        used_key: BigMap slot high-water mark (None for AFL).
        unique_crashes: Crashwalk-deduplicated crash count.
        afl_unique_crashes: AFL's map-based dedup count (biased; kept
            for comparison).
        corpus: final queue inputs (seeds + interesting finds).
        coverage_curve: (virtual seconds, discovered locations) samples.
        crash_curve: (virtual seconds, cumulative unique crashes).
        op_cycles: total modeled cycles per operation category.
        interesting_execs: how many runs were deemed interesting.
        stopped_by: ``"budget"`` (virtual deadline) or ``"execs"`` (real
            execution cap).
        mean_shape: average execution shape (drives Figure 9's
            contention model).
        hangs: executions exceeding the timeout budget.
        unique_hangs: hangs deduplicated against ``virgin_tmout``.
        restarts: supervised restarts this instance went through
            (parallel sessions only; 0 for solo campaigns).
        faults_injected: fault events injected into this instance
            (parallel sessions only; includes unplanned failures).
    """

    benchmark: str
    fuzzer: str
    map_size: int
    metric: str
    lafintel: bool
    execs: int
    virtual_seconds: float
    throughput: float
    discovered_locations: int
    used_key: Optional[int]
    unique_crashes: int
    afl_unique_crashes: int
    corpus: List[bytes]
    coverage_curve: List[Tuple[float, int]]
    crash_curve: List[Tuple[float, int]]
    op_cycles: Dict[str, float]
    interesting_execs: int
    stopped_by: str
    mean_shape: ExecShape
    true_edge_coverage: Optional[int] = None
    hangs: int = 0
    unique_hangs: int = 0
    restarts: int = 0
    faults_injected: int = 0

    @property
    def corpus_size(self) -> int:
        return len(self.corpus)

    def op_time_share(self) -> Dict[str, float]:
        """Fraction of modeled time per operation category."""
        total = sum(self.op_cycles.values())
        if total <= 0:
            return {k: 0.0 for k in self.op_cycles}
        return {k: v / total for k, v in self.op_cycles.items()}
