"""Seed pool with AFL's favored-entry culling.

AFL keeps, for every map location, the "top rated" queue entry covering
it — the one minimizing ``exec_time × input_len`` — and marks a minimal
winner set as *favored*; the scheduler then strongly prefers favored
entries. The same mechanism is implemented here over structure-native
location indices.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

import numpy as np

from .seed import Seed


class SeedPool:
    """Queue of seeds plus the top-rated index for culling."""

    def __init__(self) -> None:
        self.seeds: List[Seed] = []
        # map location -> index into self.seeds of the current top entry
        self._top_rated: Dict[int, int] = {}
        self._cull_pending = False

    def __len__(self) -> int:
        return len(self.seeds)

    def __iter__(self) -> Iterator[Seed]:
        return iter(self.seeds)

    def add(self, seed: Seed) -> None:
        """Admit a seed and update the top-rated table."""
        idx = len(self.seeds)
        self.seeds.append(seed)
        score = seed.cull_score()
        for loc in seed.covered_locations.tolist():
            best = self._top_rated.get(loc)
            if best is None or score < self.seeds[best].cull_score():
                self._top_rated[loc] = idx
        self._cull_pending = True

    def cull(self) -> int:
        """Recompute favored flags; returns the number of favored seeds.

        Greedy set cover in AFL's style: walk the map locations, and for
        any location not yet covered by a favored entry, favor its
        top-rated seed (which then accounts for all its locations).
        """
        if not self._cull_pending:
            return sum(1 for s in self.seeds if s.favored)
        for seed in self.seeds:
            seed.favored = False
        covered: set = set()
        for loc, idx in self._top_rated.items():
            if loc in covered:
                continue
            winner = self.seeds[idx]
            if not winner.favored:
                winner.favored = True
            covered.update(winner.covered_locations.tolist())
        self._cull_pending = False
        return sum(1 for s in self.seeds if s.favored)

    def pending_favored(self) -> int:
        """Favored entries that have not been fuzzed yet."""
        self.cull()
        return sum(1 for s in self.seeds if s.favored and not s.fuzzed)

    def mean_exec_cycles(self) -> float:
        if not self.seeds:
            return 0.0
        return float(np.mean([s.exec_cycles for s in self.seeds]))

    def pick_splice_partner(self, rng: np.random.Generator,
                            exclude_id: int) -> Optional[Seed]:
        """A random other seed for havoc splicing, or None."""
        candidates = [s for s in self.seeds if s.seed_id != exclude_id]
        if not candidates:
            return None
        return candidates[int(rng.integers(0, len(candidates)))]
