"""The fuzzing campaign loop: AFL's workflow over synthetic targets.

One :class:`Campaign` wires together every substrate in the library —
target executor, instrumentation pipeline, coverage map (AFL or
BigMap), virgin-map fitness, scheduler, mutator, crash triage and the
memory-hierarchy cost model — and runs the paper's Figure 1 workflow
under a *virtual* time budget: every iteration is charged its modeled
cycle cost, so configurations with expensive map operations execute
fewer test cases in the same budget, exactly as on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core import (AflCoverage, BigMapCoverage, COUNTER_SATURATE,
                    CoverageMap, VirginMap)
from ..core.errors import CampaignConfigError
from ..instrumentation import apply_lafintel, build_instrumentation
from ..memsim.calibration import model_for_benchmark
from ..memsim.costmodel import AFL, BIGMAP, BitmapCostModel, ExecShape
from ..memsim.machine import Machine, XEON_E5645
from ..target import BuiltBenchmark, Executor, get_benchmark
from ..telemetry.recorder import TelemetryRecorder
from ..telemetry.spans import NULL_TRACER
from .clock import VirtualClock
from .mutation import Mutator
from .pool import SeedPool
from .scheduling import Scheduler
from .seed import Seed
from .stats import CampaignResult, RunningShape
from .triage import AflCrashTriager, CrashwalkTriager

#: Classic fork-server cost per execution (~250 us at 2.4 GHz).
FORK_OVERHEAD_CYCLES = 600_000.0


@dataclass(frozen=True)
class CampaignConfig:
    """Configuration of one fuzzing campaign.

    Attributes:
        benchmark: registry name (:func:`repro.target.get_benchmark`).
        fuzzer: ``"afl"`` (flat bitmap) or ``"bigmap"``.
        map_size: coverage bitmap size in bytes (power of two).
        metric: instrumentation name (``"afl-edge"``, ``"ngram3"``, ...).
        lafintel: apply the laf-intel transform to the target first.
        scale: benchmark down-scaling for cheap runs (1.0 = paper size).
        seed_scale: seed-corpus scaling; defaults to ``scale``.
        virtual_seconds: modeled time budget (the paper runs 24 h =
            86,400; experiments use scaled-down budgets, documented in
            EXPERIMENTS.md).
        max_real_execs: hard cap on actual executions, as a guard.
        rng_seed: randomness for scheduling/mutation (campaign replica).
        counter_mode: 8-bit counter overflow policy.
        non_temporal_reset: §IV-E option; ``None`` resolves to the
            paper's setup (auto: enabled for AFL once the map is
            DRAM-bound, pointless for BigMap).
        trim_seeds: run AFL's trim stage on every admitted queue entry
            (trial executions are charged like any others).
        persistent_mode: feed inputs in a loop without fork() overhead,
            as the paper's FuzzBench-derived setup does (§V-A1);
            disabling charges a per-execution fork cost.
        hang_factor: an execution whose modeled cost exceeds this
            multiple of the seed-corpus mean is a *hang* (AFL's ``-t``
            timeout): reported, deduplicated against ``virgin_tmout``,
            never admitted to the queue. ``None`` disables hang
            detection.
        batch_execution: run each seed's whole energy budget as one
            vectorized batch (mutation, execution, coverage compare),
            replaying only crash / hang / possibly-interesting traces
            through the scalar pipeline. Results are bit-identical to
            the serial engine — same RNG stream, same admits, same
            curves, same checkpoints — it is purely an execution
            strategy (see DESIGN.md, "batch equivalence contract").
        use_dictionary: extract the target's compare operands as an
            autodictionary and let havoc stamp them in — the *other*
            road (besides laf-intel) past multi-byte magic compares.
        anchor_rate: override the Figure 6 calibration anchor.
        machine: hardware model (defaults to the paper's Xeon).
        curve_points: number of coverage/crash curve samples.
        compute_true_coverage: re-run the final corpus through a
            collision-free evaluator (costs one pass over the corpus).
    """

    benchmark: str
    fuzzer: str
    map_size: int
    metric: str = "afl-edge"
    lafintel: bool = False
    scale: float = 1.0
    seed_scale: Optional[float] = None
    virtual_seconds: float = 600.0
    max_real_execs: int = 200_000
    rng_seed: int = 0
    counter_mode: str = COUNTER_SATURATE
    non_temporal_reset: Optional[bool] = None
    merged_classify_compare: bool = True
    trim_seeds: bool = False
    persistent_mode: bool = True
    hang_factor: Optional[float] = 20.0
    batch_execution: bool = True
    use_dictionary: bool = False
    anchor_rate: Optional[float] = None
    machine: Machine = XEON_E5645
    curve_points: int = 60
    compute_true_coverage: bool = False

    def __post_init__(self) -> None:
        if self.fuzzer not in (AFL, BIGMAP):
            raise CampaignConfigError(f"unknown fuzzer {self.fuzzer!r}")
        if self.virtual_seconds <= 0:
            raise CampaignConfigError("virtual_seconds must be positive")
        if self.max_real_execs <= 0:
            raise CampaignConfigError("max_real_execs must be positive")


class Campaign:
    """A single fuzzing session (one instance, one configuration).

    Args:
        config: the campaign configuration.
        built: a pre-built benchmark (program + seeds) to reuse across
            campaigns; built from ``config`` when omitted.
        telemetry: an optional
            :class:`~repro.telemetry.TelemetryRecorder`. When given,
            the campaign emits lifecycle + periodic snapshot events
            (one per coverage-curve sample), observes per-op cycle and
            memory-level attribution, and profiles the hot path with
            spans over the virtual clock. When omitted, the null tracer
            keeps the hot path free of telemetry work.
    """

    def __init__(self, config: CampaignConfig,
                 built: Optional[BuiltBenchmark] = None,
                 telemetry: Optional[TelemetryRecorder] = None) -> None:
        self.config = config
        if built is None:
            built = get_benchmark(config.benchmark).build(
                config.scale, seed_scale=config.seed_scale)
        self.built = built

        program = built.program
        if config.lafintel and not program.meta.get("laf_applied"):
            program = apply_lafintel(program)
        self.program = program
        self.executor = Executor(program)
        self.instrumentation = build_instrumentation(
            config.metric, program, config.map_size, seed=config.rng_seed)

        self.coverage = self._make_coverage_map()
        self.virgin = VirginMap(config.map_size)
        self.crashwalk = CrashwalkTriager()
        self.afl_triage = AflCrashTriager(config.map_size)

        self.rng = np.random.default_rng(
            np.random.PCG64(config.rng_seed + 0xF0CCA))
        self.pool = SeedPool()
        self.scheduler = Scheduler(self.pool, self.rng)
        dictionary = None
        if config.use_dictionary:
            from .dictionary import extract_dictionary
            dictionary = extract_dictionary(program)
        self.mutator = Mutator(self.rng,
                               max_len=max(program.input_len * 4, 64),
                               dictionary=dictionary)
        self.clock = VirtualClock(config.machine.frequency_hz)
        self.telemetry = telemetry
        self._tracer = NULL_TRACER if telemetry is None else telemetry.tracer
        if telemetry is not None:
            telemetry.bind_clock(lambda: self.clock.cycles)
        # Span handles are fetched once; with telemetry off these are
        # all the shared null span, so entering one costs two no-op
        # method calls (the benchmark-guarded disabled path).
        self._span_run_one = self._tracer.span("run_one")
        self._span_mutate = self._tracer.span("mutate")
        self._span_execute = self._tracer.span("execute")
        self._span_classify = self._tracer.span("classify_compare")
        self._span_cost = self._tracer.span("cost_eval")
        self.shape_stats = RunningShape()
        self.op_cycles: Dict[str, float] = {
            "execution": 0.0, "reset": 0.0, "classify": 0.0,
            "compare": 0.0, "hash": 0.0, "others": 0.0}
        self.execs = 0
        self.hangs = 0
        self.unique_hangs = 0
        #: Lifetime supervision counters (parallel sessions increment
        #: these across checkpoint restores; see repro.faults).
        self.restarts = 0
        self.faults_injected = 0
        #: Extra cycle multiplier while a ``slow`` fault is active.
        self.fault_multiplier = 1.0
        self._next_seed_id = 0
        self._hang_budget_cycles: Optional[float] = None
        self.tmout_triage = AflCrashTriager(config.map_size)
        self.model: Optional[BitmapCostModel] = None

    # ------------------------------------------------------------------

    def _make_coverage_map(self) -> CoverageMap:
        cfg = self.config
        if cfg.fuzzer == AFL:
            # The functional flag only annotates access records; the
            # cost model resolves None (auto) itself. Mirror the auto
            # rule so accounting and pricing agree: NT once the flat
            # map's working set is DRAM-bound.
            nt = cfg.non_temporal_reset
            if nt is None:
                nt = 2 * cfg.map_size > cfg.machine.llc.size_bytes
            return AflCoverage(cfg.map_size, non_temporal_reset=nt,
                               counter_mode=cfg.counter_mode,
                               validate_keys=False)
        return BigMapCoverage(cfg.map_size, counter_mode=cfg.counter_mode,
                              validate_keys=False)

    def _resolve_nt(self):
        """None = auto (resolved inside the calibration factory)."""
        return self.config.non_temporal_reset

    def _pipeline(self, data: bytes, want_snapshot: bool = False):
        """Execute one test case through the full coverage pipeline.

        Returns ``(exec_result, compare_result, shape, snapshot)`` where
        ``snapshot`` is ``(covered_locations, coverage_hash)`` captured
        while the trace is still in the map (None unless the run is
        interesting or ``want_snapshot`` is set).
        """
        with self._span_execute:
            result = self.executor.execute(data)
        inp = np.frombuffer(data, dtype=np.uint8)
        keys, counts = self.instrumentation.keys_for(result, inp)

        self.coverage.reset()
        n_unique = self.coverage.update(keys, counts)
        with self._span_classify:
            compare = self.coverage.classify_and_compare(self.virgin)

        interesting = compare.interesting
        hash_bytes = 0
        snapshot = None
        if interesting or want_snapshot:
            cov_hash = self.coverage.hash()  # priced via the shape below
            hash_bytes = self.coverage.active_bytes()
            snapshot = (self.coverage.nonzero_locations().copy(), cov_hash)
        shape = ExecShape(
            traversals=result.traversals,
            unique_locations=n_unique,
            used_bytes=self.coverage.active_bytes()
            if self.config.fuzzer == BIGMAP else 0,
            interesting=interesting,
            hash_bytes=hash_bytes)
        return result, compare, shape, snapshot

    def _charge(self, shape: ExecShape, ops=None) -> float:
        """Charge one execution's modeled cost to the virtual clock.

        ``ops`` may carry a precomputed :class:`OpCycles` (the batched
        engine prices whole batches at once); it must equal
        ``model.exec_cycles(shape)`` bit-for-bit, which
        ``exec_cycles_batch`` guarantees.
        """
        if ops is None:
            with self._span_cost:
                ops = self.model.exec_cycles(shape)
        total = ops.total
        multiplier = (getattr(self, "cycle_multiplier", 1.0) *
                      self.fault_multiplier)
        self.clock.charge(total * multiplier)
        # Unrolled ops.as_dict() accumulation: per-key float order is
        # what checkpoint equality depends on, and it is unchanged.
        oc = self.op_cycles
        oc["execution"] += ops.execution
        oc["reset"] += ops.reset
        oc["classify"] += ops.classify
        oc["compare"] += ops.compare
        oc["hash"] += ops.hash
        oc["others"] += ops.others
        if self.telemetry is not None:
            self._observe_cost(ops, shape)
        self.shape_stats.absorb(shape)
        self.execs += 1
        return total

    def _observe_cost(self, ops, shape: ExecShape) -> None:
        """Feed one execution's modeled cost into telemetry.

        Per-op cycles become span deposits (``op.execution`` etc., the
        Figure 3 categories) and the cost model's hierarchy attribution
        becomes ``memsim.share.*`` histogram observations — the per-op
        L1/L2/LLC/DRAM/TLB decomposition of tracing cost.
        """
        tracer = self._tracer
        for key, value in ops.as_dict().items():
            tracer.add("op." + key, value)
        registry = self.telemetry.registry
        for level, share in self.model.level_share(shape).items():
            registry.histogram("memsim.share." + level).observe(share)

    def _trace_hash(self, data: bytes) -> int:
        """Classified-trace hash of one execution, without touching
        the virgin map (the trim oracle). Charged like a normal run."""
        result = self.executor.execute(data)
        inp = np.frombuffer(data, dtype=np.uint8)
        keys, counts = self.instrumentation.keys_for(result, inp)
        self.coverage.reset()
        n_unique = self.coverage.update(keys, counts)
        self.coverage.classify()
        value = self.coverage.hash()
        self._charge(ExecShape(
            traversals=result.traversals, unique_locations=n_unique,
            used_bytes=self.coverage.active_bytes()
            if self.config.fuzzer == BIGMAP else 0,
            interesting=True,
            hash_bytes=self.coverage.active_bytes()))
        return value

    def _admit(self, data: bytes, exec_cycles: float, depth: int,
               parent_id: Optional[int], snapshot) -> None:
        if self.config.trim_seeds and self.model is not None:
            from .trim import trim_input
            data = trim_input(data, self._trace_hash).data
        locations, cov_hash = snapshot
        seed = Seed(
            seed_id=self._next_seed_id, data=data,
            exec_cycles=exec_cycles, coverage_hash=cov_hash,
            covered_locations=locations, depth=depth,
            found_at=self.clock.seconds, parent_id=parent_id)
        self._next_seed_id += 1
        self.pool.add(seed)

    def _is_hang(self, cycles: float) -> bool:
        """AFL's timeout rule on the modeled execution cost.

        Loop-heavy inputs (huge traversal counts) can exceed any wall
        budget on a real target; the virtual equivalent is a cycle
        budget derived from the calibrated per-benchmark mean.
        """
        return (self._hang_budget_cycles is not None and
                cycles > self._hang_budget_cycles)

    def _handle_hang(self) -> None:
        self.hangs += 1
        if self.config.fuzzer == AFL:
            locations = self.coverage.nonzero_locations()
            new = self.tmout_triage.observe_sparse(
                locations, self.coverage.trace[locations])
        else:
            new = self.tmout_triage.observe(
                self.coverage.cov, limit=self.coverage.used_key)
        if new:
            self.unique_hangs += 1

    def _handle_crash(self, result, limit: Optional[int]) -> None:
        self.crashwalk.observe(result.crash, self.clock.seconds)
        if self.config.fuzzer == AFL:
            # Sparse merge: equivalent to the full-map merge, without
            # sweeping a multi-MB array on the host per crash.
            locations = self.coverage.nonzero_locations()
            self.afl_triage.observe_sparse(
                locations, self.coverage.trace[locations])
        else:
            self.afl_triage.observe(self.coverage.cov, limit=limit)

    # ------------------------------------------------------------------

    def _dry_run_and_calibrate(self) -> List[Tuple]:
        """Execute the seed corpus, then calibrate the cost model.

        The model needs a representative execution shape, which only
        exists after running the seeds — so seed executions are recorded
        first and charged retroactively once the model exists.
        """
        pending = []
        for data in self.built.seeds:
            result, compare, shape, snapshot = self._pipeline(
                data, want_snapshot=True)
            pending.append((data, result, compare, shape, snapshot))

        shapes = [p[3] for p in pending]
        reference = ExecShape(
            traversals=int(np.mean([s.traversals for s in shapes])),
            unique_locations=int(np.mean([s.unique_locations
                                          for s in shapes])),
            used_bytes=shapes[-1].used_bytes)
        self.model = model_for_benchmark(
            self.config.benchmark, self.config.fuzzer,
            self.config.map_size, reference,
            n_edges=self.program.n_edges, machine=self.config.machine,
            anchor_rate=self.config.anchor_rate,
            non_temporal_reset=self._resolve_nt(),
            fork_overhead_cycles=0.0 if self.config.persistent_mode
            else FORK_OVERHEAD_CYCLES,
            merged_classify_compare=self.config.merged_classify_compare)

        if self.config.hang_factor is not None:
            mean_cycles = float(np.mean(
                [self.model.exec_cycles(s).total
                 for s in shapes])) if shapes else 0.0
            self._hang_budget_cycles = \
                self.config.hang_factor * max(mean_cycles, 1.0)

        for data, result, compare, shape, snapshot in pending:
            cycles = self._charge(shape)
            if result.crash is not None:
                self._handle_crash(result, self._compare_limit())
            else:
                # User seeds are always admitted, as in AFL.
                self._admit(data, cycles, depth=0, parent_id=None,
                            snapshot=snapshot)
        return pending

    def _compare_limit(self) -> Optional[int]:
        return (self.coverage.used_key
                if self.config.fuzzer == BIGMAP else None)

    def start(self) -> None:
        """Dry-run the seeds and calibrate; idempotent."""
        if self.model is not None:
            return
        if self.telemetry is not None:
            self.telemetry.emit(
                "campaign_start", 0.0,
                benchmark=self.config.benchmark,
                fuzzer=self.config.fuzzer,
                map_size=self.config.map_size,
                rng_seed=self.config.rng_seed)
        self._dry_run_and_calibrate()
        self._curve_step = (self.config.virtual_seconds /
                            self.config.curve_points)
        self._next_sample = self._curve_step
        self.coverage_curve: List[Tuple[float, int]] = []
        self.stopped_by = "budget"
        #: Contention multiplier on charged cycles (set by parallel
        #: sessions; 1.0 when running alone).
        self.cycle_multiplier = 1.0

    def _record_curve(self) -> None:
        while self.clock.seconds >= self._next_sample:
            self.coverage_curve.append(
                (self._next_sample, self.virgin.count_discovered()))
            if self.telemetry is not None:
                self._emit_snapshot(self._next_sample)
            self._next_sample += self._curve_step

    def _emit_snapshot(self, t: float) -> None:
        """One periodic progress sample (drives plot_data rows).

        Sampled on the coverage-curve grid, so the event series — like
        the curve — is a pure function of campaign state at fixed
        virtual times, which is what makes telemetry artifacts
        byte-identical across reruns and checkpoint resumes.
        """
        from ..analysis.collision import collision_rate
        seeds = self.pool.seeds
        edges = self.virgin.count_discovered()
        density = edges / self.config.map_size
        # cull() is idempotent and re-run by the scheduler, so reading
        # favored counts here does not perturb the fuzzing stream.
        favored = self.pool.cull()
        registry = self.telemetry.registry
        registry.gauge("campaign.queue_depth").set(len(seeds))
        registry.gauge("campaign.edges").set(edges)
        registry.gauge("campaign.map_density").set(density)
        registry.gauge("campaign.execs").set(self.execs)
        self.telemetry.emit(
            "snapshot", t,
            execs=self.execs,
            execs_per_sec=self.execs / max(t, 1e-9),
            edges=edges,
            map_density=density,
            collision_rate=collision_rate(self.config.map_size, edges),
            queue_depth=len(seeds),
            pending_total=sum(1 for s in seeds if not s.fuzzed),
            pending_favs=sum(1 for s in seeds
                             if s.favored and not s.fuzzed),
            favored=favored,
            queue_cycles=self.scheduler.queue_cycles,
            cur_path=min(self.scheduler._cursor, max(len(seeds) - 1, 0)),
            crashes=self.crashwalk.unique_crashes,
            hangs=self.unique_hangs,
            max_depth=max((s.depth for s in seeds), default=0))

    def _exhausted(self, deadline: float) -> bool:
        if self.execs >= self.config.max_real_execs:
            self.stopped_by = "execs"
            return True
        return not self.clock.before(deadline)

    def step_until(self, deadline_seconds: float) -> None:
        """Fuzz until the virtual clock reaches ``deadline_seconds``."""
        if self.model is None:
            raise RuntimeError("call start() before step_until()")
        deadline = min(deadline_seconds, self.config.virtual_seconds)
        while not self._exhausted(deadline):
            if not self.pool.seeds:
                # Every seed crashed: fuzz from a random input.
                filler = self.rng.integers(
                    0, 256, size=self.program.input_len,
                    dtype=np.uint8).tobytes()
                result, compare, shape, snapshot = self._pipeline(
                    filler, want_snapshot=True)
                cycles = self._charge(shape)
                if result.crash is None:
                    self._admit(filler, cycles, 0, None, snapshot)
                continue

            self.run_one(self.scheduler.next_seed(), deadline)

    def run_one(self, seed: Seed, deadline: float) -> None:
        """Fuzz one scheduled seed: its full havoc energy loop.

        Both engines draw the seed's whole energy budget through
        :meth:`Mutator.havoc_batch` up front — the canonical mutation
        stream — so switching ``batch_execution`` cannot move a single
        RNG draw. The serial engine then walks the pre-generated
        mutants through the scalar pipeline one at a time; the batched
        engine executes them all at once and replays only the traces
        the vectorized pre-filter cannot dismiss.
        """
        with self._span_run_one:
            energy = self.scheduler.energy_for(seed)
            seed.fuzzed = True
            partner = self.pool.pick_splice_partner(self.rng, seed.seed_id)
            if energy <= 0:
                return
            with self._span_mutate:
                batch = self.mutator.havoc_batch(
                    seed.data, energy,
                    splice_with=partner.data if partner else None)
            if self.config.batch_execution:
                self._run_batch(seed, batch, deadline)
                return
            for i in range(energy):
                if self._exhausted(deadline):
                    break
                mutant = batch.tobytes(i)
                result, compare, shape, snapshot = self._pipeline(mutant)
                cycles = self._charge(shape)
                if result.crash is not None:
                    self._handle_crash(result, self._compare_limit())
                elif self._is_hang(cycles):
                    # Hanging inputs are reported, never queued (AFL
                    # drops them from the fuzzing flow the same way).
                    self._handle_hang()
                elif compare.interesting:
                    self._admit(mutant, cycles, seed.depth + 1,
                                seed.seed_id, snapshot)
                self._record_curve()

    def _run_batch(self, seed: Seed, batch, deadline: float) -> None:
        """Batched engine: execute a whole energy budget at once.

        The vectorized front half (execute, key gather, aggregate,
        classify, compare against virgin) computes, per trace, a
        conservative "could this be interesting?" flag plus its exact
        cheap-path cycle cost. Traces that crash, would time out, or
        might be interesting replay the scalar pipeline — which also
        performs the virgin merge exactly as the serial engine would.
        Everything else is charged from the batch pricing without ever
        materializing a coverage map.

        The conservative flags are sound under in-order processing:
        virgin bits only clear monotonically, so a trace dismissed
        against the batch-start virgin map stays uninteresting no
        matter what earlier traces merge before its turn.
        """
        # No spans around the batch kernels: the serial engine records
        # one {execute, classify_compare, cost_eval} call per execution
        # (zero clock delta — charging happens later), so the batched
        # engine deposits the same per-exec calls below instead of
        # phantom per-batch entries, keeping profiles bit-identical.
        bres = self.executor.execute_batch(batch.data, batch.lengths)
        keys, counts = self.instrumentation.keys_for_batch(
            bres, list(batch.rows()))
        update = self.coverage.update_batch(keys, counts,
                                            bres.offsets)
        flags = self.coverage.compare_batch(update, self.virgin)

        bigmap = self.config.fuzzer == BIGMAP
        used = self.coverage.active_bytes() if bigmap else 0
        batch_ops = self.model.exec_cycles_batch(
            bres.traversals, update.n_unique, used_bytes=used)
        totals = batch_ops.totals()

        budget = self._hang_budget_cycles
        # The cheap-path cost is exact for non-replayed traces, so the
        # hang prediction matches the serial engine's verdict.
        base_replays = np.fromiter((c is not None for c in bres.crashes),
                                   dtype=bool, count=bres.n) | flags
        replays = base_replays if budget is None \
            else base_replays | (totals > budget)

        last_cheap = -1  # last processed trace that skipped the map
        for i in range(bres.n):
            if self._exhausted(deadline):
                break
            if replays[i]:
                mutant = batch.tobytes(i)
                result, compare, shape, snapshot = self._pipeline(mutant)
                cycles = self._charge(shape)
                if result.crash is not None:
                    self._handle_crash(result, self._compare_limit())
                elif self._is_hang(cycles):
                    self._handle_hang()
                elif compare.interesting:
                    self._admit(mutant, cycles, seed.depth + 1,
                                seed.seed_id, snapshot)
                last_cheap = -1
                if bigmap and self.coverage.active_bytes() != used:
                    # used_key moved: re-price the remaining cheap
                    # entries against the grown condensed prefix.
                    used = self.coverage.active_bytes()
                    batch_ops = self.model.exec_cycles_batch(
                        bres.traversals, update.n_unique,
                        used_bytes=used)
                    totals = batch_ops.totals()
                    if budget is not None:
                        replays = base_replays | (totals > budget)
            else:
                shape = ExecShape(
                    traversals=int(bres.traversals[i]),
                    unique_locations=int(update.n_unique[i]),
                    used_bytes=used, interesting=False, hash_bytes=0)
                self._charge(shape, ops=batch_ops.row(i))
                if self.telemetry is not None:
                    # The per-exec span calls the scalar pipeline would
                    # have recorded (its clock deltas are zero: the cost
                    # is charged in _charge, outside those spans).
                    tracer = self._tracer
                    tracer.add("execute", 0.0)
                    tracer.add("classify_compare", 0.0)
                    tracer.add("cost_eval", 0.0)
                last_cheap = i
            self._record_curve()

        if last_cheap >= 0:
            # Leave the map exactly as the serial engine would: holding
            # the classified trace of the last processed mutant
            # (checkpoints capture the coverage map). reset + update +
            # classify reproduces classify_and_compare's map effect —
            # the merge never writes the local map. Host-only work: no
            # clock, no virgin, no counters.
            mkeys, mcounts = self.instrumentation.keys_for(
                bres.result_for(last_cheap), batch.row(last_cheap))
            self.coverage.reset()
            self.coverage.update(mkeys, mcounts)
            self.coverage.classify()

    def snapshot(self):
        """Capture a resumable checkpoint of the campaign's state.

        See :mod:`repro.fuzzer.checkpoint`; requires :meth:`start` to
        have run (the model and curves must exist).
        """
        from .checkpoint import snapshot_campaign
        return snapshot_campaign(self)

    def restore(self, checkpoint) -> None:
        """Reset to a checkpoint previously taken from this campaign.

        Used by supervised parallel sessions to resume a crashed
        instance from its last durable state instead of from the seed
        corpus.
        """
        from .checkpoint import restore_campaign
        restore_campaign(self, checkpoint)

    def import_input(self, data: bytes) -> bool:
        """Run a peer's queue entry; admit it if it covers new ground.

        This is AFL's ``-M``/``-S`` corpus synchronization: imported
        entries are executed (and charged) like any test case.
        """
        result, compare, shape, snapshot = self._pipeline(data)
        cycles = self._charge(shape)
        if result.crash is not None:
            self._handle_crash(result, self._compare_limit())
            return False
        if compare.interesting:
            self._admit(data, cycles, 0, None, snapshot)
            return True
        return False

    def finish(self) -> CampaignResult:
        """Close curves and assemble the result record."""
        self.coverage_curve.append((self.clock.seconds,
                                    self.virgin.count_discovered()))
        if self.telemetry is not None:
            self._emit_snapshot(self.clock.seconds)
            self.telemetry.emit(
                "campaign_finish", self.clock.seconds,
                execs=self.execs,
                edges=self.virgin.count_discovered(),
                crashes=self.crashwalk.unique_crashes,
                hangs=self.unique_hangs,
                stop_reason=self.stopped_by)
        true_coverage = None
        if self.config.compute_true_coverage:
            from ..analysis.coverage_eval import evaluate_corpus
            true_coverage = evaluate_corpus(
                self.program, [s.data for s in self.pool.seeds],
                executor=self.executor)
        config = self.config
        virtual = max(self.clock.seconds, 1e-9)
        return CampaignResult(
            benchmark=config.benchmark, fuzzer=config.fuzzer,
            map_size=config.map_size, metric=config.metric,
            lafintel=config.lafintel, execs=self.execs,
            virtual_seconds=virtual,
            throughput=self.execs / virtual,
            discovered_locations=self.virgin.count_discovered(),
            used_key=(self.coverage.used_key
                      if config.fuzzer == BIGMAP else None),
            unique_crashes=self.crashwalk.unique_crashes,
            afl_unique_crashes=self.afl_triage.unique_crashes,
            corpus=[s.data for s in self.pool.seeds],
            coverage_curve=self.coverage_curve,
            crash_curve=self.crashwalk.curve(),
            op_cycles=dict(self.op_cycles),
            interesting_execs=self.shape_stats.interesting,
            stopped_by=self.stopped_by,
            mean_shape=self.shape_stats.mean_shape(),
            true_edge_coverage=true_coverage,
            hangs=self.hangs, unique_hangs=self.unique_hangs,
            restarts=self.restarts,
            faults_injected=self.faults_injected)

    def run(self) -> CampaignResult:
        """Run the campaign to its virtual deadline (or exec cap)."""
        self.start()
        self.step_until(self.config.virtual_seconds)
        return self.finish()


def run_campaign(config: CampaignConfig,
                 built: Optional[BuiltBenchmark] = None,
                 telemetry=None) -> CampaignResult:
    """Convenience wrapper: construct and run a campaign."""
    return Campaign(config, built=built, telemetry=telemetry).run()
