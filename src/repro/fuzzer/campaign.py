"""The fuzzing campaign loop: AFL's workflow over synthetic targets.

One :class:`Campaign` wires together every substrate in the library —
target executor, instrumentation pipeline, coverage map (AFL or
BigMap), virgin-map fitness, scheduler, mutator, crash triage and the
memory-hierarchy cost model — and runs the paper's Figure 1 workflow
under a *virtual* time budget: every iteration is charged its modeled
cycle cost, so configurations with expensive map operations execute
fewer test cases in the same budget, exactly as on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core import (AflCoverage, BigMapCoverage, COUNTER_SATURATE,
                    CoverageMap, VirginMap)
from ..core.errors import CampaignConfigError
from ..instrumentation import apply_lafintel, build_instrumentation
from ..memsim.calibration import model_for_benchmark
from ..memsim.costmodel import AFL, BIGMAP, BitmapCostModel, ExecShape
from ..memsim.machine import Machine, XEON_E5645
from ..target import BuiltBenchmark, Executor, get_benchmark
from ..target.executor import ExecResult
from ..telemetry.recorder import TelemetryRecorder
from ..telemetry.spans import NULL_TRACER
from .clock import VirtualClock
from .mutation import Mutator
from .pool import SeedPool
from .scheduling import Scheduler
from .seed import Seed
from .stats import CampaignResult, RunningShape
from .triage import AflCrashTriager, CrashwalkTriager

#: Classic fork-server cost per execution (~250 us at 2.4 GHz).
FORK_OVERHEAD_CYCLES = 600_000.0


@dataclass(frozen=True)
class CampaignConfig:
    """Configuration of one fuzzing campaign.

    Attributes:
        benchmark: registry name (:func:`repro.target.get_benchmark`).
        fuzzer: ``"afl"`` (flat bitmap) or ``"bigmap"``.
        map_size: coverage bitmap size in bytes (power of two).
        metric: instrumentation name (``"afl-edge"``, ``"ngram3"``, ...).
        lafintel: apply the laf-intel transform to the target first.
        scale: benchmark down-scaling for cheap runs (1.0 = paper size).
        seed_scale: seed-corpus scaling; defaults to ``scale``.
        virtual_seconds: modeled time budget (the paper runs 24 h =
            86,400; experiments use scaled-down budgets, documented in
            EXPERIMENTS.md).
        max_real_execs: hard cap on actual executions, as a guard.
        rng_seed: randomness for scheduling/mutation (campaign replica).
        counter_mode: 8-bit counter overflow policy.
        non_temporal_reset: §IV-E option; ``None`` resolves to the
            paper's setup (auto: enabled for AFL once the map is
            DRAM-bound, pointless for BigMap).
        trim_seeds: run AFL's trim stage on every admitted queue entry
            (trial executions are charged like any others).
        persistent_mode: feed inputs in a loop without fork() overhead,
            as the paper's FuzzBench-derived setup does (§V-A1);
            disabling charges a per-execution fork cost.
        hang_factor: an execution whose modeled cost exceeds this
            multiple of the seed-corpus mean is a *hang* (AFL's ``-t``
            timeout): reported, deduplicated against ``virgin_tmout``,
            never admitted to the queue. ``None`` disables hang
            detection.
        batch_execution: run each scheduled window's whole energy
            budget as one vectorized batch (mutation, execution,
            coverage compare), replaying only crash / hang /
            possibly-interesting traces through the scalar pipeline.
            Results are bit-identical to the serial engine at the same
            ``batch_window`` — same RNG stream, same admits, same
            curves, same checkpoints — it is purely an execution
            strategy (see DESIGN.md, "batch equivalence contract").
        batch_window: how many scheduled seeds one window accumulates
            before any of their mutants execute. Scheduling, splice
            partners and havoc streams for all seeds in the window are
            drawn up front (in schedule order); processing then walks
            the combined mega-batch in that same order. The window is a
            *semantic* knob — admissions discovered while processing
            seed A cannot influence the scheduling of seeds already in
            the window — but for any fixed window both engines (and
            every worker count of the shared-memory backend) produce
            bit-identical campaigns. Larger windows feed the vectorized
            kernels bigger uniform batches; 1 reproduces the classic
            one-seed-at-a-time loop.
        use_dictionary: extract the target's compare operands as an
            autodictionary and let havoc stamp them in — the *other*
            road (besides laf-intel) past multi-byte magic compares.
        anchor_rate: override the Figure 6 calibration anchor.
        machine: hardware model (defaults to the paper's Xeon).
        curve_points: number of coverage/crash curve samples.
        compute_true_coverage: re-run the final corpus through a
            collision-free evaluator (costs one pass over the corpus).
    """

    benchmark: str
    fuzzer: str
    map_size: int
    metric: str = "afl-edge"
    lafintel: bool = False
    scale: float = 1.0
    seed_scale: Optional[float] = None
    virtual_seconds: float = 600.0
    max_real_execs: int = 200_000
    rng_seed: int = 0
    counter_mode: str = COUNTER_SATURATE
    non_temporal_reset: Optional[bool] = None
    merged_classify_compare: bool = True
    trim_seeds: bool = False
    persistent_mode: bool = True
    hang_factor: Optional[float] = 20.0
    batch_execution: bool = True
    batch_window: int = 1
    use_dictionary: bool = False
    anchor_rate: Optional[float] = None
    machine: Machine = XEON_E5645
    curve_points: int = 60
    compute_true_coverage: bool = False

    def __post_init__(self) -> None:
        if self.fuzzer not in (AFL, BIGMAP):
            raise CampaignConfigError(f"unknown fuzzer {self.fuzzer!r}")
        if self.virtual_seconds <= 0:
            raise CampaignConfigError("virtual_seconds must be positive")
        if self.max_real_execs <= 0:
            raise CampaignConfigError("max_real_execs must be positive")
        if self.batch_window < 1:
            raise CampaignConfigError(
                f"batch_window must be >= 1, got {self.batch_window}")


@dataclass
class BatchFront:
    """Vectorized front-half summary of one (mega-)batch.

    Everything the batched processing loop needs per trace, and nothing
    more — deliberately free of flat key arrays so execution backends
    (``repro.fuzzer.mp``) can compute it in worker processes and ship
    only these four small arrays back. Replayed traces re-derive their
    full state through the scalar pipeline in the parent.

    Attributes:
        traversals: per-trace edge-traversal counts (``int64``).
        n_unique: distinct map locations per trace after collision
            aliasing (the cost model's ``unique_locations``).
        flags: conservative "could be interesting" flags from the fused
            batched compare (see ``CoverageMap.update_compare_batch``).
        crashes: per-trace crash mask.
        bres: the full :class:`BatchExecResult`, kept by the in-process
            backend so replays reuse the already-computed traces instead
            of re-executing. Optional — backends that compute the front
            remotely ship only the four arrays above and leave it None;
            replays then re-execute, producing bit-identical traces.
        update: the aggregated :class:`BatchUpdate`, kept for the same
            reason: it lets the processing loop re-test a flagged
            trace's keys against the *current* virgin map right before
            its replay and downgrade stale flags to the cheap path.
            Equally optional, equally result-neutral.
    """

    traversals: np.ndarray
    n_unique: np.ndarray
    flags: np.ndarray
    crashes: np.ndarray
    bres: Optional[object] = None
    update: Optional[object] = None

    @property
    def n(self) -> int:
        return int(self.traversals.size)


class Campaign:
    """A single fuzzing session (one instance, one configuration).

    Args:
        config: the campaign configuration.
        built: a pre-built benchmark (program + seeds) to reuse across
            campaigns; built from ``config`` when omitted.
        telemetry: an optional
            :class:`~repro.telemetry.TelemetryRecorder`. When given,
            the campaign emits lifecycle + periodic snapshot events
            (one per coverage-curve sample), observes per-op cycle and
            memory-level attribution, and profiles the hot path with
            spans over the virtual clock. When omitted, the null tracer
            keeps the hot path free of telemetry work.
    """

    def __init__(self, config: CampaignConfig,
                 built: Optional[BuiltBenchmark] = None,
                 telemetry: Optional[TelemetryRecorder] = None) -> None:
        self.config = config
        if built is None:
            built = get_benchmark(config.benchmark).build(
                config.scale, seed_scale=config.seed_scale)
        self.built = built

        program = built.program
        if config.lafintel and not program.meta.get("laf_applied"):
            program = apply_lafintel(program)
        self.program = program
        self.executor = Executor(program)
        self.instrumentation = build_instrumentation(
            config.metric, program, config.map_size, seed=config.rng_seed)

        self.coverage = self._make_coverage_map()
        self.virgin = VirginMap(config.map_size)
        self.crashwalk = CrashwalkTriager()
        self.afl_triage = AflCrashTriager(config.map_size)

        self.rng = np.random.default_rng(
            np.random.PCG64(config.rng_seed + 0xF0CCA))
        self.pool = SeedPool()
        self.scheduler = Scheduler(self.pool, self.rng)
        dictionary = None
        if config.use_dictionary:
            from .dictionary import extract_dictionary
            dictionary = extract_dictionary(program)
        self.mutator = Mutator(self.rng,
                               max_len=max(program.input_len * 4, 64),
                               dictionary=dictionary)
        self.clock = VirtualClock(config.machine.frequency_hz)
        self.telemetry = telemetry
        self._tracer = NULL_TRACER if telemetry is None else telemetry.tracer
        if telemetry is not None:
            telemetry.bind_clock(lambda: self.clock.cycles)
        # Span handles are fetched once; with telemetry off these are
        # all the shared null span, so entering one costs two no-op
        # method calls (the benchmark-guarded disabled path).
        self._span_run_one = self._tracer.span("run_one")
        self._span_mutate = self._tracer.span("mutate")
        self._span_execute = self._tracer.span("execute")
        self._span_classify = self._tracer.span("classify_compare")
        self._span_cost = self._tracer.span("cost_eval")
        self.shape_stats = RunningShape()
        self.op_cycles: Dict[str, float] = {
            "execution": 0.0, "reset": 0.0, "classify": 0.0,
            "compare": 0.0, "hash": 0.0, "others": 0.0}
        self.execs = 0
        self.hangs = 0
        self.unique_hangs = 0
        #: Lifetime supervision counters (parallel sessions increment
        #: these across checkpoint restores; see repro.faults).
        self.restarts = 0
        self.faults_injected = 0
        #: Extra cycle multiplier while a ``slow`` fault is active.
        self.fault_multiplier = 1.0
        self._next_seed_id = 0
        self._hang_budget_cycles: Optional[float] = None
        self.tmout_triage = AflCrashTriager(config.map_size)
        self.model: Optional[BitmapCostModel] = None

    # ------------------------------------------------------------------

    def _make_coverage_map(self) -> CoverageMap:
        cfg = self.config
        if cfg.fuzzer == AFL:
            # The functional flag only annotates access records; the
            # cost model resolves None (auto) itself. Mirror the auto
            # rule so accounting and pricing agree: NT once the flat
            # map's working set is DRAM-bound.
            nt = cfg.non_temporal_reset
            if nt is None:
                nt = 2 * cfg.map_size > cfg.machine.llc.size_bytes
            return AflCoverage(cfg.map_size, non_temporal_reset=nt,
                               counter_mode=cfg.counter_mode,
                               validate_keys=False)
        return BigMapCoverage(cfg.map_size, counter_mode=cfg.counter_mode,
                              validate_keys=False)

    def _resolve_nt(self):
        """None = auto (resolved inside the calibration factory)."""
        return self.config.non_temporal_reset

    def _pipeline(self, data: bytes, want_snapshot: bool = False,
                  precomputed: Optional[ExecResult] = None):
        """Execute one test case through the full coverage pipeline.

        ``precomputed`` may carry the trace from a batched execution of
        the same input — bit-identical to ``executor.execute(data)`` by
        the executor's contract — so replays skip the re-execution. The
        execute span is still entered (zero host work, zero clock
        delta) to keep telemetry call counts engine-independent.

        Returns ``(exec_result, compare_result, shape, snapshot)`` where
        ``snapshot`` is ``(covered_locations, coverage_hash)`` captured
        while the trace is still in the map (None unless the run is
        interesting or ``want_snapshot`` is set).
        """
        with self._span_execute:
            result = precomputed if precomputed is not None \
                else self.executor.execute(data)
        inp = np.frombuffer(data, dtype=np.uint8)
        keys, counts = self.instrumentation.keys_for(result, inp)

        self.coverage.reset()
        n_unique = self.coverage.update(keys, counts)
        with self._span_classify:
            compare = self.coverage.classify_and_compare(self.virgin)

        interesting = compare.interesting
        hash_bytes = 0
        snapshot = None
        if interesting or want_snapshot:
            cov_hash = self.coverage.hash()  # priced via the shape below
            hash_bytes = self.coverage.active_bytes()
            snapshot = (self.coverage.nonzero_locations().copy(), cov_hash)
        shape = ExecShape(
            traversals=result.traversals,
            unique_locations=n_unique,
            used_bytes=self.coverage.active_bytes()
            if self.config.fuzzer == BIGMAP else 0,
            interesting=interesting,
            hash_bytes=hash_bytes)
        return result, compare, shape, snapshot

    def _charge(self, shape: ExecShape, ops=None) -> float:
        """Charge one execution's modeled cost to the virtual clock.

        ``ops`` may carry a precomputed :class:`OpCycles` (the batched
        engine prices whole batches at once); it must equal
        ``model.exec_cycles(shape)`` bit-for-bit, which
        ``exec_cycles_batch`` guarantees.
        """
        if ops is None:
            with self._span_cost:
                ops = self.model.exec_cycles(shape)
        total = ops.total
        multiplier = (getattr(self, "cycle_multiplier", 1.0) *
                      self.fault_multiplier)
        self.clock.charge(total * multiplier)
        # Unrolled ops.as_dict() accumulation: per-key float order is
        # what checkpoint equality depends on, and it is unchanged.
        oc = self.op_cycles
        oc["execution"] += ops.execution
        oc["reset"] += ops.reset
        oc["classify"] += ops.classify
        oc["compare"] += ops.compare
        oc["hash"] += ops.hash
        oc["others"] += ops.others
        if self.telemetry is not None:
            self._observe_cost(ops, shape)
        self.shape_stats.absorb(shape)
        self.execs += 1
        return total

    def _observe_cost(self, ops, shape: ExecShape) -> None:
        """Feed one execution's modeled cost into telemetry.

        Per-op cycles become span deposits (``op.execution`` etc., the
        Figure 3 categories) and the cost model's hierarchy attribution
        becomes ``memsim.share.*`` histogram observations — the per-op
        L1/L2/LLC/DRAM/TLB decomposition of tracing cost.
        """
        tracer = self._tracer
        for key, value in ops.as_dict().items():
            tracer.add("op." + key, value)
        registry = self.telemetry.registry
        for level, share in self.model.level_share(shape).items():
            registry.histogram("memsim.share." + level).observe(share)

    def _trace_hash(self, data: bytes) -> int:
        """Classified-trace hash of one execution, without touching
        the virgin map (the trim oracle). Charged like a normal run."""
        result = self.executor.execute(data)
        inp = np.frombuffer(data, dtype=np.uint8)
        keys, counts = self.instrumentation.keys_for(result, inp)
        self.coverage.reset()
        n_unique = self.coverage.update(keys, counts)
        self.coverage.classify()
        value = self.coverage.hash()
        self._charge(ExecShape(
            traversals=result.traversals, unique_locations=n_unique,
            used_bytes=self.coverage.active_bytes()
            if self.config.fuzzer == BIGMAP else 0,
            interesting=True,
            hash_bytes=self.coverage.active_bytes()))
        return value

    def _admit(self, data: bytes, exec_cycles: float, depth: int,
               parent_id: Optional[int], snapshot) -> None:
        if self.config.trim_seeds and self.model is not None:
            from .trim import trim_input
            data = trim_input(data, self._trace_hash).data
        locations, cov_hash = snapshot
        seed = Seed(
            seed_id=self._next_seed_id, data=data,
            exec_cycles=exec_cycles, coverage_hash=cov_hash,
            covered_locations=locations, depth=depth,
            found_at=self.clock.seconds, parent_id=parent_id)
        self._next_seed_id += 1
        self.pool.add(seed)

    def _is_hang(self, cycles: float) -> bool:
        """AFL's timeout rule on the modeled execution cost.

        Loop-heavy inputs (huge traversal counts) can exceed any wall
        budget on a real target; the virtual equivalent is a cycle
        budget derived from the calibrated per-benchmark mean.
        """
        return (self._hang_budget_cycles is not None and
                cycles > self._hang_budget_cycles)

    def _handle_hang(self) -> None:
        self.hangs += 1
        if self.config.fuzzer == AFL:
            locations = self.coverage.nonzero_locations()
            new = self.tmout_triage.observe_sparse(
                locations, self.coverage.trace[locations])
        else:
            new = self.tmout_triage.observe(
                self.coverage.cov, limit=self.coverage.used_key)
        if new:
            self.unique_hangs += 1

    def _handle_crash(self, result, limit: Optional[int]) -> None:
        self.crashwalk.observe(result.crash, self.clock.seconds)
        if self.config.fuzzer == AFL:
            # Sparse merge: equivalent to the full-map merge, without
            # sweeping a multi-MB array on the host per crash.
            locations = self.coverage.nonzero_locations()
            self.afl_triage.observe_sparse(
                locations, self.coverage.trace[locations])
        else:
            self.afl_triage.observe(self.coverage.cov, limit=limit)

    # ------------------------------------------------------------------

    def _dry_run_and_calibrate(self) -> List[Tuple]:
        """Execute the seed corpus, then calibrate the cost model.

        The model needs a representative execution shape, which only
        exists after running the seeds — so seed executions are recorded
        first and charged retroactively once the model exists.
        """
        pending = []
        for data in self.built.seeds:
            result, compare, shape, snapshot = self._pipeline(
                data, want_snapshot=True)
            pending.append((data, result, compare, shape, snapshot))

        shapes = [p[3] for p in pending]
        reference = ExecShape(
            traversals=int(np.mean([s.traversals for s in shapes])),
            unique_locations=int(np.mean([s.unique_locations
                                          for s in shapes])),
            used_bytes=shapes[-1].used_bytes)
        self.model = model_for_benchmark(
            self.config.benchmark, self.config.fuzzer,
            self.config.map_size, reference,
            n_edges=self.program.n_edges, machine=self.config.machine,
            anchor_rate=self.config.anchor_rate,
            non_temporal_reset=self._resolve_nt(),
            fork_overhead_cycles=0.0 if self.config.persistent_mode
            else FORK_OVERHEAD_CYCLES,
            merged_classify_compare=self.config.merged_classify_compare)

        if self.config.hang_factor is not None:
            mean_cycles = float(np.mean(
                [self.model.exec_cycles(s).total
                 for s in shapes])) if shapes else 0.0
            self._hang_budget_cycles = \
                self.config.hang_factor * max(mean_cycles, 1.0)

        for data, result, compare, shape, snapshot in pending:
            cycles = self._charge(shape)
            if result.crash is not None:
                self._handle_crash(result, self._compare_limit())
            else:
                # User seeds are always admitted, as in AFL.
                self._admit(data, cycles, depth=0, parent_id=None,
                            snapshot=snapshot)
        return pending

    def _compare_limit(self) -> Optional[int]:
        return (self.coverage.used_key
                if self.config.fuzzer == BIGMAP else None)

    def start(self) -> None:
        """Dry-run the seeds and calibrate; idempotent."""
        if self.model is not None:
            return
        if self.telemetry is not None:
            self.telemetry.emit(
                "campaign_start", 0.0,
                benchmark=self.config.benchmark,
                fuzzer=self.config.fuzzer,
                map_size=self.config.map_size,
                rng_seed=self.config.rng_seed)
        self._dry_run_and_calibrate()
        self._curve_step = (self.config.virtual_seconds /
                            self.config.curve_points)
        self._next_sample = self._curve_step
        self.coverage_curve: List[Tuple[float, int]] = []
        self.stopped_by = "budget"
        #: Contention multiplier on charged cycles (set by parallel
        #: sessions; 1.0 when running alone).
        self.cycle_multiplier = 1.0

    def _record_curve(self) -> None:
        while self.clock.seconds >= self._next_sample:
            self.coverage_curve.append(
                (self._next_sample, self.virgin.count_discovered()))
            if self.telemetry is not None:
                self._emit_snapshot(self._next_sample)
            self._next_sample += self._curve_step

    def _emit_snapshot(self, t: float) -> None:
        """One periodic progress sample (drives plot_data rows).

        Sampled on the coverage-curve grid, so the event series — like
        the curve — is a pure function of campaign state at fixed
        virtual times, which is what makes telemetry artifacts
        byte-identical across reruns and checkpoint resumes.
        """
        from ..analysis.collision import collision_rate
        seeds = self.pool.seeds
        edges = self.virgin.count_discovered()
        density = edges / self.config.map_size
        # cull() is idempotent and re-run by the scheduler, so reading
        # favored counts here does not perturb the fuzzing stream.
        favored = self.pool.cull()
        registry = self.telemetry.registry
        registry.gauge("campaign.queue_depth").set(len(seeds))
        registry.gauge("campaign.edges").set(edges)
        registry.gauge("campaign.map_density").set(density)
        registry.gauge("campaign.execs").set(self.execs)
        self.telemetry.emit(
            "snapshot", t,
            execs=self.execs,
            execs_per_sec=self.execs / max(t, 1e-9),
            edges=edges,
            map_density=density,
            collision_rate=collision_rate(self.config.map_size, edges),
            queue_depth=len(seeds),
            pending_total=sum(1 for s in seeds if not s.fuzzed),
            pending_favs=sum(1 for s in seeds
                             if s.favored and not s.fuzzed),
            favored=favored,
            queue_cycles=self.scheduler.queue_cycles,
            cur_path=min(self.scheduler._cursor, max(len(seeds) - 1, 0)),
            crashes=self.crashwalk.unique_crashes,
            hangs=self.unique_hangs,
            max_depth=max((s.depth for s in seeds), default=0))

    def _exhausted(self, deadline: float) -> bool:
        if self.execs >= self.config.max_real_execs:
            self.stopped_by = "execs"
            return True
        return not self.clock.before(deadline)

    def step_until(self, deadline_seconds: float) -> None:
        """Fuzz until the virtual clock reaches ``deadline_seconds``."""
        if self.model is None:
            raise RuntimeError("call start() before step_until()")
        deadline = min(deadline_seconds, self.config.virtual_seconds)
        while not self._exhausted(deadline):
            if not self.pool.seeds:
                # Every seed crashed: fuzz from a random input.
                filler = self.rng.integers(
                    0, 256, size=self.program.input_len,
                    dtype=np.uint8).tobytes()
                result, compare, shape, snapshot = self._pipeline(
                    filler, want_snapshot=True)
                cycles = self._charge(shape)
                if result.crash is None:
                    self._admit(filler, cycles, 0, None, snapshot)
                continue

            window = self._collect_window()
            if window is None:
                continue
            if self.config.batch_execution:
                self._run_window_batched(window, deadline)
            else:
                self._run_window_serial(window, deadline)

    def _collect_window(self) -> Optional[Tuple["object", List[Seed],
                                               np.ndarray]]:
        """Schedule a window of seeds and draw their havoc streams.

        Up to ``batch_window`` seeds are scheduled in order; for each,
        the scheduler's skip walk, the splice-partner pick and the
        whole-energy :meth:`Mutator.havoc_draw` happen here, up front —
        the canonical mutation stream, consumed per seed in schedule
        order regardless of window size. The drawn stacks are then
        materialized by one cross-seed :meth:`Mutator.havoc_apply`
        pass: the mutation kernels run once per window over the
        combined row count, which is where the queue-cycle batching
        actually pays (per-seed application re-pays the kernel setup
        and the deep-stack scalar tail for every seed).

        Both engines process the same collected window afterwards, so
        switching ``batch_execution`` (or the execution backend) cannot
        move a single RNG draw. Windows never outlive a ``step_until``
        call, which keeps checkpoints window-agnostic: snapshots only
        ever see fully drained windows.

        Returns ``(mega_batch, seeds, bounds)`` — seed ``k``'s mutants
        are rows ``bounds[k]:bounds[k+1]`` — or None if nothing was
        scheduled with energy.
        """
        seeds: List[Seed] = []
        draws = []
        for _ in range(self.config.batch_window):
            if not self.pool.seeds:
                break
            seed = self.scheduler.next_seed()
            energy = self.scheduler.energy_for(seed)
            seed.fuzzed = True
            partner = self.pool.pick_splice_partner(self.rng, seed.seed_id)
            if energy <= 0:
                continue
            with self._span_mutate:
                draws.append(self.mutator.havoc_draw(
                    seed.data, energy,
                    splice_with=partner.data if partner else None))
            seeds.append(seed)
        if not seeds:
            return None
        mega = self.mutator.havoc_apply(draws)
        bounds = np.concatenate(
            ([0], np.cumsum([d.n for d in draws], dtype=np.int64)))
        return mega, seeds, bounds

    def _run_window_serial(self, window, deadline: float) -> None:
        """Serial engine: walk every mutant through the scalar path."""
        mega, seeds, bounds = window
        for k, seed in enumerate(seeds):
            with self._span_run_one:
                stop = self._serial_portion(seed, mega, int(bounds[k]),
                                            int(bounds[k + 1]), deadline)
            if stop:
                return

    def _serial_portion(self, seed: Seed, mega, lo: int, hi: int,
                        deadline: float) -> bool:
        """One seed's pre-drawn mutants, one at a time. True = stop."""
        for i in range(lo, hi):
            if self._exhausted(deadline):
                return True
            mutant = mega.tobytes(i)
            result, compare, shape, snapshot = self._pipeline(mutant)
            cycles = self._charge(shape)
            if result.crash is not None:
                self._handle_crash(result, self._compare_limit())
            elif self._is_hang(cycles):
                # Hanging inputs are reported, never queued (AFL
                # drops them from the fuzzing flow the same way).
                self._handle_hang()
            elif compare.interesting:
                self._admit(mutant, cycles, seed.depth + 1,
                            seed.seed_id, snapshot)
            self._record_curve()
        return False

    def _batch_front(self, batch) -> BatchFront:
        """Vectorized front half of the batched engine.

        Execute the whole (mega-)batch, gather instrumentation keys,
        and run the fused aggregate/classify/compare kernel. Execution
        backends override this — ``repro.fuzzer.mp`` shards the rows
        across worker processes and concatenates their results in
        worker order, which is bit-identical because every per-trace
        quantity is row/segment-local.
        """
        bres = self.executor.execute_batch(batch.data, batch.lengths)
        keys, counts = self.instrumentation.keys_for_batch(
            bres, list(batch.rows()))
        update, flags = self.coverage.update_compare_batch(
            keys, counts, bres.offsets, self.virgin)
        crashes = np.fromiter((c is not None for c in bres.crashes),
                              dtype=bool, count=bres.n)
        return BatchFront(traversals=np.asarray(bres.traversals),
                          n_unique=np.asarray(update.n_unique),
                          flags=flags, crashes=crashes,
                          bres=bres, update=update)

    def _repair_map(self, batch, i: int, front: BatchFront = None) -> None:
        """Leave the map exactly as the serial engine would: holding
        the classified trace of the last processed mutant (checkpoints
        capture the coverage map). The trace comes from the batch
        result when the backend kept it, else from one scalar
        re-execution — bit-identical by the executor's contract — then
        reset + update + classify, which reproduces
        ``classify_and_compare``'s map effect (the merge never writes
        the local map). Host-only work: no clock, no virgin, no
        counters."""
        row = batch.row(i)
        if front is not None and front.bres is not None:
            result = front.bres.result_for(i)
        else:
            result = self.executor.execute(row.tobytes())
        mkeys, mcounts = self.instrumentation.keys_for(result, row)
        self.coverage.reset()
        self.coverage.update(mkeys, mcounts)
        self.coverage.classify()

    def _run_window_batched(self, window, deadline: float) -> None:
        """Batched engine: execute a whole window's energy at once.

        The vectorized front half (execute, key gather, fused
        aggregate/classify/compare against virgin) computes, per trace,
        a conservative "could this be interesting?" flag plus its exact
        cheap-path cycle cost. Traces that crash, would time out, or
        might be interesting replay the scalar pipeline — which also
        performs the virgin merge exactly as the serial engine would.
        Everything else is charged from the batch pricing without ever
        materializing a coverage map; with telemetry disabled, maximal
        runs of consecutive cheap traces are charged in one vectorized
        sweep whose float accumulation order is bit-identical to the
        per-trace loop (see :meth:`_charge_cheap_run`).

        The conservative flags are sound under in-order processing:
        virgin bits only clear monotonically, so a trace dismissed
        against the window-start virgin map stays uninteresting no
        matter what earlier traces merge before its turn. Hang
        prediction and admissions stay per-seed: every trace belongs to
        exactly one seed portion (``bounds``), and its verdicts are
        computed from its own totals and attributed to its own parent.
        """
        # No spans around the batch kernels: the serial engine records
        # one {execute, classify_compare, cost_eval} call per execution
        # (zero clock delta — charging happens later), so the batched
        # engine deposits the same per-exec calls below instead of
        # phantom per-batch entries, keeping profiles bit-identical.
        mega, seeds, bounds = window
        front = self._batch_front(mega)

        bigmap = self.config.fuzzer == BIGMAP
        used = self.coverage.active_bytes() if bigmap else 0
        batch_ops = self.model.exec_cycles_batch(
            front.traversals, front.n_unique, used_bytes=used)
        totals = batch_ops.totals()

        budget = self._hang_budget_cycles
        # The cheap-path cost is exact for non-replayed traces, so the
        # hang prediction matches the serial engine's verdict — and it
        # is per-trace: a predicted hang in seed A's portion marks only
        # that trace, never a neighbour from another seed.
        base_replays = front.crashes | front.flags
        replays = base_replays if budget is None \
            else base_replays | (totals > budget)

        fast = self.telemetry is None
        last_cheap = -1  # last processed trace that skipped the map
        i = 0
        stop = False
        for k, seed in enumerate(seeds):
            end = int(bounds[k + 1])
            with self._span_run_one:
                while i < end:
                    if self._exhausted(deadline):
                        stop = True
                        break
                    if replays[i] and front.flags[i] \
                            and not front.crashes[i] \
                            and front.update is not None \
                            and not self.coverage.segment_interesting(
                                front.update, i, self.virgin):
                        # The flag went stale: earlier traces already
                        # claimed every virgin bit this one touches.
                        # The serial engine would run the pipeline and
                        # find compare.interesting False — exactly the
                        # cheap-path charge — so downgrade the trace.
                        # Clearing the base flag keeps any budget-driven
                        # replay decision intact across re-pricings.
                        front.flags[i] = False
                        base_replays[i] = False
                        replays[i] = budget is not None \
                            and totals[i] > budget
                    if replays[i]:
                        mutant = mega.tobytes(i)
                        pre = front.bres.result_for(i) \
                            if front.bres is not None else None
                        result, compare, shape, snapshot = \
                            self._pipeline(mutant, precomputed=pre)
                        cycles = self._charge(shape)
                        if result.crash is not None:
                            self._handle_crash(result,
                                               self._compare_limit())
                        elif self._is_hang(cycles):
                            self._handle_hang()
                        elif compare.interesting:
                            self._admit(mutant, cycles, seed.depth + 1,
                                        seed.seed_id, snapshot)
                        last_cheap = -1
                        if bigmap and self.coverage.active_bytes() != used:
                            # used_key moved: re-price the remaining
                            # cheap entries against the grown condensed
                            # prefix (exactly what the serial engine's
                            # per-trace pricing would now charge them).
                            used = self.coverage.active_bytes()
                            batch_ops = self.model.exec_cycles_batch(
                                front.traversals, front.n_unique,
                                used_bytes=used)
                            totals = batch_ops.totals()
                            if budget is not None:
                                replays = base_replays | (totals > budget)
                        self._record_curve()
                        i += 1
                    elif fast:
                        j = i + 1
                        while j < end and not replays[j]:
                            j += 1
                        done, exhausted = self._charge_cheap_run(
                            front, batch_ops, totals, i, j, used,
                            deadline)
                        if done:
                            last_cheap = i + done - 1
                        i += done
                        self._record_curve()
                        if exhausted:
                            stop = True
                            break
                    else:
                        shape = ExecShape(
                            traversals=int(front.traversals[i]),
                            unique_locations=int(front.n_unique[i]),
                            used_bytes=used, interesting=False,
                            hash_bytes=0)
                        self._charge(shape, ops=batch_ops.row(i))
                        # The per-exec span calls the scalar pipeline
                        # would have recorded (their clock deltas are
                        # zero: the cost is charged in _charge, outside
                        # those spans).
                        tracer = self._tracer
                        tracer.add("execute", 0.0)
                        tracer.add("classify_compare", 0.0)
                        tracer.add("cost_eval", 0.0)
                        last_cheap = i
                        self._record_curve()
                        i += 1
            if stop:
                break

        if last_cheap >= 0:
            self._repair_map(mega, last_cheap, front)

    def _charge_cheap_run(self, front: BatchFront, batch_ops, totals,
                          lo: int, hi: int, used: int,
                          deadline: float) -> Tuple[int, bool]:
        """Charge consecutive cheap traces ``[lo, hi)`` in one sweep.

        Bit-identical to calling :meth:`_charge` per trace: the clock
        and every ``op_cycles`` key advance through
        ``np.add.accumulate`` — a strictly sequential left-to-right
        fold, the same float operations in the same order as the scalar
        loop — and the shape statistics are exact integer sums. The
        serial engine checks exhaustion *before* each trace, so the run
        stops at the first trace whose preceding clock value crosses
        the deadline, or when the real-execution cap is reached.

        Returns ``(n_processed, exhausted)``.
        """
        n = hi - lo
        multiplier = (getattr(self, "cycle_multiplier", 1.0) *
                      self.fault_multiplier)
        acc = np.add.accumulate(np.concatenate(
            ([self.clock.cycles], totals[lo:hi] * multiplier)))
        # acc[t] is the clock after t traces; the serial loop admits
        # trace t iff acc[t] / f < deadline (checked before charging).
        seconds = acc / self.clock.frequency_hz
        t_clock = int(np.searchsorted(seconds, deadline, side="left"))
        t = min(n, t_clock, self.config.max_real_execs - self.execs)
        if t > 0:
            self.clock.cycles = float(acc[t])
            oc = self.op_cycles
            oc["execution"] = float(np.add.accumulate(np.concatenate(
                ([oc["execution"]],
                 batch_ops.execution[lo:lo + t])))[-1])
            for key, const in (("reset", batch_ops.reset),
                               ("classify", batch_ops.classify),
                               ("compare", batch_ops.compare),
                               ("others", batch_ops.others)):
                oc[key] = float(np.add.accumulate(np.concatenate(
                    ([oc[key]], np.full(t, const))))[-1])
            # batch_ops.hash is 0.0 for cheap traces: adding it would
            # not change a single bit, so it is skipped outright.
            stats = self.shape_stats
            stats.execs += t
            stats.traversals += int(np.sum(front.traversals[lo:lo + t]))
            stats.unique_locations += int(
                np.sum(front.n_unique[lo:lo + t]))
            stats.used_bytes_last = used
            self.execs += t
        if t < n:
            # Mirror the serial loop's _exhausted call at the stopping
            # trace (it is what records stopped_by="execs").
            self._exhausted(deadline)
            return t, True
        return t, False

    def snapshot(self):
        """Capture a resumable checkpoint of the campaign's state.

        See :mod:`repro.fuzzer.checkpoint`; requires :meth:`start` to
        have run (the model and curves must exist).
        """
        from .checkpoint import snapshot_campaign
        return snapshot_campaign(self)

    def restore(self, checkpoint) -> None:
        """Reset to a checkpoint previously taken from this campaign.

        Used by supervised parallel sessions to resume a crashed
        instance from its last durable state instead of from the seed
        corpus.
        """
        from .checkpoint import restore_campaign
        restore_campaign(self, checkpoint)

    def import_input(self, data: bytes) -> bool:
        """Run a peer's queue entry; admit it if it covers new ground.

        This is AFL's ``-M``/``-S`` corpus synchronization: imported
        entries are executed (and charged) like any test case.
        """
        result, compare, shape, snapshot = self._pipeline(data)
        cycles = self._charge(shape)
        if result.crash is not None:
            self._handle_crash(result, self._compare_limit())
            return False
        if compare.interesting:
            self._admit(data, cycles, 0, None, snapshot)
            return True
        return False

    def finish(self) -> CampaignResult:
        """Close curves and assemble the result record."""
        self.coverage_curve.append((self.clock.seconds,
                                    self.virgin.count_discovered()))
        if self.telemetry is not None:
            self._emit_snapshot(self.clock.seconds)
            self.telemetry.emit(
                "campaign_finish", self.clock.seconds,
                execs=self.execs,
                edges=self.virgin.count_discovered(),
                crashes=self.crashwalk.unique_crashes,
                hangs=self.unique_hangs,
                stop_reason=self.stopped_by)
        true_coverage = None
        if self.config.compute_true_coverage:
            from ..analysis.coverage_eval import evaluate_corpus
            true_coverage = evaluate_corpus(
                self.program, [s.data for s in self.pool.seeds],
                executor=self.executor)
        config = self.config
        virtual = max(self.clock.seconds, 1e-9)
        return CampaignResult(
            benchmark=config.benchmark, fuzzer=config.fuzzer,
            map_size=config.map_size, metric=config.metric,
            lafintel=config.lafintel, execs=self.execs,
            virtual_seconds=virtual,
            throughput=self.execs / virtual,
            discovered_locations=self.virgin.count_discovered(),
            used_key=(self.coverage.used_key
                      if config.fuzzer == BIGMAP else None),
            unique_crashes=self.crashwalk.unique_crashes,
            afl_unique_crashes=self.afl_triage.unique_crashes,
            corpus=[s.data for s in self.pool.seeds],
            coverage_curve=self.coverage_curve,
            crash_curve=self.crashwalk.curve(),
            op_cycles=dict(self.op_cycles),
            interesting_execs=self.shape_stats.interesting,
            stopped_by=self.stopped_by,
            mean_shape=self.shape_stats.mean_shape(),
            true_edge_coverage=true_coverage,
            hangs=self.hangs, unique_hangs=self.unique_hangs,
            restarts=self.restarts,
            faults_injected=self.faults_injected)

    def run(self) -> CampaignResult:
        """Run the campaign to its virtual deadline (or exec cap)."""
        self.start()
        self.step_until(self.config.virtual_seconds)
        return self.finish()


def run_campaign(config: CampaignConfig,
                 built: Optional[BuiltBenchmark] = None,
                 telemetry=None) -> CampaignResult:
    """Convenience wrapper: construct and run a campaign."""
    return Campaign(config, built=built, telemetry=telemetry).run()
