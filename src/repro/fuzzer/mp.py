"""Shared-memory multiprocess execution backend for batched campaigns.

:class:`MPCampaign` runs the exact same batched engine as
:class:`~repro.fuzzer.campaign.Campaign` — same RNG stream, same
scheduling, same replay semantics — but computes the vectorized *front
half* of every mega-batch (execute, key gather, fused
aggregate/classify/compare) across a pool of forked worker processes.

Design (mirrors the runner/measurer split of Klees et al.):

* **Shared state in shared memory.** The virgin map, the BigMap index
  table and the ``used_key`` counter live in
  :mod:`multiprocessing.shared_memory` segments created *before* the
  workers fork. The parent's own arrays are replaced by views into
  those segments, so every in-place write the parent makes — virgin
  merges during replays, index slot assignments, checkpoint restores
  (which deliberately restore with ``arr[:] = saved``) — is immediately
  visible to every worker with zero copies and no synchronization
  protocol: workers only ever *read* the shared segments, and only
  between windows-fronts, when the parent is blocked waiting for them.
* **Deterministic sharding.** A mega-batch of ``n`` rows is split into
  ``workers`` contiguous shards with bounds ``n * w // workers`` —
  a pure function of ``(n, workers)``, independent of timing.
* **Fixed reduction order.** The parent collects shard results in
  worker-index order (a blocking ``recv`` per pipe, in order), then
  concatenates. Every per-trace quantity the front produces
  (traversals, unique-location counts, interest flags, crash marks) is
  row/segment-local, so the concatenation is bit-identical to the
  in-process front no matter how many workers computed it — the
  equivalence contract of DESIGN.md §8.

Everything after the front — charging, hang prediction, replays,
admissions, checkpoints, telemetry — runs unchanged in the parent, so
campaign results are bit-identical for any worker count, including the
serial engine. Workers ship only four small arrays per shard; they
never send flat key arrays, mutate shared state, or touch the RNG.

The worker entry point :func:`_mp_worker_main` is registered with the
statlint CONC001 fork-boundary rule (``[tool.statlint]`` in
pyproject.toml): module-level mutable state written on both sides of
this boundary is a lint error, which is why this module keeps all of
its state on the campaign object and in the explicit shm segments.
"""

from __future__ import annotations

from multiprocessing import get_context, shared_memory
from typing import List, Optional

import numpy as np

from ..core.errors import CampaignConfigError
from .campaign import BatchFront, Campaign, CampaignConfig
from .mutation import MutantBatch


def _mp_worker_main(campaign: "MPCampaign", conn) -> None:
    """Worker loop: compute batch-front shards on request.

    Runs in a forked child. Reads the inherited (read-only for the
    worker) executor/instrumentation tables and the shared-memory
    virgin/index/used_key state; writes nothing but its reply pipe.
    One request computes one shard's front and ships back exactly the
    four per-trace arrays :class:`BatchFront` needs.
    """
    try:
        while True:
            msg = conn.recv()
            if msg[0] == "stop":
                break
            _, data, lengths = msg
            # Refresh the one scalar mirrored through shared memory
            # (arrays need no refresh: they *are* the shared segments).
            if hasattr(campaign.coverage, "used_key"):
                campaign.coverage.used_key = int(
                    campaign._used_key_shm[0])
            batch = MutantBatch(data=data, lengths=lengths)
            bres = campaign.executor.execute_batch(data, lengths)
            keys, counts = campaign.instrumentation.keys_for_batch(
                bres, batch.rows())
            _update, flags = campaign.coverage.update_compare_batch(
                keys, counts, bres.offsets, campaign.virgin)
            crashes = np.fromiter((c is not None for c in bres.crashes),
                                  dtype=bool, count=bres.n)
            conn.send((np.asarray(bres.traversals),
                       np.asarray(_update.n_unique), flags, crashes))
    finally:
        conn.close()


class MPCampaign(Campaign):
    """Batched campaign whose batch front runs on a process pool.

    Args:
        config: campaign configuration; must have ``batch_execution``
            enabled (the serial engine has no front to parallelize).
        built: optional pre-built benchmark, as for :class:`Campaign`.
        telemetry: optional recorder, as for :class:`Campaign`
            (telemetry stays entirely in the parent).
        workers: number of worker processes. ``1`` is valid and useful:
            it exercises the full shm/fork/pipe path while trivially
            matching the in-process engine.

    Close explicitly (or use as a context manager): the shared-memory
    segments must be unlinked and the workers joined.
    """

    def __init__(self, config: CampaignConfig,
                 built=None, telemetry=None, *, workers: int = 2) -> None:
        if not config.batch_execution:
            raise CampaignConfigError(
                "MPCampaign requires batch_execution=True")
        if workers < 1:
            raise CampaignConfigError(
                f"workers must be >= 1, got {workers}")
        super().__init__(config, built, telemetry)
        self.workers = workers
        self._ctx = get_context("fork")
        self._shm_segments: List[shared_memory.SharedMemory] = []
        self._procs: List = []
        self._conns: List = []
        self._closed = False
        self._move_shared_state()

    # -- shared-memory plumbing ----------------------------------------

    def _shm_view(self, arr: np.ndarray) -> np.ndarray:
        """Copy ``arr`` into a fresh shm segment; return the view."""
        shm = shared_memory.SharedMemory(create=True,
                                         size=max(int(arr.nbytes), 1))
        self._shm_segments.append(shm)
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
        view[:] = arr
        return view

    def _move_shared_state(self) -> None:
        """Re-home the cross-process state into shared memory.

        Must happen before any fork. After this, the parent's writes
        go through the views, so no explicit publish step exists —
        except for ``used_key``, a plain int mirrored into a one-cell
        array right before each dispatch.
        """
        self.virgin.virgin = self._shm_view(self.virgin.virgin)
        if hasattr(self.coverage, "index"):
            self.coverage.index = self._shm_view(self.coverage.index)
        self._used_key_shm = self._shm_view(np.zeros(1, dtype=np.int64))

    def _start_workers(self) -> None:
        """Fork the pool (lazily, so workers inherit started state)."""
        for _ in range(self.workers):
            parent_conn, child_conn = self._ctx.Pipe()
            proc = self._ctx.Process(target=_mp_worker_main,
                                     args=(self, child_conn),
                                     daemon=True)
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)

    # -- engine override -----------------------------------------------

    def _batch_front(self, batch) -> BatchFront:
        """Sharded batch front: deterministic split, ordered reduce.

        Ships each worker its contiguous row shard over the pipe and
        concatenates the replies in worker order. ``bres``/``update``
        stay ``None`` — the flat arrays live in the workers — so
        replays in the parent re-execute scalar traces, which the
        executor contract makes bit-identical.
        """
        if not self._procs:
            self._start_workers()
        self._used_key_shm[0] = getattr(self.coverage, "used_key", 0)
        n = int(batch.lengths.size)
        w = self.workers
        cuts = [n * k // w for k in range(w + 1)]
        for k, conn in enumerate(self._conns):
            conn.send(("front", batch.data[cuts[k]:cuts[k + 1]],
                       batch.lengths[cuts[k]:cuts[k + 1]]))
        parts = [conn.recv() for conn in self._conns]
        return BatchFront(
            traversals=np.concatenate([p[0] for p in parts]),
            n_unique=np.concatenate([p[1] for p in parts]),
            flags=np.concatenate([p[2] for p in parts]),
            crashes=np.concatenate([p[3] for p in parts]))

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Stop workers, join them, release the shm segments."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (OSError, ValueError):
                pass
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=10)
        for conn in self._conns:
            conn.close()
        self._conns = []
        self._procs = []
        # Detach the parent-side views before releasing their buffers
        # (the arrays would otherwise keep the mappings pinned).
        self.virgin.virgin = self.virgin.virgin.copy()
        if hasattr(self.coverage, "index"):
            self.coverage.index = self.coverage.index.copy()
        self._used_key_shm = self._used_key_shm.copy()
        for shm in self._shm_segments:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:
                pass
        self._shm_segments = []

    def __enter__(self) -> "MPCampaign":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        # A finalizer must never raise (the interpreter would print and
        # discard it mid-GC); close() is best-effort here and explicit
        # close()/context-manager exits surface real errors.
        except Exception:  # statlint: disable=ERR001 (finalizer)
            pass
