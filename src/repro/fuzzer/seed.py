"""Queue entries: the seeds a campaign mutates.

Mirrors the fields AFL keeps per queue entry that matter for
scheduling: execution cost and input length (the favored computation
minimizes their product), generational depth (handicap), coverage
footprint, and the fuzzed/favored flags.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass
class Seed:
    """One queue entry.

    Attributes:
        seed_id: queue position at admission (stable identifier).
        data: the input bytes.
        exec_cycles: modeled execution cost (scheduling prefers fast).
        coverage_hash: hash of the classified trace (duplicate check).
        covered_locations: map locations (structure-native indices) the
            seed's classified trace touches; feeds the favored cull.
        n_locations: convenience count of ``covered_locations``.
        depth: generational depth (0 for user seeds).
        found_at: virtual time of admission, seconds.
        favored: marked by the cull as a coverage winner.
        fuzzed: has been selected and mutated at least once.
        parent_id: queue id of the seed it was mutated from, or None.
    """

    seed_id: int
    data: bytes
    exec_cycles: float
    coverage_hash: int
    covered_locations: np.ndarray
    depth: int = 0
    found_at: float = 0.0
    favored: bool = False
    fuzzed: bool = False
    parent_id: Optional[int] = None

    @property
    def n_locations(self) -> int:
        return int(self.covered_locations.size)

    def cull_score(self) -> float:
        """AFL's top-rated metric: ``exec_cycles × len(data)``, lower wins.

        Short, fast seeds make cheaper mutation fodder (paper §II-A1).
        """
        return self.exec_cycles * max(len(self.data), 1)
