"""AFL-style fuzzer: scheduling, mutation, campaigns, parallel sessions.

Public surface:

* :class:`CampaignConfig` / :class:`Campaign` / :func:`run_campaign` —
  single-instance fuzzing sessions under a virtual time budget.
* :class:`ParallelSession` / :func:`run_parallel` — master–secondary
  multi-instance sessions with corpus sync and contention (§V-D).
* :class:`Seed` / :class:`SeedPool` / :class:`Scheduler` — queue
  management with AFL's favored culling and energy policy.
* :class:`Mutator` — deterministic and havoc mutation stages.
* :class:`CrashwalkTriager` / :class:`AflCrashTriager` — crash dedup.
"""

from .campaign import Campaign, CampaignConfig, run_campaign
from .checkpoint import CampaignCheckpoint
from .dictionary import DictionaryMixer, extract_dictionary
from .clock import VirtualClock
from .mutation import (ARITH_MAX, HAVOC_STACK_POW2, INTERESTING_8,
                       INTERESTING_16, INTERESTING_32, MutantBatch,
                       Mutator)
from .parallel import (ParallelResultSummary, ParallelSession,
                       run_ensemble, run_parallel)
from .pool import SeedPool
from .scheduling import EnergyPolicy, Scheduler
from .seed import Seed
from .stats import CampaignResult, RunningShape
from .triage import AflCrashTriager, CrashRecord, CrashwalkTriager

__all__ = [
    "Campaign", "CampaignConfig", "run_campaign",
    "CampaignCheckpoint",
    "DictionaryMixer", "extract_dictionary",
    "VirtualClock",
    "ARITH_MAX", "HAVOC_STACK_POW2", "INTERESTING_8", "INTERESTING_16",
    "INTERESTING_32", "MutantBatch", "Mutator",
    "ParallelResultSummary", "ParallelSession", "run_ensemble",
    "run_parallel",
    "SeedPool", "EnergyPolicy", "Scheduler", "Seed",
    "CampaignResult", "RunningShape",
    "AflCrashTriager", "CrashRecord", "CrashwalkTriager",
]
