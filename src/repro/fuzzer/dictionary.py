"""Fuzzing dictionaries: user tokens and compare-operand extraction.

AFL accepts a dictionary (``-x``) of magic tokens that havoc splices
into inputs; AFL++'s *autodictionary* extracts the operands of
comparison instructions at instrumentation time. Both matter to the
BigMap story: a dictionary is the *other* way (besides laf-intel) that
multi-byte magic compares become reachable, and reaching them is what
creates the map pressure BigMap exists to absorb.

:func:`extract_dictionary` is the autodictionary analogue for our
synthetic targets: it collects the magic operands of ``EQ_MULTI``
guards (deduplicated, deterministic order).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..target.cfg import Guard, Program

#: Keep dictionaries bounded, as AFL does (MAX_AUTO_EXTRAS analogue).
MAX_TOKENS = 512


def extract_dictionary(program: Program, *,
                       max_tokens: int = MAX_TOKENS) -> List[bytes]:
    """Compare-operand tokens of ``program`` (autodictionary).

    Returns the distinct multi-byte magic values the target compares
    against, in deterministic (sorted) order, capped at ``max_tokens``.
    """
    multi = np.flatnonzero(program.kind == np.uint8(Guard.EQ_MULTI))
    tokens = set()
    for edge in multi.tolist():
        width = int(program.width[edge])
        tokens.add(bytes(program.magic[edge, :width]))
    return sorted(tokens)[:max_tokens]


class DictionaryMixer:
    """Applies dictionary tokens during havoc.

    Used by :class:`~repro.fuzzer.mutation.Mutator` when a dictionary
    is supplied: with probability ``use_probability`` per havoc mutant,
    one token is overwritten into (or inserted at) a random position —
    AFL's ``EXTRAS`` havoc cases.
    """

    def __init__(self, tokens: Sequence[bytes], *,
                 use_probability: float = 0.25) -> None:
        if not 0 <= use_probability <= 1:
            raise ValueError(f"use_probability must be in [0, 1], got "
                             f"{use_probability}")
        self.tokens = [t for t in tokens if t]
        self.use_probability = use_probability

    def __bool__(self) -> bool:
        return bool(self.tokens)

    def maybe_apply(self, buf: np.ndarray,
                    rng: np.random.Generator) -> np.ndarray:
        """Possibly stamp one token into ``buf``; returns the buffer."""
        if not self.tokens or rng.random() >= self.use_probability:
            return buf
        token = np.frombuffer(
            self.tokens[int(rng.integers(0, len(self.tokens)))],
            dtype=np.uint8)
        if buf.size == 0:
            return token.copy()
        if rng.random() < 0.75 or buf.size <= token.size:
            # Overwrite at a random position (clamped to fit).
            if token.size >= buf.size:
                return token[:buf.size].copy()
            pos = int(rng.integers(0, buf.size - token.size + 1))
            buf[pos:pos + token.size] = token
            return buf
        # Insert.
        pos = int(rng.integers(0, buf.size + 1))
        return np.concatenate([buf[:pos], token, buf[pos:]])
