"""Mutation engine: AFL's deterministic stages and havoc.

The deterministic stage (walking bitflips, arithmetic, interesting
values) is implemented for completeness and for the master instance of
parallel sessions, but — exactly as in the paper's evaluation setup
(§V-A1) — campaigns skip it by default for short runs and go straight
to stacked random "havoc" mutations with occasional splicing.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

import numpy as np

from .dictionary import DictionaryMixer

#: AFL's interesting values (8/16/32-bit), as unsigned patterns.
INTERESTING_8 = np.array([128, 255, 0, 1, 16, 32, 64, 100, 127],
                         dtype=np.uint8)
INTERESTING_16 = np.array([0x8000, 0xFFFF, 0, 1, 16, 32, 64, 100, 127,
                           0x7FFF, 128, 255, 256, 512, 1000, 1024, 4096],
                          dtype=np.uint16)
INTERESTING_32 = np.array([0x80000000, 0xFFFFFFFF, 0, 1, 16, 32, 64, 100,
                           0x7FFFFFFF, 32768, 65535, 65536, 100663045],
                          dtype=np.uint32)

#: Havoc stacking: 2^1 .. 2^HAVOC_STACK_POW2 operations per mutant.
HAVOC_STACK_POW2 = 7

#: Arithmetic mutation magnitude (AFL's ARITH_MAX).
ARITH_MAX = 35

#: Havoc block-operation size cap, as a fraction of the input.
_BLOCK_FRACTION = 0.25


class Mutator:
    """Stateful random mutator (one per campaign instance).

    Args:
        rng: the campaign's random stream.
        max_len: hard cap on mutant length (AFL's MAX_FILE analogue).
        min_len: mutants are never shrunk below this.
        dictionary: optional tokens (AFL ``-x`` / autodictionary);
            havoc occasionally stamps one into the mutant.
    """

    def __init__(self, rng: np.random.Generator, *,
                 max_len: int = 8192, min_len: int = 4,
                 dictionary: Optional[Sequence[bytes]] = None) -> None:
        if min_len < 1 or max_len < min_len:
            raise ValueError(f"invalid length bounds [{min_len}, "
                             f"{max_len}]")
        self.rng = rng
        self.max_len = max_len
        self.min_len = min_len
        self.dictionary = DictionaryMixer(dictionary) \
            if dictionary else None

    # -- havoc ------------------------------------------------------------

    def havoc(self, data: bytes,
              splice_with: Optional[bytes] = None) -> bytes:
        """One stacked-random mutant of ``data``.

        With a splice partner, the mutant may first be spliced (cut both
        inputs at random points and join), as AFL does after queue
        cycles without new finds.
        """
        rng = self.rng
        buf = np.frombuffer(data, dtype=np.uint8).copy()
        if splice_with is not None and len(splice_with) > 2 and \
                buf.size > 2 and rng.random() < 0.5:
            buf = self._splice(buf, np.frombuffer(splice_with,
                                                  dtype=np.uint8))
        n_ops = 1 << int(rng.integers(1, HAVOC_STACK_POW2 + 1))
        for _ in range(n_ops):
            buf = self._one_havoc_op(buf)
        if self.dictionary:
            buf = self.dictionary.maybe_apply(buf, rng)
        if buf.size > self.max_len:
            buf = buf[:self.max_len]
        return buf.tobytes()

    def _splice(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        cut_a = int(self.rng.integers(1, a.size))
        cut_b = int(self.rng.integers(1, b.size))
        return np.concatenate([a[:cut_a], b[cut_b:]])

    def _one_havoc_op(self, buf: np.ndarray) -> np.ndarray:
        rng = self.rng
        n = buf.size
        if n == 0:
            return rng.integers(0, 256, size=self.min_len, dtype=np.uint8)
        op = int(rng.integers(0, 10))
        if op == 0:  # flip one bit
            pos = int(rng.integers(0, n))
            buf[pos] ^= np.uint8(1 << int(rng.integers(0, 8)))
        elif op == 1:  # interesting byte
            buf[int(rng.integers(0, n))] = INTERESTING_8[
                int(rng.integers(0, INTERESTING_8.size))]
        elif op == 2 and n >= 2:  # interesting word
            pos = int(rng.integers(0, n - 1))
            value = INTERESTING_16[int(rng.integers(0,
                                                    INTERESTING_16.size))]
            if rng.random() < 0.5:
                value = value.byteswap()
            buf[pos:pos + 2] = np.frombuffer(value.tobytes(),
                                             dtype=np.uint8)
        elif op == 3 and n >= 4:  # interesting dword
            pos = int(rng.integers(0, n - 3))
            value = INTERESTING_32[int(rng.integers(0,
                                                    INTERESTING_32.size))]
            if rng.random() < 0.5:
                value = value.byteswap()
            buf[pos:pos + 4] = np.frombuffer(value.tobytes(),
                                             dtype=np.uint8)
        elif op == 4:  # arithmetic +/-
            pos = int(rng.integers(0, n))
            delta = int(rng.integers(1, ARITH_MAX + 1))
            if rng.random() < 0.5:
                delta = -delta
            buf[pos] = np.uint8((int(buf[pos]) + delta) & 0xFF)
        elif op == 5:  # random byte
            buf[int(rng.integers(0, n))] = rng.integers(0, 256,
                                                        dtype=np.uint8)
        elif op == 6 and n > self.min_len:  # delete block
            length = self._block_len(n)
            start = int(rng.integers(0, n - length + 1))
            keep = max(self.min_len, n - length)
            buf = np.concatenate([buf[:start],
                                  buf[start + length:]])[:None]
            if buf.size < self.min_len:
                buf = np.pad(buf, (0, self.min_len - buf.size))
        elif op == 7 and n < self.max_len:  # clone / insert block
            length = self._block_len(n)
            src = int(rng.integers(0, n - length + 1))
            dst = int(rng.integers(0, n + 1))
            if rng.random() < 0.75:
                block = buf[src:src + length]
            else:  # constant-byte insertion
                block = np.full(length, rng.integers(0, 256,
                                                     dtype=np.uint8))
            buf = np.concatenate([buf[:dst], block, buf[dst:]])
        elif op == 8:  # overwrite block from elsewhere
            length = self._block_len(n)
            src = int(rng.integers(0, n - length + 1))
            dst = int(rng.integers(0, n - length + 1))
            buf[dst:dst + length] = buf[src:src + length].copy()
        else:  # overwrite block with constant byte
            length = self._block_len(n)
            dst = int(rng.integers(0, n - length + 1))
            buf[dst:dst + length] = rng.integers(0, 256, dtype=np.uint8)
        return buf

    def _block_len(self, n: int) -> int:
        cap = max(1, int(n * _BLOCK_FRACTION))
        return int(self.rng.integers(1, cap + 1))

    # -- deterministic stage ----------------------------------------------

    def deterministic(self, data: bytes, *,
                      max_mutants: Optional[int] = None) -> Iterator[bytes]:
        """AFL's deterministic mutants of ``data``, in stage order.

        Stages: walking 1/2/4-bit flips, walking byte flips, byte
        arithmetic, interesting bytes. ``max_mutants`` truncates the
        stream (the full stream is O(len × 100)).
        """
        base = np.frombuffer(data, dtype=np.uint8)
        produced = 0

        def emit(buf: np.ndarray):
            nonlocal produced
            produced += 1
            return buf.tobytes()

        n_bits = base.size * 8
        for width in (1, 2, 4):
            for bit in range(n_bits - width + 1):
                buf = base.copy()
                for w in range(width):
                    pos, off = divmod(bit + w, 8)
                    buf[pos] ^= np.uint8(1 << off)
                yield emit(buf)
                if max_mutants is not None and produced >= max_mutants:
                    return
        for pos in range(base.size):
            buf = base.copy()
            buf[pos] ^= np.uint8(0xFF)
            yield emit(buf)
            if max_mutants is not None and produced >= max_mutants:
                return
        for pos in range(base.size):
            for delta in range(1, ARITH_MAX + 1):
                for signed in (delta, -delta):
                    buf = base.copy()
                    buf[pos] = np.uint8((int(buf[pos]) + signed) & 0xFF)
                    yield emit(buf)
                    if max_mutants is not None and \
                            produced >= max_mutants:
                        return
        for pos in range(base.size):
            for value in INTERESTING_8:
                buf = base.copy()
                buf[pos] = value
                yield emit(buf)
                if max_mutants is not None and produced >= max_mutants:
                    return
