"""Mutation engine: AFL's deterministic stages and havoc.

The deterministic stage (walking bitflips, arithmetic, interesting
values) is implemented for completeness and for the master instance of
parallel sessions, but — exactly as in the paper's evaluation setup
(§V-A1) — campaigns skip it by default for short runs and go straight
to stacked random "havoc" mutations with occasional splicing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

import numpy as np

from .dictionary import DictionaryMixer

#: AFL's interesting values (8/16/32-bit), as unsigned patterns.
INTERESTING_8 = np.array([128, 255, 0, 1, 16, 32, 64, 100, 127],
                         dtype=np.uint8)
INTERESTING_16 = np.array([0x8000, 0xFFFF, 0, 1, 16, 32, 64, 100, 127,
                           0x7FFF, 128, 255, 256, 512, 1000, 1024, 4096],
                          dtype=np.uint16)
INTERESTING_32 = np.array([0x80000000, 0xFFFFFFFF, 0, 1, 16, 32, 64, 100,
                           0x7FFFFFFF, 32768, 65535, 65536, 100663045],
                          dtype=np.uint32)

#: Havoc stacking: 2^1 .. 2^HAVOC_STACK_POW2 operations per mutant.
HAVOC_STACK_POW2 = 7

#: Arithmetic mutation magnitude (AFL's ARITH_MAX).
ARITH_MAX = 35

#: Havoc block-operation size cap, as a fraction of the input.
_BLOCK_FRACTION = 0.25

#: Below this many live mutants, a vectorized length-op step costs more
#: than finishing the remaining stacks with plain row slices.
_SCALAR_STEP_CUTOFF = 48


@dataclass
class MutantBatch:
    """A batch of mutants in padded-matrix form.

    Attributes:
        data: ``(n, width)`` uint8 matrix; every byte of row ``i`` at or
            past ``lengths[i]`` is zero (the executor relies on this).
        lengths: per-row logical lengths (``int64``).
    """

    data: np.ndarray
    lengths: np.ndarray

    @property
    def n(self) -> int:
        return int(self.data.shape[0])

    @property
    def width(self) -> int:
        return int(self.data.shape[1])

    def row(self, i: int) -> np.ndarray:
        """Exact-length uint8 view of mutant ``i``."""
        return self.data[i, :int(self.lengths[i])]

    def rows(self) -> list:
        """Exact-length views for all mutants, in order."""
        return [self.row(i) for i in range(self.n)]

    def tobytes(self, i: int) -> bytes:
        return self.row(i).tobytes()


@dataclass
class HavocDraw:
    """One seed's fully-drawn havoc randomness, not yet applied.

    Produced by :meth:`Mutator.havoc_draw`; consumed (possibly many at
    a time) by :meth:`Mutator.havoc_apply`. Holds the base/partner
    byte views plus every random draw — splice decisions, stacking
    depths, and the ``(rounds, n)`` per-op parameter matrices — so
    that application is a pure function of this record and the shared
    batch width.

    Attributes:
        base: seed bytes as a uint8 view.
        partner: splice partner bytes, or None.
        n: number of mutants (the seed's energy).
        width: this draw's own padded width
            (:meth:`Mutator._batch_width`); a fused apply uses the max
            over the window.
        fill: random ``(n, min_len)`` fill for empty bases, else None.
        do_splice / cut_a / cut_b: splice mask and cut points, or None
            when splicing was not eligible.
        n_ops: per-mutant stacking depth.
        op / f1..f4 / sel / val: ``(rounds, n)`` op-parameter
            matrices, or None when ``n`` is zero.
    """

    base: np.ndarray
    partner: Optional[np.ndarray]
    n: int
    width: int
    fill: Optional[np.ndarray]
    do_splice: Optional[np.ndarray]
    cut_a: Optional[np.ndarray]
    cut_b: Optional[np.ndarray]
    n_ops: np.ndarray
    op: Optional[np.ndarray]
    f1: Optional[np.ndarray]
    f2: Optional[np.ndarray]
    f3: Optional[np.ndarray]
    f4: Optional[np.ndarray]
    sel: Optional[np.ndarray]
    val: Optional[np.ndarray]


class Mutator:
    """Stateful random mutator (one per campaign instance).

    Args:
        rng: the campaign's random stream.
        max_len: hard cap on mutant length (AFL's MAX_FILE analogue).
        min_len: mutants are never shrunk below this.
        dictionary: optional tokens (AFL ``-x`` / autodictionary);
            havoc occasionally stamps one into the mutant.
    """

    def __init__(self, rng: np.random.Generator, *,
                 max_len: int = 8192, min_len: int = 4,
                 dictionary: Optional[Sequence[bytes]] = None) -> None:
        if min_len < 1 or max_len < min_len:
            raise ValueError(f"invalid length bounds [{min_len}, "
                             f"{max_len}]")
        self.rng = rng
        self.max_len = max_len
        self.min_len = min_len
        self.dictionary = DictionaryMixer(dictionary) \
            if dictionary else None

    # -- havoc ------------------------------------------------------------

    def havoc(self, data: bytes,
              splice_with: Optional[bytes] = None) -> bytes:
        """One stacked-random mutant of ``data``.

        With a splice partner, the mutant may first be spliced (cut both
        inputs at random points and join), as AFL does after queue
        cycles without new finds.
        """
        rng = self.rng
        buf = np.frombuffer(data, dtype=np.uint8).copy()
        if splice_with is not None and len(splice_with) > 2 and \
                buf.size > 2 and rng.random() < 0.5:
            buf = self._splice(buf, np.frombuffer(splice_with,
                                                  dtype=np.uint8))
        n_ops = 1 << int(rng.integers(1, HAVOC_STACK_POW2 + 1))
        for _ in range(n_ops):
            buf = self._one_havoc_op(buf)
        if self.dictionary:
            buf = self.dictionary.maybe_apply(buf, rng)
        if buf.size > self.max_len:
            buf = buf[:self.max_len]
        return buf.tobytes()

    # -- batched havoc ----------------------------------------------------

    def _batch_width(self, base_size: int, partner_size: int) -> int:
        """Padded-matrix width: room to grow, capped at ``max_len``."""
        longest = max(base_size, partner_size, self.min_len)
        return int(min(self.max_len, max(64, 2 * longest)))

    def havoc_draw(self, data: bytes, n: int,
                   splice_with: Optional[bytes] = None) -> "HavocDraw":
        """Draw one seed's whole havoc randomness, without applying it.

        This is the canonical havoc stream for campaigns: every
        execution strategy draws a scheduled seed's energy through this
        method, in schedule order, so the RNG consumption — and
        therefore every downstream decision — is identical no matter
        how (or in what grouping) the mutants are later materialized.
        The draw order is fixed: random fill for empty bases, splice
        mask and cut points (one vector each), per-row stacking depths,
        then one ``(rounds, n)`` matrix per op parameter covering every
        round at once (op codes, four uniform floats, a selector and a
        value byte).

        Application is deferred to :meth:`havoc_apply`, which may fuse
        the draws of several seeds into one uniform batch — the
        cross-seed batching that keeps the vectorized mutation kernels
        fed with large matrices.
        """
        rng = self.rng
        base = np.frombuffer(data, dtype=np.uint8)
        partner = None if splice_with is None else \
            np.frombuffer(splice_with, dtype=np.uint8)
        width = self._batch_width(base.size,
                                  0 if partner is None else partner.size)
        fill = None
        if not base.size:
            fill = rng.integers(0, 256, size=(n, self.min_len),
                                dtype=np.uint8)
        do_splice = cut_a = cut_b = None
        if partner is not None and partner.size > 2 and base.size > 2:
            do_splice = rng.random(n) < 0.5
            cut_a = rng.integers(1, base.size, size=n)
            cut_b = rng.integers(1, partner.size, size=n)
        n_ops = (1 << rng.integers(1, HAVOC_STACK_POW2 + 1,
                                   size=n)).astype(np.int64)
        rounds = int(n_ops.max()) if n else 0
        op_m = f1_m = f2_m = f3_m = f4_m = sel_m = val_m = None
        if rounds:
            op_m = rng.integers(0, 10, size=(rounds, n))
            f1_m = rng.random((rounds, n))
            f2_m = rng.random((rounds, n))
            f3_m = rng.random((rounds, n))
            f4_m = rng.random((rounds, n))
            sel_m = rng.integers(0, 1 << 30, size=(rounds, n))
            val_m = rng.integers(0, 256, size=(rounds, n),
                                 dtype=np.uint8)
        return HavocDraw(base=base, partner=partner, n=n, width=width,
                         fill=fill, do_splice=do_splice, cut_a=cut_a,
                         cut_b=cut_b, n_ops=n_ops, op=op_m, f1=f1_m,
                         f2=f2_m, f3=f3_m, f4=f4_m, sel=sel_m,
                         val=val_m)

    def havoc_apply(self, draws: Sequence["HavocDraw"]) -> MutantBatch:
        """Materialize pre-drawn havoc stacks as one uniform batch.

        Row block ``k`` holds draw ``k``'s mutants, in draw order. All
        rows share one padded width — the widest draw's — so a whole
        scheduling window's mutation work runs as a single
        :meth:`_apply_stacked` pass: the per-round vectorized steps see
        ``sum(n_k)`` rows instead of ``n_k``, and the scalar tail of
        the deepest stacks is paid once per window rather than once per
        seed. Per-row results depend only on that row's own draw and
        the shared width (rows never interact), so a single-draw apply
        reproduces the classic one-seed batch exactly.

        Mutants use the same op mix as :meth:`havoc` (same ops, same
        guard fallbacks to the constant-overwrite op, same block-size
        cap), but the stack is applied in a canonical type-major order
        rather than strictly interleaved: each mutant's length-changing
        block ops run first (in round order), then every byte-level op
        is applied against the final geometry — bit flips and
        arithmetic first (commutative), then all overwrites with
        per-byte conflicts resolved in round order. The composition of
        any fixed op multiset is as random as the interleaved one, the
        result is fully deterministic given the RNG seed, and growth is
        bounded by the matrix width instead of a final truncation.

        Returns:
            :class:`MutantBatch`; rows are zero-padded past their
            logical lengths.
        """
        if not draws:
            return MutantBatch(
                data=np.zeros((0, self.min_len), dtype=np.uint8),
                lengths=np.zeros(0, dtype=np.int64))
        width = max(d.width for d in draws)
        bounds = np.concatenate(
            ([0], np.cumsum([d.n for d in draws], dtype=np.int64)))
        total = int(bounds[-1])
        mat = np.zeros((total, width), dtype=np.uint8)
        lengths = np.empty(total, dtype=np.int64)
        # The stacks are flattened to one entry per live (row, round)
        # cell — only ~n_ops/rounds of a padded matrix is live, so the
        # flat form skips zero-filling and re-gathering the rest.
        # Built per draw in row-major (row, then round) order, which
        # :meth:`_apply_stacked` requires.
        c_rows, c_rnds, c_cols = [], [], []

        for k, d in enumerate(draws):
            lo, hi = int(bounds[k]), int(bounds[k + 1])
            sub = mat[lo:hi]
            base = d.base
            if base.size:
                lengths[lo:hi] = min(base.size, width)
                sub[:, :int(lengths[lo])] = base[:width]
            else:
                sub[:, :self.min_len] = d.fill
                lengths[lo:hi] = self.min_len
            if d.do_splice is not None:
                for i in np.flatnonzero(d.do_splice):
                    ca, cb = int(d.cut_a[i]), int(d.cut_b[i])
                    joined = np.concatenate([base[:ca],
                                             d.partner[cb:]])[:width]
                    sub[i] = 0
                    sub[i, :joined.size] = joined
                    lengths[lo + i] = joined.size
            if d.op is not None:
                n_ops = d.n_ops
                local = np.repeat(np.arange(d.n, dtype=np.int64), n_ops)
                rnds = (np.arange(local.size, dtype=np.int64) -
                        np.repeat(np.cumsum(n_ops) - n_ops, n_ops))
                c_rows.append(local + lo)
                c_rnds.append(rnds)
                c_cols.append((rnds, local, d))

        if c_rows:
            rows = np.concatenate(c_rows)
            rnds = np.concatenate(c_rnds)
            op = np.concatenate([d.op[r, c] for r, c, d in c_cols])
            f1 = np.concatenate([d.f1[r, c] for r, c, d in c_cols])
            f2 = np.concatenate([d.f2[r, c] for r, c, d in c_cols])
            f3 = np.concatenate([d.f3[r, c] for r, c, d in c_cols])
            f4 = np.concatenate([d.f4[r, c] for r, c, d in c_cols])
            sel = np.concatenate([d.sel[r, c] for r, c, d in c_cols])
            val = np.concatenate([d.val[r, c] for r, c, d in c_cols])
            self._apply_stacked(mat, lengths, width, rows, rnds, op,
                                f1, f2, f3, f4, sel, val)

        if self.dictionary:
            rng = self.rng
            for i in range(total):
                out = self.dictionary.maybe_apply(
                    mat[i, :int(lengths[i])].copy(), rng)
                out = out[:width]
                mat[i] = 0
                mat[i, :out.size] = out
                lengths[i] = out.size
        return MutantBatch(data=mat, lengths=lengths)

    def havoc_batch(self, data: bytes, n: int,
                    splice_with: Optional[bytes] = None) -> MutantBatch:
        """Generate ``n`` stacked-random mutants of ``data`` at once.

        One-seed convenience over :meth:`havoc_draw` +
        :meth:`havoc_apply`; both the RNG stream and the produced
        mutants are exactly a single-draw window's.
        """
        return self.havoc_apply([self.havoc_draw(data, n, splice_with)])

    @staticmethod
    def _block_scatter(starts: np.ndarray, lens: np.ndarray):
        """Flat per-row block indices: ``(repeated_rows_base, cols)``.

        For row-aligned blocks ``[starts[i], starts[i]+lens[i])``,
        returns the within-block offsets and the flat column indices so
        a whole vector of variable-length blocks becomes one fancy
        index.
        """
        total = int(lens.sum())
        within = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(lens) - lens, lens)
        return within, np.repeat(starts, lens) + within

    def _apply_stacked(self, mat: np.ndarray, lengths: np.ndarray,
                       width: int, rows: np.ndarray, rnds: np.ndarray,
                       op: np.ndarray, f1a: np.ndarray, f2a: np.ndarray,
                       f3a: np.ndarray, f4a: np.ndarray,
                       sela: np.ndarray, vala: np.ndarray) -> None:
        """Apply every mutant's havoc stack in canonical type-major order.

        Inputs are flat parallel arrays with one entry per live
        (row, round) stack cell, sorted row-major — grouped by ``rows``
        with ``rnds`` ascending inside each group (the order
        :meth:`havoc_apply` builds). Length-changing ops
        (delete/insert) run first, per mutant in round order,
        vectorized across mutants one stack position at a time.
        Byte-level ops then run against the final geometry in a
        handful of whole-batch passes: XOR bit flips and mod-256
        arithmetic are commutative (``ufunc.at`` handles duplicate
        targets), and all overwrites are resolved per byte by round
        order — the same bytes a sequential replay of the writes would
        leave behind. (Cell *order* never matters in this phase: every
        (byte, round) key pair is unique, so the conflict sort is
        total.) Guard failures (word/dword on short rows, delete at
        the minimum length, insert at full width) fall through to the
        constant-overwrite op, as in the scalar if/elif chain.
        """
        n = int(lengths.size)
        is_len = (op == 6) | (op == 7)

        # -- phase A: block deletes / inserts, sequential per mutant --
        fb_idx = [np.empty(0, dtype=np.int64)]  # guard-fallback cells
        a_idx = np.flatnonzero(is_len)  # row-major: by row, then round
        if a_idx.size:
            counts = np.bincount(rows[a_idx], minlength=n)
            starts = np.cumsum(counts) - counts
            for step in range(int(counts.max())):
                live = counts > step
                idx = starts[live] + step
                if idx.size <= _SCALAR_STEP_CUTOFF:
                    self._length_tail(mat, lengths, width, a_idx, rows,
                                      starts, counts, step, op, f1a,
                                      f2a, f3a, f4a, vala, fb_idx)
                    break
                cell = a_idx[idx]
                r = rows[cell]
                is_del = op[cell] == 6
                ln = lengths[r]
                bad = np.where(is_del, ln <= self.min_len, ln >= width)
                if bad.any():
                    fb_idx.append(cell[bad])
                    good = ~bad
                    cell, r = cell[good], r[good]
                    is_del, ln = is_del[good], ln[good]
                if r.size:
                    self._length_step(mat, lengths, width, r, is_del,
                                      ln, f1a[cell], f2a[cell],
                                      f3a[cell], f4a[cell], vala[cell])

        # -- phase B: byte-level ops against the final geometry --
        b_idx = np.flatnonzero(~is_len)
        rows_b = rows[b_idx]
        rnds_b = rnds[b_idx]
        opv = op[b_idx]
        ln = lengths[rows_b]
        opv[(opv == 2) & (ln < 2)] = 9
        opv[(opv == 3) & (ln < 4)] = 9
        f1 = f1a[b_idx]
        f2 = f2a[b_idx]
        f3 = f3a[b_idx]
        sel = sela[b_idx]
        val = vala[b_idx]

        flat = mat.reshape(-1)
        m = opv == 0  # flip one bit
        if m.any():
            pos = (f1[m] * ln[m]).astype(np.int64)
            np.bitwise_xor.at(
                flat, rows_b[m] * width + pos,
                np.uint8(1) << (f2[m] * 8).astype(np.uint8))

        m = opv == 4  # arithmetic +/- (wraps mod 256)
        if m.any():
            pos = (f1[m] * ln[m]).astype(np.int64)
            delta = 1 + (sel[m] % ARITH_MAX)
            delta = np.where(f3[m] < 0.5, -delta, delta)
            np.add.at(flat, rows_b[m] * width + pos,
                      delta.astype(np.uint8))

        # Overwrites: collect per-byte (flat index, round, value)
        # triples, then keep the round-latest value per byte.
        lin_parts: list = []
        key_parts: list = []
        val_parts: list = []

        def emit(rows, rnds, cols, values):
            lin_parts.append(rows * width + cols)
            key_parts.append(rnds)
            val_parts.append(values)

        m = opv == 1  # interesting byte
        if m.any():
            pos = (f1[m] * ln[m]).astype(np.int64)
            emit(rows_b[m], rnds_b[m], pos,
                 INTERESTING_8[sel[m] % INTERESTING_8.size])

        m = opv == 2  # interesting word
        if m.any():
            pos = (f1[m] * (ln[m] - 1)).astype(np.int64)
            value = INTERESTING_16[sel[m] % INTERESTING_16.size]
            value = np.where(f3[m] < 0.5, value.byteswap(), value)
            emit(rows_b[m], rnds_b[m], pos,
                 (value & 0xFF).astype(np.uint8))
            emit(rows_b[m], rnds_b[m], pos + 1,
                 (value >> 8).astype(np.uint8))

        m = opv == 3  # interesting dword
        if m.any():
            pos = (f1[m] * (ln[m] - 3)).astype(np.int64)
            value = INTERESTING_32[sel[m] % INTERESTING_32.size]
            value = np.where(f3[m] < 0.5, value.byteswap(), value)
            for byte in range(4):
                emit(rows_b[m], rnds_b[m], pos + byte,
                     ((value >> (8 * byte)) & 0xFF).astype(np.uint8))

        m = opv == 5  # random byte
        if m.any():
            pos = (f1[m] * ln[m]).astype(np.int64)
            emit(rows_b[m], rnds_b[m], pos, val[m])

        m = opv == 8  # overwrite block from elsewhere
        if m.any():
            r, n_ = rows_b[m], ln[m]
            cap = np.maximum(1, (n_ * _BLOCK_FRACTION).astype(np.int64))
            length = 1 + (f2[m] * cap).astype(np.int64)
            src = (f1[m] * (n_ - length + 1)).astype(np.int64)
            dst = (f3[m] * (n_ - length + 1)).astype(np.int64)
            within, src_cols = self._block_scatter(src, length)
            block_rows = np.repeat(r, length)
            emit(block_rows, np.repeat(rnds_b[m], length),
                 np.repeat(dst, length) + within,
                 flat[block_rows * width + src_cols])

        # constant-block overwrite: drawn op 9 plus guard fallbacks
        m = opv == 9
        i9 = np.concatenate([b_idx[m]] + fb_idx)
        if i9.size:
            r9 = rows[i9]
            n_ = lengths[r9]
            cap = np.maximum(1, (n_ * _BLOCK_FRACTION).astype(np.int64))
            length = 1 + (f2a[i9] * cap).astype(np.int64)
            dst = (f1a[i9] * (n_ - length + 1)).astype(np.int64)
            _, dst_cols = self._block_scatter(dst, length)
            emit(np.repeat(r9, length), np.repeat(rnds[i9], length),
                 dst_cols, np.repeat(vala[i9], length))

        if lin_parts:
            lin = np.concatenate(lin_parts)
            if lin.size:
                key = np.concatenate(key_parts)
                values = np.concatenate(val_parts)
                # Round-latest value per byte without sorting: fold
                # (round, value) packed entries into a dense max
                # accumulator (a byte's round numbers are unique, so
                # the max picks the latest write), then write every
                # contended byte its winner — duplicate scatters all
                # carry the same value.
                acc = np.full(mat.size, -1, dtype=np.int16)
                np.maximum.at(acc, lin,
                              (key * 256 + values).astype(np.int16))
                mat.reshape(-1)[lin] = (acc[lin] & 0xFF).astype(np.uint8)

    def _length_tail(self, mat: np.ndarray, lengths: np.ndarray,
                     width: int, a_idx: np.ndarray, rows: np.ndarray,
                     starts: np.ndarray, counts: np.ndarray, step: int,
                     op: np.ndarray, f1a: np.ndarray, f2a: np.ndarray,
                     f3a: np.ndarray, f4a: np.ndarray,
                     vala: np.ndarray, fb_idx: list) -> None:
        """Finish the remaining length-op stacks with row slices.

        Once few mutants still have pending deletes/inserts, the fixed
        cost of a vectorized :meth:`_length_step` exceeds plain
        slice-copy work, so the deep tail of the longest stacks runs
        sequentially. Bit-identical to the vectorized step: same
        formulas, same guard fallbacks, same write order per mutant.
        """
        min_len = self.min_len
        fb: list = []
        for row in np.flatnonzero(counts > step):
            row_v = mat[row]
            for j in range(starts[row] + step,
                           starts[row] + counts[row]):
                cell = int(a_idx[j])
                ln = int(lengths[row])
                cap = max(1, int(ln * _BLOCK_FRACTION))
                length = 1 + int(f2a[cell] * cap)
                if op[cell] == 6:  # delete block
                    if ln <= min_len:
                        fb.append(cell)
                        continue
                    start = int(f1a[cell] * (ln - length + 1))
                    row_v[start:ln - length] = \
                        row_v[start + length:ln].copy()
                    row_v[ln - length:ln] = 0
                    lengths[row] = max(min_len, ln - length)
                else:  # clone / insert block
                    if ln >= width:
                        fb.append(cell)
                        continue
                    src = int(f1a[cell] * (ln - length + 1))
                    dst = int(f3a[cell] * (ln + 1))
                    if f4a[cell] < 0.75:
                        block = row_v[src:src + length].copy()
                    else:
                        block = vala[cell]
                    tail = row_v[dst:ln].copy()
                    t_end = min(width, ln + length)
                    tail_fit = t_end - (dst + length)
                    if tail_fit > 0:
                        row_v[dst + length:t_end] = tail[:tail_fit]
                    b_end = min(width, dst + length)
                    if isinstance(block, np.ndarray):
                        row_v[dst:b_end] = block[:b_end - dst]
                    else:
                        row_v[dst:b_end] = block
                    lengths[row] = min(width, ln + length)
        if fb:
            fb_idx.append(np.asarray(fb, dtype=np.int64))

    def _length_step(self, mat: np.ndarray, lengths: np.ndarray,
                     width: int, r: np.ndarray, is_del: np.ndarray,
                     n_: np.ndarray, a: np.ndarray, b: np.ndarray,
                     c: np.ndarray, d: np.ndarray,
                     v: np.ndarray) -> None:
        """One stack position of block deletes/inserts, fused.

        Both ops are "move the tail, then write a region": a delete
        shifts ``[start+length, n)`` left and zeroes the vacated end, a
        clone/insert shifts ``[dst, n)`` right and writes the block into
        the gap. Fusing them means one gather/scatter pair for all tail
        moves and one for all region writes, regardless of the
        delete/insert mix. Rows in ``r`` are distinct, so the ops are
        independent; all gathers land before any scatter.
        """
        cap = np.maximum(1, (n_ * _BLOCK_FRACTION).astype(np.int64))
        length = 1 + (b * cap).astype(np.int64)
        # Delete's block start and insert's clone source share a formula.
        src = (a * (n_ - length + 1)).astype(np.int64)
        dst = (c * (n_ + 1)).astype(np.int64)  # unused for deletes
        # Clone sources are the only region bytes that must be read
        # before any scatter lands; deletes fill with zeros and the
        # rest with a constant, so those skip the gather entirely.
        flat = mat.reshape(-1)
        base = r * width  # 1-D fancy indexing beats 2-D row/col pairs
        clone = ~is_del & (d < 0.75)
        within_c, src_cols_c = self._block_scatter(src[clone],
                                                   length[clone])
        clone_base = np.repeat(base[clone], length[clone])
        clone_vals = flat[clone_base + src_cols_c]
        # Tail move: [move_from, n) shifts to start at move_to.
        move_from = np.where(is_del, src + length, dst)
        move_to = np.where(is_del, src, dst + length)
        tail_len = n_ - move_from
        _, from_cols = self._block_scatter(move_from, tail_len)
        tail_base = np.repeat(base, tail_len)
        tail_vals = flat[tail_base + from_cols]
        to_cols = from_cols + np.repeat(move_to - move_from, tail_len)
        if to_cols.size and int(to_cols.max()) >= width:
            keep = to_cols < width
            tail_base, to_cols = tail_base[keep], to_cols[keep]
            tail_vals = tail_vals[keep]
        flat[tail_base + to_cols] = tail_vals
        # Region writes: the vacated end (delete, zeros), the cloned
        # block, or the constant fill — distinct rows per class, so
        # three scatters land exactly what the fused one did.
        del_base = np.repeat(base[is_del], length[is_del])
        _, del_cols = self._block_scatter((n_ - length)[is_del],
                                          length[is_del])
        flat[del_base + del_cols] = 0
        clone_cols = within_c + np.repeat(dst[clone], length[clone])
        if clone_cols.size and int(clone_cols.max()) >= width:
            keep = clone_cols < width
            clone_base, clone_cols = clone_base[keep], clone_cols[keep]
            clone_vals = clone_vals[keep]
        flat[clone_base + clone_cols] = clone_vals
        const = ~is_del & (d >= 0.75)
        within_k, _ = self._block_scatter(dst[const], length[const])
        const_base = np.repeat(base[const], length[const])
        const_cols = within_k + np.repeat(dst[const], length[const])
        const_vals = np.repeat(v[const], length[const])
        if const_cols.size and int(const_cols.max()) >= width:
            keep = const_cols < width
            const_base, const_cols = const_base[keep], const_cols[keep]
            const_vals = const_vals[keep]
        flat[const_base + const_cols] = const_vals
        lengths[r] = np.where(
            is_del, np.maximum(self.min_len, n_ - length),
            np.minimum(width, n_ + length))

    def _splice(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        cut_a = int(self.rng.integers(1, a.size))
        cut_b = int(self.rng.integers(1, b.size))
        return np.concatenate([a[:cut_a], b[cut_b:]])

    def _one_havoc_op(self, buf: np.ndarray) -> np.ndarray:
        rng = self.rng
        n = buf.size
        if n == 0:
            return rng.integers(0, 256, size=self.min_len, dtype=np.uint8)
        op = int(rng.integers(0, 10))
        if op == 0:  # flip one bit
            pos = int(rng.integers(0, n))
            buf[pos] ^= np.uint8(1 << int(rng.integers(0, 8)))
        elif op == 1:  # interesting byte
            buf[int(rng.integers(0, n))] = INTERESTING_8[
                int(rng.integers(0, INTERESTING_8.size))]
        elif op == 2 and n >= 2:  # interesting word
            pos = int(rng.integers(0, n - 1))
            value = INTERESTING_16[int(rng.integers(0,
                                                    INTERESTING_16.size))]
            if rng.random() < 0.5:
                value = value.byteswap()
            buf[pos:pos + 2] = np.frombuffer(value.tobytes(),
                                             dtype=np.uint8)
        elif op == 3 and n >= 4:  # interesting dword
            pos = int(rng.integers(0, n - 3))
            value = INTERESTING_32[int(rng.integers(0,
                                                    INTERESTING_32.size))]
            if rng.random() < 0.5:
                value = value.byteswap()
            buf[pos:pos + 4] = np.frombuffer(value.tobytes(),
                                             dtype=np.uint8)
        elif op == 4:  # arithmetic +/-
            pos = int(rng.integers(0, n))
            delta = int(rng.integers(1, ARITH_MAX + 1))
            if rng.random() < 0.5:
                delta = -delta
            buf[pos] = np.uint8((int(buf[pos]) + delta) & 0xFF)
        elif op == 5:  # random byte
            buf[int(rng.integers(0, n))] = rng.integers(0, 256,
                                                        dtype=np.uint8)
        elif op == 6 and n > self.min_len:  # delete block
            length = self._block_len(n)
            start = int(rng.integers(0, n - length + 1))
            keep = max(self.min_len, n - length)
            buf = np.concatenate([buf[:start],
                                  buf[start + length:]])[:None]
            if buf.size < self.min_len:
                buf = np.pad(buf, (0, self.min_len - buf.size))
        elif op == 7 and n < self.max_len:  # clone / insert block
            length = self._block_len(n)
            src = int(rng.integers(0, n - length + 1))
            dst = int(rng.integers(0, n + 1))
            if rng.random() < 0.75:
                block = buf[src:src + length]
            else:  # constant-byte insertion
                block = np.full(length, rng.integers(0, 256,
                                                     dtype=np.uint8))
            buf = np.concatenate([buf[:dst], block, buf[dst:]])
        elif op == 8:  # overwrite block from elsewhere
            length = self._block_len(n)
            src = int(rng.integers(0, n - length + 1))
            dst = int(rng.integers(0, n - length + 1))
            buf[dst:dst + length] = buf[src:src + length].copy()
        else:  # overwrite block with constant byte
            length = self._block_len(n)
            dst = int(rng.integers(0, n - length + 1))
            buf[dst:dst + length] = rng.integers(0, 256, dtype=np.uint8)
        return buf

    def _block_len(self, n: int) -> int:
        cap = max(1, int(n * _BLOCK_FRACTION))
        return int(self.rng.integers(1, cap + 1))

    # -- deterministic stage ----------------------------------------------

    def deterministic(self, data: bytes, *,
                      max_mutants: Optional[int] = None) -> Iterator[bytes]:
        """AFL's deterministic mutants of ``data``, in stage order.

        Stages: walking 1/2/4-bit flips, walking byte flips, byte
        arithmetic, interesting bytes. ``max_mutants`` truncates the
        stream (the full stream is O(len × 100)).
        """
        base = np.frombuffer(data, dtype=np.uint8)
        produced = 0

        def emit(buf: np.ndarray):
            nonlocal produced
            produced += 1
            return buf.tobytes()

        n_bits = base.size * 8
        for width in (1, 2, 4):
            for bit in range(n_bits - width + 1):
                buf = base.copy()
                for w in range(width):
                    pos, off = divmod(bit + w, 8)
                    buf[pos] ^= np.uint8(1 << off)
                yield emit(buf)
                if max_mutants is not None and produced >= max_mutants:
                    return
        for pos in range(base.size):
            buf = base.copy()
            buf[pos] ^= np.uint8(0xFF)
            yield emit(buf)
            if max_mutants is not None and produced >= max_mutants:
                return
        for pos in range(base.size):
            for delta in range(1, ARITH_MAX + 1):
                for signed in (delta, -delta):
                    buf = base.copy()
                    buf[pos] = np.uint8((int(buf[pos]) + signed) & 0xFF)
                    yield emit(buf)
                    if max_mutants is not None and \
                            produced >= max_mutants:
                        return
        for pos in range(base.size):
            for value in INTERESTING_8:
                buf = base.copy()
                buf[pos] = value
                yield emit(buf)
                if max_mutants is not None and produced >= max_mutants:
                    return
