"""Parallel fuzzing sessions: master–secondary with corpus sync (§V-D).

Runs *k* campaign instances of the same configuration in interleaved
virtual-time slices. Between slices:

* **corpus synchronization** — each instance imports the queue entries
  its peers found since the last sync (executing them through its own
  pipeline, as AFL's ``-M``/``-S`` sync does);
* **contention update** — the shared-LLC + DRAM-bandwidth model
  (:func:`repro.memsim.contention.solve_parallel`) recomputes each
  instance's slowdown from its current mean execution shape, and the
  slowdown scales every cycle charge in the next slice.

The paper runs one master (which would perform the deterministic stage)
and k−1 secondaries; since the evaluation skips the deterministic stage
(§V-A1), master and secondaries behave identically here apart from
their random streams.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from ..core.errors import CampaignConfigError
from ..memsim.contention import InstanceLoad, solve_parallel
from ..target import BuiltBenchmark, get_benchmark
from .campaign import Campaign, CampaignConfig
from .stats import CampaignResult


@dataclass
class ParallelResultSummary:
    """Aggregate outcome of a k-instance session.

    Attributes:
        n_instances: number of co-running campaigns.
        per_instance: each instance's :class:`CampaignResult`.
        total_execs: executions across all instances.
        total_throughput: aggregate execs per virtual second.
        unique_crashes: Crashwalk-unique crashes across the session
            (union over instances).
        discovered_locations: max over instances after final sync (all
            instances converge once synced).
        mean_slowdown: average contention multiplier over the session.
    """

    n_instances: int
    per_instance: List[CampaignResult]
    total_execs: int
    total_throughput: float
    unique_crashes: int
    discovered_locations: int
    mean_slowdown: float


class ParallelSession:
    """k interleaved campaign instances with sync and contention.

    Instances are homogeneous by default (the paper's §V-D setup: the
    same configuration replicated, differing only in random streams).
    Passing a *list* of configurations instead builds an **ensemble**
    session — e.g. one instance per coverage metric, cross-pollinating
    through the corpus sync, the alternative to metric *stacking* that
    the paper's related-work section contrasts BigMap against.
    """

    def __init__(self, config, n_instances: int = None, *,
                 built: Optional[BuiltBenchmark] = None,
                 sync_interval: float = None) -> None:
        if isinstance(config, CampaignConfig):
            if n_instances is None or n_instances < 1:
                raise CampaignConfigError(
                    f"need at least one instance, got {n_instances}")
            configs = [replace(config,
                               rng_seed=config.rng_seed + 1000 * i)
                       for i in range(n_instances)]
        else:
            configs = list(config)
            if not configs:
                raise CampaignConfigError("need at least one instance")
            if n_instances is not None and n_instances != len(configs):
                raise CampaignConfigError(
                    f"{len(configs)} configs but n_instances="
                    f"{n_instances}")
            first = configs[0]
            for other in configs[1:]:
                if other.benchmark != first.benchmark or                         other.scale != first.scale:
                    raise CampaignConfigError(
                        "ensemble instances must share one target")
        self.config = configs[0]
        self.n_instances = len(configs)
        if self.n_instances > self.config.machine.n_cores:
            raise CampaignConfigError(
                f"{self.n_instances} instances exceed the machine's "
                f"{self.config.machine.n_cores} cores")
        if built is None:
            built = get_benchmark(self.config.benchmark).build(
                self.config.scale, seed_scale=self.config.seed_scale)
        self.built = built
        self.instances = [Campaign(c, built=built) for c in configs]
        self.sync_interval = sync_interval or max(
            self.config.virtual_seconds / 20.0, 1.0)
        self._import_cursors: Dict[tuple, int] = {}
        self._slowdown_samples: List[float] = []

    # ------------------------------------------------------------------

    def _update_contention(self) -> None:
        loads = [InstanceLoad(inst.model, inst.shape_stats.mean_shape())
                 for inst in self.instances]
        solved = solve_parallel(loads, machine=self.config.machine)
        slowdowns = []
        for inst, load, contended in zip(self.instances, loads,
                                         solved.per_instance_rate):
            solo = inst.model.throughput(load.shape)
            multiplier = max(1.0, solo / max(contended, 1e-9))
            inst.cycle_multiplier = multiplier
            slowdowns.append(multiplier)
        self._slowdown_samples.append(sum(slowdowns) / len(slowdowns))

    def _sync_corpora(self) -> None:
        for i, dst in enumerate(self.instances):
            for j, src in enumerate(self.instances):
                if i == j:
                    continue
                cursor = self._import_cursors.get((i, j), 0)
                fresh = src.pool.seeds[cursor:]
                self._import_cursors[(i, j)] = len(src.pool.seeds)
                for seed in fresh:
                    # Skip entries that originated from an import of
                    # ours (parent None + depth 0 duplicates are cheap
                    # to re-check anyway).
                    dst.import_input(seed.data)
            for j, src in enumerate(self.instances):
                if i != j:
                    dst.crashwalk.merge_from(src.crashwalk)

    def run(self) -> ParallelResultSummary:
        """Run all instances to the virtual deadline."""
        budget = self.config.virtual_seconds
        for inst in self.instances:
            inst.start()
        self._update_contention()

        deadline = self.sync_interval
        while any(inst.clock.before(budget) and
                  inst.execs < inst.config.max_real_execs
                  for inst in self.instances):
            for inst in self.instances:
                inst.step_until(min(deadline, budget))
            if self.n_instances > 1:
                self._sync_corpora()
                self._update_contention()
            if deadline >= budget:
                break
            deadline += self.sync_interval

        results = [inst.finish() for inst in self.instances]
        total_execs = sum(r.execs for r in results)
        virtual = max(max(r.virtual_seconds for r in results), 1e-9)
        crashes = CampaignsCrashUnion(self.instances).unique_crashes
        return ParallelResultSummary(
            n_instances=self.n_instances,
            per_instance=results,
            total_execs=total_execs,
            total_throughput=total_execs / virtual,
            unique_crashes=crashes,
            discovered_locations=max(r.discovered_locations
                                     for r in results),
            mean_slowdown=(sum(self._slowdown_samples) /
                           len(self._slowdown_samples))
            if self._slowdown_samples else 1.0)


class CampaignsCrashUnion:
    """Unions Crashwalk records across instances (final dedup)."""

    def __init__(self, instances: List[Campaign]) -> None:
        keys = set()
        for inst in instances:
            keys.update(inst.crashwalk.records.keys())
        self.unique_crashes = len(keys)


def run_parallel(config, n_instances: int = None, *,
                 built: Optional[BuiltBenchmark] = None,
                 sync_interval: float = None) -> ParallelResultSummary:
    """Convenience wrapper: construct and run a parallel session."""
    return ParallelSession(config, n_instances, built=built,
                           sync_interval=sync_interval).run()


def run_ensemble(configs, *, built: Optional[BuiltBenchmark] = None,
                 sync_interval: float = None) -> ParallelResultSummary:
    """Run a heterogeneous (one-config-per-instance) ensemble session.

    The corpus sync cross-pollinates inputs between metrics, as in
    ensemble fuzzing [Wang et al., RAID'19]; contrast with stacking the
    metrics into one instance (``metric='ngram3', lafintel=True``),
    which is what BigMap makes affordable (§V-C).
    """
    return ParallelSession(list(configs), built=built,
                           sync_interval=sync_interval).run()
