"""Parallel fuzzing sessions: master–secondary with corpus sync (§V-D).

Runs *k* campaign instances of the same configuration in interleaved
virtual-time slices. Between slices:

* **corpus synchronization** — each instance imports the queue entries
  its peers found since the last sync (executing them through its own
  pipeline, as AFL's ``-M``/``-S`` sync does). Entries an instance
  already owns — its own exports echoed back through a peer, or the
  same entry offered by several peers — are skipped, mirroring AFL's
  ``id:...,sync:`` bookkeeping;
* **contention update** — the shared-LLC + DRAM-bandwidth model
  (:func:`repro.memsim.contention.solve_parallel`) recomputes each
  instance's slowdown from its current mean execution shape, and the
  slowdown scales every cycle charge in the next slice.

The paper runs one master (which would perform the deterministic stage)
and k−1 secondaries; since the evaluation skips the deterministic stage
(§V-A1), master and secondaries behave identically here apart from
their random streams.

**Fault tolerance.** Real fleets lose secondaries to OOM kills, target
hangs and corrupted sync directories. A session can therefore be driven
with a :class:`repro.faults.FaultPlan` — a deterministic virtual-time
schedule of ``crash`` / ``stall`` / ``slow`` / ``corrupt-sync`` events —
and a :class:`repro.faults.RestartPolicy`. A supervisor loop detects
dead or stalled instances through per-slice heartbeats (executions +
clock advance), restarts them from their last checkpoint
(:meth:`Campaign.snapshot`) with exponential backoff, quarantines
corrupt sync payloads, and recomputes contention over the surviving
instances only. An instance whose restart budget runs out is *lost*;
the session completes with the survivors and reports per-instance
fault/restart counts in the summary. With no plan and no policy, the
fault machinery is inert and sessions behave exactly as before —
except that an unplanned exception inside one instance quarantines that
instance instead of killing the whole session.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set, Tuple

from ..core.errors import CampaignConfigError, InstanceFaultError
from ..faults import (CORRUPT_SYNC, CRASH, SLOW, STALL, FaultInjector,
                      FaultPlan, RestartPolicy, SessionSupervisor)
from ..faults.supervisor import DEAD, LOST, RUNNING
from ..memsim.contention import InstanceLoad, solve_parallel
from ..target import BuiltBenchmark, get_benchmark
from ..telemetry.recorder import SessionTelemetry
from .campaign import Campaign, CampaignConfig
from .stats import CampaignResult


@dataclass
class ParallelResultSummary:
    """Aggregate outcome of a k-instance session.

    Attributes:
        n_instances: number of co-running campaigns.
        per_instance: each instance's :class:`CampaignResult` (instances
            that failed before completing their seed dry-run are
            omitted).
        total_execs: executions across all instances.
        total_throughput: aggregate execs per virtual second.
        unique_crashes: Crashwalk-unique crashes across the session
            (union over instances).
        discovered_locations: max over instances after final sync (all
            instances converge once synced).
        mean_slowdown: average contention multiplier over the session.
        instance_faults: per-instance injected/observed fault counts.
        instance_restarts: per-instance supervised restart counts.
        lost_instances: indices of instances that were permanently lost
            (restart budget exhausted, or unrecoverable failure).
        quarantined_imports: sync payload entries dropped because the
            exporting instance's sync state was corrupt.
        unplanned_failures: descriptions of failures that were *not*
            injected by the fault plan (real exceptions).
    """

    n_instances: int
    per_instance: List[CampaignResult]
    total_execs: int
    total_throughput: float
    unique_crashes: int
    discovered_locations: int
    mean_slowdown: float
    instance_faults: List[int] = field(default_factory=list)
    instance_restarts: List[int] = field(default_factory=list)
    lost_instances: List[int] = field(default_factory=list)
    quarantined_imports: int = 0
    unplanned_failures: List[str] = field(default_factory=list)

    @property
    def total_restarts(self) -> int:
        return sum(self.instance_restarts)

    @property
    def total_faults(self) -> int:
        return sum(self.instance_faults)


class ParallelSession:
    """k interleaved campaign instances with sync and contention.

    Instances are homogeneous by default (the paper's §V-D setup: the
    same configuration replicated, differing only in random streams).
    Passing a *list* of configurations instead builds an **ensemble**
    session — e.g. one instance per coverage metric, cross-pollinating
    through the corpus sync, the alternative to metric *stacking* that
    the paper's related-work section contrasts BigMap against.

    Args:
        config: a :class:`CampaignConfig` (replicated ``n_instances``
            times) or a list of configurations (ensemble).
        n_instances: fleet size when ``config`` is a single
            configuration.
        built: pre-built benchmark shared by every instance.
        sync_interval: virtual seconds between corpus syncs (default:
            1/20 of the budget, at least 1 s).
        fault_plan: optional deterministic fault schedule
            (:class:`repro.faults.FaultPlan`).
        restart_policy: supervision policy for restarting failed
            instances (defaults to :class:`repro.faults.RestartPolicy`
            when a fault plan is given).
        telemetry: optional
            :class:`~repro.telemetry.SessionTelemetry`. Each instance
            gets its own recorder (per-instance ``fuzzer_stats`` /
            ``plot_data`` / event logs), and the supervisor emits
            session-level fault/restart/stall/quarantine events.
    """

    def __init__(self, config, n_instances: int = None, *,
                 built: Optional[BuiltBenchmark] = None,
                 sync_interval: float = None,
                 fault_plan: Optional[FaultPlan] = None,
                 restart_policy: Optional[RestartPolicy] = None,
                 telemetry: Optional[SessionTelemetry] = None) -> None:
        configs = self._resolve_configs(config, n_instances)
        self.config = configs[0]
        self.n_instances = len(configs)
        if self.n_instances > self.config.machine.n_cores:
            raise CampaignConfigError(
                f"{self.n_instances} instances exceed the machine's "
                f"{self.config.machine.n_cores} cores")
        if built is None:
            built = get_benchmark(self.config.benchmark).build(
                self.config.scale, seed_scale=self.config.seed_scale)
        self.built = built
        self.telemetry = telemetry
        self.instances = [
            Campaign(c, built=built,
                     telemetry=(telemetry.for_instance(i)
                                if telemetry is not None else None))
            for i, c in enumerate(configs)]
        self.sync_interval = sync_interval or max(
            self.config.virtual_seconds / 20.0, 1.0)

        self.fault_plan = fault_plan if fault_plan else None
        if self.fault_plan is not None:
            self.fault_plan.validate_for(self.n_instances)
        #: Checkpoint/restart machinery engages when faults are planned
        #: or a policy is explicitly requested; otherwise sessions pay
        #: zero snapshot overhead and unplanned failures quarantine the
        #: instance instead of restarting it.
        self._checkpointing = (self.fault_plan is not None or
                               restart_policy is not None)
        self.restart_policy = restart_policy or RestartPolicy()
        self.supervisor = SessionSupervisor(self.n_instances,
                                            self.restart_policy,
                                            telemetry=telemetry)
        self._injector = FaultInjector(self.fault_plan)

        self._import_cursors: Dict[Tuple[int, int], int] = {}
        #: Per-instance set of input payloads already present in (or
        #: imported into) that instance's queue — the sync dedup that
        #: prevents O(k²) echo re-executions.
        self._seen: List[Set[bytes]] = [set()
                                        for _ in range(self.n_instances)]
        self._seen_cursor: List[int] = [0] * self.n_instances
        self._checkpoints: List[Optional[dict]] = [None] * self.n_instances
        self._slowdown_samples: List[float] = []
        self._unplanned: List[str] = []
        self._start_errors: List[Exception] = []

    @staticmethod
    def _resolve_configs(config, n_instances: int) -> List[CampaignConfig]:
        """Normalize the (config, n_instances) input into a config list."""
        if isinstance(config, CampaignConfig):
            if n_instances is None or n_instances < 1:
                raise CampaignConfigError(
                    f"need at least one instance, got {n_instances}")
            return [replace(config, rng_seed=config.rng_seed + 1000 * i)
                    for i in range(n_instances)]
        configs = list(config)
        if not configs:
            raise CampaignConfigError("need at least one instance")
        if n_instances is not None and n_instances != len(configs):
            raise CampaignConfigError(
                f"{len(configs)} configs but n_instances={n_instances}")
        first = configs[0]
        for other in configs[1:]:
            if (other.benchmark != first.benchmark or
                    other.scale != first.scale):
                raise CampaignConfigError(
                    "ensemble instances must share one target")
        return configs

    # -- contention ----------------------------------------------------

    def _update_contention(self) -> None:
        live = self.supervisor.live_indices()
        if not live:
            return
        insts = [self.instances[i] for i in live]
        loads = [InstanceLoad(inst.model, inst.shape_stats.mean_shape())
                 for inst in insts]
        solved = solve_parallel(loads, machine=self.config.machine)
        slowdowns = []
        for inst, load, contended in zip(insts, loads,
                                         solved.per_instance_rate):
            solo = inst.model.throughput(load.shape)
            multiplier = max(1.0, solo / max(contended, 1e-9))
            inst.cycle_multiplier = multiplier
            slowdowns.append(multiplier)
        self._slowdown_samples.append(sum(slowdowns) / len(slowdowns))

    # -- corpus sync ---------------------------------------------------

    def _refresh_seen(self, i: int) -> None:
        """Absorb instance *i*'s own new queue entries into its seen set."""
        seeds = self.instances[i].pool.seeds
        for seed in seeds[self._seen_cursor[i]:]:
            self._seen[i].add(seed.data)
        self._seen_cursor[i] = len(seeds)

    def _sync_corpora(self) -> None:
        live = self.supervisor.live_indices()
        sync_entry = sum(self.instances[i].clock.cycles for i in live)
        for i in live:
            self._refresh_seen(i)
        corrupt = {j: self.supervisor[j].corrupt_export for j in live}
        for i in live:
            dst = self.instances[i]
            for j in live:
                if i == j:
                    continue
                cursor = self._import_cursors.get((i, j), 0)
                src_seeds = self.instances[j].pool.seeds
                fresh = src_seeds[cursor:]
                self._import_cursors[(i, j)] = len(src_seeds)
                if corrupt[j]:
                    # Corrupt sync payload: quarantine, don't run.
                    if fresh:
                        self.supervisor.mark_quarantined(
                            i, j,
                            now=min(dst.clock.seconds, self._budget()),
                            entries=len(fresh))
                    continue
                for seed in fresh:
                    if seed.data in self._seen[i]:
                        # Our own entry echoed back, or a duplicate a
                        # third peer already delivered: skip the
                        # re-execution entirely.
                        continue
                    self._seen[i].add(seed.data)
                    self._guarded_import(i, seed.data)
                    if not self.supervisor[i].live:
                        break
                if not self.supervisor[i].live:
                    break
            if not self.supervisor[i].live:
                continue
            for j in live:
                if i != j and not corrupt[j]:
                    dst.crashwalk.merge_from(self.instances[j].crashwalk)
        for j in live:
            self.supervisor[j].corrupt_export = False
        if self.telemetry is not None:
            # Import executions charged during the sync, attributed to
            # the session-level sync span (virtual cycles, all
            # instances combined).
            # max(0): a failed import can restore an instance to an
            # older checkpoint, moving its clock backwards.
            spent = max(
                sum(self.instances[i].clock.cycles for i in live) -
                sync_entry, 0.0)
            self.telemetry.session.tracer.add("sync", spent)

    def _guarded_import(self, i: int, data: bytes) -> None:
        try:
            self.instances[i].import_input(data)
        except Exception as exc:
            # Chained into the fault taxonomy, not swallowed: the
            # wrapped cause reaches the failure log and the summary.
            self._record_unplanned(
                i, InstanceFaultError.wrap(i, exc, during="sync-import"))

    # -- supervision ---------------------------------------------------

    def _budget(self) -> float:
        return self.config.virtual_seconds

    def _make_checkpoint(self, i: int) -> dict:
        return {
            "campaign": self.instances[i].snapshot(),
            "seen": set(self._seen[i]),
            "seen_cursor": self._seen_cursor[i],
            "cursors": {j: self._import_cursors.get((i, j), 0)
                        for j in range(self.n_instances)},
        }

    def _refresh_checkpoints(self) -> None:
        if not self._checkpointing:
            return
        for i in self.supervisor.live_indices():
            self._checkpoints[i] = self._make_checkpoint(i)

    def _record_unplanned(self, i: int,
                          fault: InstanceFaultError) -> None:
        """Account an unplanned instance failure.

        ``fault`` carries the original exception as ``__cause__``; its
        type and message flow into the supervisor's failure log and the
        summary's ``unplanned_failures`` so nothing is silently lost.
        """
        cause = fault.__cause__
        self._unplanned.append(f"instance {i}: {cause!r}")
        inst = self.instances[i]
        inst.faults_injected += 1
        self.supervisor[i].faults += 1
        self._fail(i, now=min(inst.clock.seconds, self._budget()),
                   reason=repr(cause),
                   restorable=self._checkpoints[i] is not None)

    def _fail(self, i: int, now: float, reason: str,
              restorable: bool = True) -> None:
        """An instance died or hung: restore its durable state and
        schedule a restart (or declare it lost)."""
        inst = self.instances[i]
        inst.fault_multiplier = 1.0
        if restorable and self._checkpoints[i] is None:
            restorable = False
        if not restorable:
            self.supervisor[i].failures.append(f"t={now:.3f}: {reason}")
            self.supervisor.mark_lost(i, now=now, reason=reason)
            return
        self.supervisor.mark_failed(i, now, reason)
        checkpoint = self._checkpoints[i]
        inst.restore(checkpoint["campaign"])
        self._seen[i] = set(checkpoint["seen"])
        self._seen_cursor[i] = checkpoint["seen_cursor"]
        for j, cursor in checkpoint["cursors"].items():
            self._import_cursors[(i, j)] = cursor
        # Peers' read cursors into the shrunk queue must not point past
        # its end, or regrown entries would be skipped silently.
        pool_len = len(inst.pool.seeds)
        for j in range(self.n_instances):
            if j != i and self._import_cursors.get((j, i), 0) > pool_len:
                self._import_cursors[(j, i)] = pool_len

    def _restart_instance(self, i: int) -> None:
        """Bring a DEAD instance back at its scheduled restart time."""
        inst = self.instances[i]
        health = self.supervisor[i]
        downtime = health.restart_at - inst.clock.seconds
        if downtime > 0:
            # Checkpoint-to-restart wall time passes without fuzzing.
            inst.clock.charge(downtime * inst.clock.frequency_hz)
        inst.restarts += 1
        self.supervisor.mark_restarted(
            i, now=min(inst.clock.seconds, self._budget()))
        # A freshly restored instance's counters are behind the slice's
        # heartbeat baseline; don't mistake the gap for a stall.
        self.supervisor[i].had_capacity = False

    def _idle_charge(self, i: int, until: float) -> None:
        """Advance a hung instance's clock without executing anything."""
        inst = self.instances[i]
        gap = min(until, self._budget()) - inst.clock.seconds
        if gap > 0:
            inst.clock.charge(gap * inst.clock.frequency_hz)

    def _step_instance(self, i: int, target: float) -> None:
        """Step one instance to ``target``, honoring slow-fault windows
        and converting exceptions into supervised failures."""
        inst = self.instances[i]
        health = self.supervisor[i]
        target = min(target, self._budget())
        try:
            if health.slow_until > inst.clock.seconds:
                inst.fault_multiplier = health.slow_factor
                inst.step_until(min(health.slow_until, target))
                if health.slow_until > target:
                    return
                health.slow_factor = 1.0
                health.slow_until = 0.0
            inst.fault_multiplier = 1.0
            inst.step_until(target)
        except Exception as exc:
            self._record_unplanned(
                i, InstanceFaultError.wrap(i, exc, during="step"))

    def _apply_event(self, i: int, event) -> None:
        inst = self.instances[i]
        health = self.supervisor[i]
        health.faults += 1
        inst.faults_injected += 1
        if event.kind == CRASH:
            self._fail(i, now=max(event.time, inst.clock.seconds),
                       reason="injected crash")
        elif event.kind == STALL:
            health.stalled_since = event.time
        elif event.kind == SLOW:
            health.slow_factor = event.magnitude
            health.slow_until = event.time + event.duration
        elif event.kind == CORRUPT_SYNC:
            health.corrupt_export = True

    def _maybe_restart(self, i: int, before: float) -> bool:
        """Restart a DEAD instance if its backoff expires before
        ``before``; returns whether the instance is now running."""
        health = self.supervisor[i]
        if health.status != DEAD:
            return health.status == RUNNING
        if health.restart_at < min(before, self._budget()):
            self._restart_instance(i)
            return True
        return False

    def _drive_slice(self, i: int, t0: float, t1: float) -> None:
        """Run instance *i* through the virtual window ``[t0, t1)``,
        injecting any planned faults that fall inside it."""
        inst = self.instances[i]
        health = self.supervisor[i]
        if health.status == LOST:
            return
        if health.status == DEAD and not self._maybe_restart(i, t1):
            return
        health.execs_at_slice_start = inst.execs
        health.had_capacity = (
            health.stalled_since is None and
            inst.clock.seconds < t1 and
            inst.execs < inst.config.max_real_execs)
        for event in self._injector.take(i, t0, t1):
            if health.status == LOST:
                return
            if health.status == DEAD and not self._maybe_restart(i, t1):
                # Remaining events hit a process that is already down.
                continue
            if health.stalled_since is None:
                self._step_instance(i, event.time)
            if health.status == RUNNING:
                self._apply_event(i, event)
        if health.status == DEAD:
            self._maybe_restart(i, t1)
        if health.status == RUNNING:
            if health.stalled_since is not None:
                self._idle_charge(i, t1)
            else:
                self._step_instance(i, t1)

    def _detect_stalls(self) -> None:
        """Per-slice heartbeat: an instance whose clock had room and
        whose exec counter did not move is hung — restart it."""
        for i in self.supervisor.live_indices():
            inst = self.instances[i]
            health = self.supervisor[i]
            stalled_by_plan = health.stalled_since is not None
            no_heartbeat = (health.had_capacity and
                            inst.execs <= health.execs_at_slice_start)
            if stalled_by_plan or no_heartbeat:
                now = min(inst.clock.seconds, self._budget())
                self.supervisor.mark_stalled(
                    i, now,
                    last_progress=(health.stalled_since
                                   if health.stalled_since is not None
                                   else now))
                self._fail(i, now=now,
                           reason="stall detected (heartbeat flat)",
                           restorable=self._checkpoints[i] is not None)

    def _work_remains(self) -> bool:
        budget = self._budget()
        for i, inst in enumerate(self.instances):
            health = self.supervisor[i]
            if health.status == LOST:
                continue
            if health.status == DEAD:
                if health.restart_at < budget:
                    return True
                continue
            if (inst.clock.before(budget) and
                    inst.execs < inst.config.max_real_execs):
                return True
        return False

    # -- main loop -----------------------------------------------------

    def _start_instances(self) -> None:
        for i, inst in enumerate(self.instances):
            try:
                inst.start()
            except Exception as exc:
                fault = InstanceFaultError.wrap(i, exc, during="start")
                self._start_errors.append(exc)
                self._unplanned.append(str(fault))
                self.supervisor[i].failures.append(
                    f"start: {fault.__cause__!r}")
                self.supervisor.mark_lost(
                    i, now=0.0, reason=f"start: {fault.__cause__!r}")
        if not self.supervisor.live_indices():
            raise self._start_errors[0]
        if self._checkpointing:
            for i in self.supervisor.live_indices():
                self._checkpoints[i] = self._make_checkpoint(i)

    def run(self) -> ParallelResultSummary:
        """Run all instances to the virtual deadline, supervised."""
        budget = self._budget()
        self._start_instances()
        self._update_contention()

        slice_start = 0.0
        deadline = self.sync_interval
        while self._work_remains():
            t1 = min(deadline, budget)
            for i in range(self.n_instances):
                self._drive_slice(i, slice_start, t1)
            self._detect_stalls()
            if self.n_instances > 1:
                self._sync_corpora()
                self._update_contention()
            self._refresh_checkpoints()
            if deadline >= budget:
                break
            slice_start = deadline
            deadline += self.sync_interval

        results = [inst.finish() for inst in self.instances
                   if inst.model is not None]
        total_execs = sum(r.execs for r in results)
        virtual = max(max(r.virtual_seconds for r in results), 1e-9)
        crashes = CampaignsCrashUnion(self.instances).unique_crashes
        return ParallelResultSummary(
            n_instances=self.n_instances,
            per_instance=results,
            total_execs=total_execs,
            total_throughput=total_execs / virtual,
            unique_crashes=crashes,
            discovered_locations=max(r.discovered_locations
                                     for r in results),
            mean_slowdown=(sum(self._slowdown_samples) /
                           len(self._slowdown_samples))
            if self._slowdown_samples else 1.0,
            instance_faults=[h.faults for h in self.supervisor.health],
            instance_restarts=[h.restarts
                               for h in self.supervisor.health],
            lost_instances=self.supervisor.lost_indices(),
            quarantined_imports=self.supervisor.quarantined_imports,
            unplanned_failures=list(self._unplanned))


class CampaignsCrashUnion:
    """Unions Crashwalk records across instances (final dedup)."""

    def __init__(self, instances: List[Campaign]) -> None:
        keys = set()
        for inst in instances:
            keys.update(inst.crashwalk.records.keys())
        self.unique_crashes = len(keys)


def run_parallel(config, n_instances: int = None, *,
                 built: Optional[BuiltBenchmark] = None,
                 sync_interval: float = None,
                 fault_plan: Optional[FaultPlan] = None,
                 restart_policy: Optional[RestartPolicy] = None,
                 telemetry: Optional[SessionTelemetry] = None
                 ) -> ParallelResultSummary:
    """Convenience wrapper: construct and run a parallel session."""
    return ParallelSession(config, n_instances, built=built,
                           sync_interval=sync_interval,
                           fault_plan=fault_plan,
                           restart_policy=restart_policy,
                           telemetry=telemetry).run()


def run_ensemble(configs, *, built: Optional[BuiltBenchmark] = None,
                 sync_interval: float = None,
                 fault_plan: Optional[FaultPlan] = None,
                 restart_policy: Optional[RestartPolicy] = None,
                 telemetry: Optional[SessionTelemetry] = None
                 ) -> ParallelResultSummary:
    """Run a heterogeneous (one-config-per-instance) ensemble session.

    The corpus sync cross-pollinates inputs between metrics, as in
    ensemble fuzzing [Wang et al., RAID'19]; contrast with stacking the
    metrics into one instance (``metric='ngram3', lafintel=True``),
    which is what BigMap makes affordable (§V-C).
    """
    return ParallelSession(list(configs), built=built,
                           sync_interval=sync_interval,
                           fault_plan=fault_plan,
                           restart_policy=restart_policy,
                           telemetry=telemetry).run()
