"""Campaign checkpointing: snapshot and restore of in-flight state.

A :class:`CampaignCheckpoint` captures everything a campaign needs to
resume *bit-identically* from a point in virtual time: the queue, the
virgin maps, the crash records, the RNG stream position, the clock and
every counter. Restoring one onto the campaign it came from and
re-running the same slice reproduces the original run exactly — the
property the parallel supervisor relies on when it restarts a crashed
instance, and the property ``tests/fuzzer/test_checkpoint.py`` pins.

Checkpoints are in-process value snapshots (copied arrays and records),
not serialized files: a supervised restart models a *process* respawn
in the simulated fleet, and the checkpoint plays the role of AFL's
on-disk queue/fuzzer_stats that survive the process.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..core.errors import CheckpointError
from .seed import Seed
from .stats import RunningShape
from .triage import CrashRecord


def _copy_seed(seed: Seed) -> Seed:
    return replace(seed, covered_locations=seed.covered_locations.copy())


def _copy_records(records: Dict[int, CrashRecord]) -> Dict[int, CrashRecord]:
    return {key: replace(record) for key, record in records.items()}


@dataclass
class CampaignCheckpoint:
    """Value snapshot of a started campaign (see module docstring)."""

    clock_cycles: float
    execs: int
    hangs: int
    unique_hangs: int
    next_seed_id: int
    stopped_by: str
    cycle_multiplier: float
    rng_state: Dict[str, Any]
    seeds: List[Seed]
    top_rated: Dict[int, int]
    cull_pending: bool
    scheduler_cursor: int
    queue_cycles: int
    virgin: np.ndarray
    crash_records: Dict[int, CrashRecord]
    afl_crash_virgin: np.ndarray
    afl_unique_crashes: int
    tmout_virgin: np.ndarray
    tmout_unique_crashes: int
    shape_stats: RunningShape
    op_cycles: Dict[str, float]
    coverage_curve: List[Tuple[float, int]]
    next_sample: float
    coverage_state: Dict[str, Any]
    #: Value capture of the campaign's telemetry recorder (events,
    #: derived AFL artifacts, metrics, span profile); None when the
    #: campaign runs without telemetry. Restoring it is what keeps a
    #: resumed campaign's plot_data byte-identical to an uninterrupted
    #: run's.
    telemetry_state: Optional[Dict[str, Any]] = None

    @property
    def virtual_seconds(self) -> float:
        """Clock position of the checkpoint (needs the campaign's
        frequency only at restore time; stored cycles are canonical)."""
        return self.clock_cycles


def snapshot_campaign(campaign) -> CampaignCheckpoint:
    """Capture a resumable snapshot of ``campaign``.

    The campaign must have been started (model calibrated, curves
    initialized); snapshots are taken between executions, never with a
    pipeline in flight.
    """
    if campaign.model is None:
        raise CheckpointError(
            "cannot snapshot a campaign before start()")
    coverage = campaign.coverage
    if hasattr(coverage, "index"):        # BigMap: persistent key table
        coverage_state = {
            "index": coverage.index.copy(),
            "cov": coverage.cov.copy(),
            "used_key": coverage.used_key,
        }
    else:                                  # AFL: flat trace buffer
        coverage_state = {
            "trace": coverage.trace.copy(),
            "touched": [t.copy() for t in coverage._touched],
        }
    return CampaignCheckpoint(
        clock_cycles=campaign.clock.cycles,
        execs=campaign.execs,
        hangs=campaign.hangs,
        unique_hangs=campaign.unique_hangs,
        next_seed_id=campaign._next_seed_id,
        stopped_by=campaign.stopped_by,
        cycle_multiplier=getattr(campaign, "cycle_multiplier", 1.0),
        rng_state=copy.deepcopy(campaign.rng.bit_generator.state),
        seeds=[_copy_seed(s) for s in campaign.pool.seeds],
        top_rated=dict(campaign.pool._top_rated),
        cull_pending=campaign.pool._cull_pending,
        scheduler_cursor=campaign.scheduler._cursor,
        queue_cycles=campaign.scheduler.queue_cycles,
        virgin=campaign.virgin.virgin.copy(),
        crash_records=_copy_records(campaign.crashwalk.records),
        afl_crash_virgin=campaign.afl_triage.virgin_crash.virgin.copy(),
        afl_unique_crashes=campaign.afl_triage.unique_crashes,
        tmout_virgin=campaign.tmout_triage.virgin_crash.virgin.copy(),
        tmout_unique_crashes=campaign.tmout_triage.unique_crashes,
        shape_stats=replace(campaign.shape_stats),
        op_cycles=dict(campaign.op_cycles),
        coverage_curve=list(campaign.coverage_curve),
        next_sample=campaign._next_sample,
        coverage_state=coverage_state,
        telemetry_state=(campaign.telemetry.snapshot_state()
                         if campaign.telemetry is not None else None))


def restore_campaign(campaign, checkpoint: CampaignCheckpoint) -> None:
    """Reset ``campaign`` to ``checkpoint``'s state, in place.

    The campaign keeps its identity (config, model, executor,
    instrumentation — all immutable after start); only mutable fuzzing
    state reverts. Supervision counters (``restarts``,
    ``faults_injected``) survive, matching their meaning: they count
    events in the instance's whole lifetime, not since the last
    checkpoint.
    """
    if campaign.model is None:
        raise CheckpointError(
            "cannot restore a campaign before start()")
    coverage = campaign.coverage
    state = checkpoint.coverage_state
    if hasattr(coverage, "index"):
        if "index" not in state:
            raise CheckpointError(
                "checkpoint was taken from an AFL campaign")
        coverage.index[:] = state["index"]
        coverage.cov[:] = state["cov"]
        coverage.used_key = state["used_key"]
    else:
        if "trace" not in state:
            raise CheckpointError(
                "checkpoint was taken from a BigMap campaign")
        coverage.trace[:] = state["trace"]
        coverage._touched = [t.copy() for t in state["touched"]]

    campaign.clock.cycles = checkpoint.clock_cycles
    campaign.execs = checkpoint.execs
    campaign.hangs = checkpoint.hangs
    campaign.unique_hangs = checkpoint.unique_hangs
    campaign._next_seed_id = checkpoint.next_seed_id
    campaign.stopped_by = checkpoint.stopped_by
    campaign.cycle_multiplier = checkpoint.cycle_multiplier
    campaign.fault_multiplier = 1.0
    campaign.rng.bit_generator.state = copy.deepcopy(checkpoint.rng_state)
    campaign.pool.seeds = [_copy_seed(s) for s in checkpoint.seeds]
    campaign.pool._top_rated = dict(checkpoint.top_rated)
    campaign.pool._cull_pending = checkpoint.cull_pending
    campaign.scheduler._cursor = checkpoint.scheduler_cursor
    campaign.scheduler.queue_cycles = checkpoint.queue_cycles
    campaign.virgin.virgin[:] = checkpoint.virgin
    campaign.crashwalk.records = _copy_records(checkpoint.crash_records)
    campaign.afl_triage.virgin_crash.virgin[:] = checkpoint.afl_crash_virgin
    campaign.afl_triage.unique_crashes = checkpoint.afl_unique_crashes
    campaign.tmout_triage.virgin_crash.virgin[:] = checkpoint.tmout_virgin
    campaign.tmout_triage.unique_crashes = checkpoint.tmout_unique_crashes
    campaign.shape_stats = replace(checkpoint.shape_stats)
    campaign.op_cycles = dict(checkpoint.op_cycles)
    campaign.coverage_curve = list(checkpoint.coverage_curve)
    campaign._next_sample = checkpoint.next_sample
    if (campaign.telemetry is not None and
            checkpoint.telemetry_state is not None):
        campaign.telemetry.restore_state(checkpoint.telemetry_state)
