"""Crash deduplication: Crashwalk-style and AFL-style.

The paper measures unique crashes with Crashwalk [21] — a hash of the
faulting call stack and address — because AFL's built-in edge-novelty
dedup depends on the coverage map and is therefore "inherently biased
towards larger maps" (§V-A3). Both mechanisms are implemented so the
bias itself can be demonstrated; all reported crash counts use the
Crashwalk triager.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

import numpy as np

from ..core.compare import VirginMap
from ..target.crashes import CrashInfo


@dataclass
class CrashRecord:
    """First sighting of a deduplicated crash."""

    key: int
    site_id: int
    found_at: float
    n_seen: int = 1


class CrashwalkTriager:
    """Deduplicates by hash(call stack, faulting address).

    Map-size independent: two configurations that reach the same bug
    count it identically, which is what makes the paper's cross-map
    crash comparisons fair.
    """

    def __init__(self) -> None:
        self.records: Dict[int, CrashRecord] = {}

    def observe(self, crash: CrashInfo, virtual_time: float) -> bool:
        """Record a crash; returns True if it was new."""
        key = crash.crashwalk_key()
        record = self.records.get(key)
        if record is not None:
            record.n_seen += 1
            return False
        self.records[key] = CrashRecord(key=key, site_id=crash.site_id,
                                        found_at=virtual_time)
        return True

    @property
    def unique_crashes(self) -> int:
        return len(self.records)

    def merge_from(self, other: "CrashwalkTriager") -> int:
        """Absorb another instance's records (parallel sync).

        Returns the number of crashes newly learned.
        """
        new = 0
        for key, record in other.records.items():
            mine = self.records.get(key)
            if mine is None:
                self.records[key] = CrashRecord(
                    key=record.key, site_id=record.site_id,
                    found_at=record.found_at, n_seen=record.n_seen)
                new += 1
            else:
                mine.n_seen += record.n_seen
                mine.found_at = min(mine.found_at, record.found_at)
        return new

    def curve(self) -> List[tuple]:
        """(virtual_time, cumulative unique crashes), time-ordered."""
        times = sorted(r.found_at for r in self.records.values())
        return [(t, i + 1) for i, t in enumerate(times)]


class AflCrashTriager:
    """AFL's built-in dedup: a crash is unique if its trace clears new
    bits in a dedicated crash virgin map.

    Kept to demonstrate the map-size bias the paper avoids; the bigger
    the map, the fewer collisions in ``virgin_crash`` and the more
    crashes count as unique.
    """

    def __init__(self, map_size: int) -> None:
        self.virgin_crash = VirginMap(map_size)
        self.unique_crashes = 0

    def observe(self, classified_trace: np.ndarray,
                limit: int = None) -> bool:
        """Check a crashing test case's classified trace; True if new."""
        result = self.virgin_crash.merge(classified_trace, limit=limit)
        if result.interesting:
            self.unique_crashes += 1
            return True
        return False

    def observe_sparse(self, indices: np.ndarray,
                       values: np.ndarray) -> bool:
        """Sparse variant: trace given as (location, bucket) pairs."""
        result = self.virgin_crash.merge_sparse(indices, values)
        if result.interesting:
            self.unique_crashes += 1
            return True
        return False
