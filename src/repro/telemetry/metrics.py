"""Deterministic metrics: counters, gauges, fixed-bucket histograms.

The registry is the numeric half of the telemetry layer (events are the
other half, :mod:`repro.telemetry.events`). Its design constraint is
the repo's determinism invariant (statlint DET001/TEL001): a metric
snapshot must be a pure function of the observations fed into it —
no wall clocks, no entropy, no platform-dependent iteration order.
Concretely:

* histograms use **fixed bucket boundaries declared at creation**, so
  two runs of the same campaign produce identical bucket vectors (a
  dynamically rebucketing histogram would fold measurement history into
  the output);
* snapshots serialize metrics **sorted by name** and buckets in
  boundary order, so the rendered JSON is byte-stable;
* all state is plain Python numbers, making registry state trivially
  checkpointable (:meth:`MetricsRegistry.dump_state`) for the
  bit-identical campaign resume that :mod:`repro.fuzzer.checkpoint`
  guarantees.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.errors import TelemetryError

#: Metric names: dotted lowercase identifiers (``memsim.share.llc``).
_NAME = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")

#: Default histogram boundaries for share-of-total observations in
#: ``[0, 1]`` (memsim per-level cycle shares, map density).
SHARE_BUCKETS: Tuple[float, ...] = (
    0.01, 0.05, 0.10, 0.20, 0.40, 0.60, 0.80, 0.95)

Number = Union[int, float]


def _check_name(name: str) -> str:
    if not _NAME.match(name):
        raise TelemetryError(
            f"invalid metric name {name!r}; use dotted lowercase "
            f"identifiers like 'memsim.share.llc'")
    return name


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount

    def as_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}

    def dump_state(self) -> Number:
        return self.value

    def load_state(self, state: Number) -> None:
        self.value = state


class Gauge:
    """A value that can move in either direction (queue depth, density)."""

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def as_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}

    def dump_state(self) -> Number:
        return self.value

    def load_state(self, state: Number) -> None:
        self.value = state


class Histogram:
    """Fixed-boundary histogram (cumulative-free, one count per bucket).

    ``boundaries`` are the **upper** edges of the finite buckets; one
    overflow bucket catches everything above the last edge. Boundaries
    are fixed at creation and never adapt to the data — the determinism
    contract of the module docstring.
    """

    kind = "histogram"

    def __init__(self, name: str,
                 boundaries: Sequence[float] = SHARE_BUCKETS) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds:
            raise TelemetryError(
                f"histogram {name!r} needs at least one bucket boundary")
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise TelemetryError(
                f"histogram {name!r} boundaries must strictly increase, "
                f"got {bounds}")
        self.name = name
        self.boundaries = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.total = 0
        self.sum: float = 0.0

    def observe(self, value: Number) -> None:
        idx = len(self.boundaries)
        for i, bound in enumerate(self.boundaries):
            if value <= bound:
                idx = i
                break
        self.counts[idx] += 1
        self.total += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def as_dict(self) -> dict:
        return {"kind": self.kind,
                "boundaries": list(self.boundaries),
                "counts": list(self.counts),
                "total": self.total,
                "sum": self.sum}

    def dump_state(self) -> dict:
        return {"counts": list(self.counts), "total": self.total,
                "sum": self.sum}

    def load_state(self, state: dict) -> None:
        self.counts = list(state["counts"])
        self.total = state["total"]
        self.sum = state["sum"]


class MetricsRegistry:
    """Named metrics with get-or-create access and stable snapshots."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Union[Counter, Gauge, Histogram]] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def _get_or_create(self, name: str, kind: str, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory(_check_name(name))
            self._metrics[name] = metric
        elif metric.kind != kind:
            raise TelemetryError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested as {kind}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, "counter", Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, "gauge", Gauge)

    def histogram(self, name: str,
                  boundaries: Optional[Sequence[float]] = None
                  ) -> Histogram:
        metric = self._get_or_create(
            name, "histogram",
            lambda n: Histogram(n, boundaries or SHARE_BUCKETS))
        if (boundaries is not None and
                metric.boundaries != tuple(float(b) for b in boundaries)):
            raise TelemetryError(
                f"histogram {name!r} already registered with boundaries "
                f"{metric.boundaries}")
        return metric

    def snapshot(self) -> Dict[str, dict]:
        """Name-sorted, JSON-ready view of every metric."""
        return {name: self._metrics[name].as_dict()
                for name in sorted(self._metrics)}

    # -- checkpoint support -------------------------------------------

    def dump_state(self) -> Dict[str, object]:
        """Copyable value state (metric identities stay in place)."""
        return {name: self._metrics[name].dump_state()
                for name in sorted(self._metrics)}

    def load_state(self, state: Dict[str, object]) -> None:
        """Restore a ``dump_state`` capture.

        Metrics created after the capture are reset to zero rather than
        deleted — their identity (boundaries) is immutable config, their
        counts are rolled back like every other campaign counter.
        """
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if name in state:
                metric.load_state(state[name])
            elif isinstance(metric, Histogram):
                metric.load_state({"counts": [0] * len(metric.counts),
                                   "total": 0, "sum": 0.0})
            else:
                metric.load_state(0)
