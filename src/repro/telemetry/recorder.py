"""Recorder: the per-instance facade the rest of the stack talks to.

A :class:`TelemetryRecorder` bundles one metrics registry, one span
tracer, and the standard sink set (JSONL log, AFL artifact derivation,
ring buffer) behind a single ``emit()``/``flush()`` surface. A
:class:`Campaign` owns at most one recorder; a parallel session owns a
:class:`SessionTelemetry`, which hands each instance its own recorder
(so AFL artifacts land in per-instance directories, AFL-style) plus a
session-level recorder for supervisor events.

Checkpoint integration: ``snapshot_state()`` captures every sink, the
registry, and the tracer as plain values; ``restore_state()`` rolls
them back. The capture rides inside
:class:`repro.fuzzer.checkpoint.CampaignCheckpoint`, which is what lets
a resumed campaign continue its event series — and therefore its
rendered ``plot_data`` — byte-identically.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from .events import make_event
from .metrics import MetricsRegistry
from .sinks import AflStatsSink, JsonlEventLog, RingBufferSink
from .spans import SpanTracer

__all__ = ["TelemetryRecorder", "SessionTelemetry"]

#: File name for the metrics/span profile artifact.
METRICS_FILENAME = "metrics.json"


class TelemetryRecorder:
    """One instance's metrics, spans, and event sinks."""

    def __init__(self, instance: int = -1, ring_size: int = 256) -> None:
        self.instance = instance
        self.registry = MetricsRegistry()
        self.tracer = SpanTracer()
        self.log = JsonlEventLog()
        self.afl = AflStatsSink()
        self.ring = RingBufferSink(ring_size)
        self._sinks = (self.log, self.afl, self.ring)

    # -- producing -----------------------------------------------------

    def bind_clock(self, cycles_fn) -> None:
        """Point span measurement at a virtual-cycle counter."""
        self.tracer.bind(cycles_fn)

    def emit(self, kind: str, t: float,
             instance: Optional[int] = None, **payload) -> dict:
        """Validate and fan one event out to every sink."""
        event = make_event(
            kind, t,
            instance=self.instance if instance is None else instance,
            **payload)
        for sink in self._sinks:
            sink.emit(event)
        return event

    @property
    def events(self) -> List[dict]:
        return self.log.events

    # -- checkpoint support -------------------------------------------

    def snapshot_state(self) -> Dict[str, object]:
        return {
            "log": self.log.dump_state(),
            "afl": self.afl.dump_state(),
            "ring": self.ring.dump_state(),
            "registry": self.registry.dump_state(),
            "tracer": self.tracer.dump_state(),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        self.log.load_state(state["log"])
        self.afl.load_state(state["afl"])
        self.ring.load_state(state["ring"])
        self.registry.load_state(state["registry"])
        self.tracer.load_state(state["tracer"])

    # -- rendering -----------------------------------------------------

    def artifacts(self) -> Dict[str, str]:
        """All file artifacts (name -> content) for this instance."""
        out: Dict[str, str] = {}
        for sink in self._sinks:
            out.update(sink.artifacts())
        profile = {"metrics": self.registry.snapshot(),
                   "spans": self.tracer.profile()}
        out[METRICS_FILENAME] = json.dumps(
            profile, sort_keys=True, indent=2) + "\n"
        return out

    def flush(self, directory: str) -> List[str]:
        """Write every artifact under ``directory``; return paths."""
        os.makedirs(directory, exist_ok=True)
        written = []
        artifacts = self.artifacts()
        for name in sorted(artifacts):
            path = os.path.join(directory, name)
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(artifacts[name])
            written.append(path)
        return written


def instance_dirname(instance: int) -> str:
    """Directory name for one parallel instance's artifacts."""
    return f"instance-{instance:03d}"


class SessionTelemetry:
    """Recorder fan-out for a parallel session.

    ``session`` collects supervisor-level events (faults, restarts,
    stalls, quarantines, sync costs); ``for_instance(i)`` lazily
    creates the per-instance recorder each campaign threads through its
    hot path. ``flush(root)`` lays the tree out AFL-style::

        root/
          events.jsonl        # session events
          metrics.json
          instance-000/
            events.jsonl fuzzer_stats plot_data metrics.json
          instance-001/
            ...
    """

    def __init__(self, ring_size: int = 256) -> None:
        self.ring_size = ring_size
        self.session = TelemetryRecorder(instance=-1, ring_size=ring_size)
        self._instances: Dict[int, TelemetryRecorder] = {}

    def for_instance(self, instance: int) -> TelemetryRecorder:
        recorder = self._instances.get(instance)
        if recorder is None:
            recorder = TelemetryRecorder(
                instance=instance, ring_size=self.ring_size)
            self._instances[instance] = recorder
        return recorder

    @property
    def instances(self) -> List[int]:
        return sorted(self._instances)

    def snapshot_state(self) -> Dict[str, object]:
        return {
            "session": self.session.snapshot_state(),
            "instances": {i: self._instances[i].snapshot_state()
                          for i in sorted(self._instances)},
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        self.session.restore_state(state["session"])
        for i, sub in state["instances"].items():
            self.for_instance(int(i)).restore_state(sub)

    def flush(self, root: str) -> List[str]:
        written = self.session.flush(root)
        for i in sorted(self._instances):
            written.extend(self._instances[i].flush(
                os.path.join(root, instance_dirname(i))))
        return written
