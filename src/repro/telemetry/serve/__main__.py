"""``python -m repro.telemetry.serve`` — the live dashboard server."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
