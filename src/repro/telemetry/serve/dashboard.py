"""The single-file HTML/JS live dashboard served at ``/``.

No build step, no bundler, no external assets: the page below is the
entire frontend. It opens ``/ws/live``, installs the snapshot, then
applies deltas with a JS mirror of
:meth:`repro.telemetry.serve.aggregator.TelemetryAggregator.apply_delta`
— the same replay contract the Python tests pin — and re-renders
SVG charts from the replayed state. Chart styling follows the repo's
dataviz conventions: series colors are assigned by fixed order (blue,
orange, aqua), one y-axis per chart, 2px lines, a legend whenever two
or more series share a plot, text in text tokens rather than series
colors, and light/dark palettes selected via ``prefers-color-scheme``.
"""

from __future__ import annotations

__all__ = ["DASHBOARD_HTML"]

DASHBOARD_HTML = """<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>repro-fuzz live telemetry</title>
<style>
:root {
  --surface: #fcfcfb; --panel: #f4f3f0;
  --ink: #0b0b0b; --ink-2: #52514e; --grid: #dcdbd6;
  --s1: #2a78d6; --s2: #eb6834; --s3: #1baf7a;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --panel: #242422;
    --ink: #ffffff; --ink-2: #c3c2b7; --grid: #3a3936;
    --s1: #3987e5; --s2: #d95926; --s3: #199e70;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; background: var(--surface); color: var(--ink);
  font: 14px/1.45 system-ui, sans-serif; padding: 16px;
}
h1 { font-size: 18px; margin: 0 0 4px; }
h2 { font-size: 14px; margin: 0 0 8px; color: var(--ink); }
.sub { color: var(--ink-2); margin-bottom: 16px; }
.grid { display: grid; gap: 16px;
        grid-template-columns: repeat(auto-fit, minmax(340px, 1fr)); }
.card { background: var(--panel); border-radius: 8px; padding: 12px; }
.legend { display: flex; gap: 16px; margin-top: 6px;
          color: var(--ink-2); font-size: 12px; }
.legend span::before {
  content: ""; display: inline-block; width: 10px; height: 10px;
  border-radius: 3px; margin-right: 5px; background: var(--c);
}
select {
  background: var(--panel); color: var(--ink);
  border: 1px solid var(--grid); border-radius: 6px;
  padding: 4px 8px; font: inherit; margin-bottom: 16px;
}
svg text { fill: var(--ink-2); font-size: 11px; }
svg .axis { stroke: var(--grid); stroke-width: 1; }
table { border-collapse: collapse; width: 100%; font-size: 12px; }
th, td { text-align: left; padding: 3px 8px 3px 0;
         border-bottom: 1px solid var(--grid); }
th { color: var(--ink-2); font-weight: 500; }
.num { font-variant-numeric: tabular-nums; }
#status { font-size: 12px; color: var(--ink-2); }
.bar { height: 14px; border-radius: 4px; background: var(--s1); }
</style>
</head>
<body>
<h1>repro-fuzz live telemetry</h1>
<div class="sub"><span id="status">connecting&hellip;</span></div>
<label>campaign
  <select id="campaign"></select>
</label>
<div class="grid">
  <div class="card"><h2>Coverage (edges)</h2>
    <svg id="coverage" viewBox="0 0 320 160"></svg></div>
  <div class="card"><h2>Throughput (execs/sec)</h2>
    <svg id="throughput" viewBox="0 0 320 160"></svg></div>
  <div class="card"><h2>Crashes &amp; hangs</h2>
    <svg id="crashes" viewBox="0 0 320 160"></svg>
    <div class="legend">
      <span style="--c: var(--s1)">crashes</span>
      <span style="--c: var(--s2)">hangs</span>
    </div></div>
  <div class="card"><h2>Memsim cycle share by level</h2>
    <div id="levels"></div></div>
  <div class="card"><h2>Fleet trials</h2><div id="fleet"></div></div>
  <div class="card"><h2>Event timeline</h2><div id="timeline"></div></div>
</div>
<script>
"use strict";
let state = {seq: 0, campaigns: {}};
let selected = null;

// Mirror of TelemetryAggregator.apply_delta (the tested contract).
function applyDelta(snapshot, delta) {
  const cs = snapshot.campaigns;
  if (!(delta.campaign in cs)) {
    cs[delta.campaign] = {id: delta.campaign, meta: {}, final: {},
      levels: {}, series: {coverage: [], throughput: [], execs: [],
      density: [], crashes: [], timeline: [], fleet: []}};
  }
  const target = cs[delta.campaign];
  if (delta.op === "append") {
    target.series[delta.series].push(delta.row.slice());
  } else if (delta.op === "set") {
    target[delta.key] = delta.value;
  }
  snapshot.seq = delta.seq;
}

function fmt(x) {
  return (typeof x === "number" && !Number.isInteger(x))
    ? x.toFixed(1) : String(x);
}

function linePath(rows, xi, yi, xmax, ymax, w, h) {
  return rows.map((r, i) =>
    (i ? "L" : "M") +
    (8 + (r[xi] / (xmax || 1)) * (w - 16)).toFixed(1) + "," +
    (h - 14 - (r[yi] / (ymax || 1)) * (h - 28)).toFixed(1)
  ).join(" ");
}

function drawLines(svgId, rows, cols, colors) {
  const svg = document.getElementById(svgId);
  const w = 320, h = 160;
  if (!rows.length) { svg.innerHTML =
    "<text x='12' y='24'>no samples yet</text>"; return; }
  const xmax = rows[rows.length - 1][0];
  let ymax = 0;
  for (const r of rows) for (const c of cols)
    if (r[c] > ymax) ymax = r[c];
  let out = "<line class='axis' x1='8' y1='" + (h - 14) +
    "' x2='" + (w - 8) + "' y2='" + (h - 14) + "'/>";
  cols.forEach((c, k) => {
    out += "<path d='" + linePath(rows, 0, c, xmax, ymax, w, h) +
      "' fill='none' stroke='" + colors[k] +
      "' stroke-width='2' stroke-linejoin='round'/>";
  });
  const last = rows[rows.length - 1];
  out += "<text x='8' y='12'>" + fmt(ymax) + "</text>";
  out += "<text x='" + (w - 8) + "' y='" + (h - 2) +
    "' text-anchor='end'>t=" + fmt(last[0]) + "s</text>";
  svg.innerHTML = out;
}

function render() {
  const ids = Object.keys(state.campaigns).sort();
  const sel = document.getElementById("campaign");
  if (sel.options.length !== ids.length) {
    const keep = selected;
    sel.innerHTML = "";
    for (const id of ids) {
      const opt = document.createElement("option");
      opt.value = opt.textContent = id;
      sel.appendChild(opt);
    }
    if (keep && ids.includes(keep)) sel.value = keep;
  }
  selected = sel.value || ids[0] || null;
  const cs = selected ? state.campaigns[selected] : null;
  const css = getComputedStyle(document.documentElement);
  const s1 = css.getPropertyValue("--s1").trim();
  const s2 = css.getPropertyValue("--s2").trim();
  if (!cs) return;
  drawLines("coverage", cs.series.coverage, [1], [s1]);
  drawLines("throughput", cs.series.throughput, [1], [s2]);
  drawLines("crashes", cs.series.crashes, [1, 2], [s1, s2]);

  const levels = Object.keys(cs.levels).sort();
  document.getElementById("levels").innerHTML = levels.length
    ? "<table>" + levels.map(l => {
        const pct = (cs.levels[l] * 100);
        return "<tr><th>" + l + "</th><td class='num'>" +
          pct.toFixed(1) + "%</td><td style='width:55%'>" +
          "<div class='bar' style='width:" +
          Math.min(100, pct).toFixed(1) + "%'></div></td></tr>";
      }).join("") + "</table>"
    : "<span id='status'>no metrics.json yet</span>";

  const fleet = cs.series.fleet;
  const names = ["dispatched", "done", "failed", "retried",
                 "measurements"];
  document.getElementById("fleet").innerHTML = fleet.length
    ? "<table><tr>" + names.map(n => "<th>" + n + "</th>").join("") +
      "</tr><tr>" + fleet[fleet.length - 1].slice(1).map(v =>
      "<td class='num'>" + v + "</td>").join("") + "</tr></table>"
    : "<span id='status'>no fleet events</span>";

  const tl = cs.series.timeline.slice(-12).reverse();
  document.getElementById("timeline").innerHTML = tl.length
    ? "<table>" + tl.map(r =>
        "<tr><td class='num'>" + fmt(r[0]) + "s</td><td>" + r[1] +
        "</td><td>#" + r[2] + "</td><td>" +
        JSON.stringify(r[3]) + "</td></tr>").join("") + "</table>"
    : "<span id='status'>no events</span>";
}

document.getElementById("campaign")
  .addEventListener("change", render);

function connect() {
  const ws = new WebSocket(
    (location.protocol === "https:" ? "wss://" : "ws://") +
    location.host + "/ws/live");
  const status = document.getElementById("status");
  ws.onmessage = (msg) => {
    const frame = JSON.parse(msg.data);
    if (frame.type === "snapshot") state = frame.snapshot;
    else if (frame.type === "delta") applyDelta(state, frame.delta);
    status.textContent = "live \\u00b7 seq " + state.seq;
    render();
  };
  ws.onclose = () => {
    status.textContent = "disconnected \\u2014 retrying";
    setTimeout(connect, 2000);
  };
}
connect();
</script>
</body>
</html>
"""
