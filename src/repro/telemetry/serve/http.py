"""Asyncio HTTP/1.1 + RFC 6455 websocket server over the aggregator.

Stdlib-only by design (ROADMAP: no new runtime deps): a small
hand-rolled HTTP request parser over :mod:`asyncio` streams, plus the
minimal server side of RFC 6455 — handshake, unmasking, text frames,
ping/pong/close. One port serves four surfaces:

* ``/`` — the single-file HTML/JS dashboard (:mod:`.dashboard`);
* ``/api/campaigns`` and ``/api/campaigns/{id}/series`` — REST reads
  of the aggregator, rendered with :func:`.aggregator.canonical_json`
  so the bytes are a pure function of the ingested events (the
  live-vs-post-hoc parity tests compare these bytes directly);
* ``/api/fleet/{store}/trials`` and ``/api/fleet/{store}/stats`` —
  read-only (``mode="ro"``) views of registered fleet results stores,
  the stats straight from :func:`repro.fleet.report.group_stats`;
* ``/ws/live`` — websocket: one snapshot frame, then delta frames as
  campaigns progress (the replay protocol of
  :meth:`.aggregator.TelemetryAggregator.apply_delta`).

Every request handler and the background poll task funnel through
:meth:`TelemetryServer.pump`, the single place the filesystem is read
and websocket clients are fed — so a REST response is never staler
than the request that asked for it, and deltas reach every client in
seq order exactly once.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
from typing import Dict, List, Optional, Tuple
from urllib.parse import unquote

from ...core.errors import TelemetryError
from .aggregator import AggregatorService, canonical_json

__all__ = ["TelemetryServer", "WS_GUID", "parse_ws_text_frames"]

#: RFC 6455 §1.3 handshake GUID.
WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

_MAX_REQUEST_LINE = 8192
_MAX_HEADERS = 100

# Websocket opcodes (RFC 6455 §5.2).
_OP_TEXT = 0x1
_OP_CLOSE = 0x8
_OP_PING = 0x9
_OP_PONG = 0xA


def _accept_key(key: str) -> str:
    """Sec-WebSocket-Accept for a client's Sec-WebSocket-Key."""
    digest = hashlib.sha1((key + WS_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def _encode_text_frame(payload: bytes) -> bytes:
    """One unmasked FIN text frame (server→client is never masked)."""
    head = bytearray([0x80 | _OP_TEXT])
    n = len(payload)
    if n < 126:
        head.append(n)
    elif n < 1 << 16:
        head.append(126)
        head += n.to_bytes(2, "big")
    else:
        head.append(127)
        head += n.to_bytes(8, "big")
    return bytes(head) + payload


async def _read_frame(reader: asyncio.StreamReader
                      ) -> Tuple[int, bytes]:
    """(opcode, payload) of one client frame, unmasked."""
    head = await reader.readexactly(2)
    opcode = head[0] & 0x0F
    masked = bool(head[1] & 0x80)
    n = head[1] & 0x7F
    if n == 126:
        n = int.from_bytes(await reader.readexactly(2), "big")
    elif n == 127:
        n = int.from_bytes(await reader.readexactly(8), "big")
    mask = await reader.readexactly(4) if masked else b""
    payload = await reader.readexactly(n) if n else b""
    if masked:
        payload = bytes(b ^ mask[i % 4]
                        for i, b in enumerate(payload))
    return opcode, payload


class _HttpRequest:
    def __init__(self, method: str, path: str,
                 headers: Dict[str, str]) -> None:
        self.method = method
        self.path = path
        self.headers = headers


async def _read_request(reader: asyncio.StreamReader
                        ) -> Optional[_HttpRequest]:
    line = await reader.readline()
    if not line or len(line) > _MAX_REQUEST_LINE:
        return None
    parts = line.decode("latin-1").split()
    if len(parts) != 3:
        return None
    method, target = parts[0], parts[1]
    headers: Dict[str, str] = {}
    for _ in range(_MAX_HEADERS):
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    return _HttpRequest(method, target.split("?", 1)[0], headers)


class TelemetryServer:
    """The live telemetry service (see module docstring).

    Args:
        service: the :class:`.aggregator.AggregatorService` to serve
            (or a telemetry root string, wrapped automatically).
        stores: ``name -> sqlite path`` of fleet results stores to
            expose read-only under ``/api/fleet/{name}/...``.
        host/port: bind address; ``port=0`` picks a free port, read
            the bound one from :attr:`port` after :meth:`start`.
        poll_interval: seconds between background filesystem polls
            feeding the websocket (REST reads poll inline regardless).
        stats_seed: bootstrap seed for ``/api/fleet/{name}/stats`` —
            same default as :func:`repro.fleet.report.render_report`,
            so the two agree byte-for-byte.
        html: dashboard page override; defaults to
            :data:`.dashboard.DASHBOARD_HTML`.
    """

    def __init__(self, service, *, stores: Optional[Dict[str, str]] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 poll_interval: float = 0.5, stats_seed: int = 0,
                 html: Optional[str] = None) -> None:
        if isinstance(service, str):
            service = AggregatorService(service)
        self.service = service
        self.stores = dict(stores or {})
        self.host = host
        self.port = port
        self.poll_interval = poll_interval
        self.stats_seed = stats_seed
        self._html = html
        self._server: Optional[asyncio.AbstractServer] = None
        self._poll_task: Optional[asyncio.Task] = None
        self._clients: List[asyncio.Queue] = []

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._poll_task = asyncio.ensure_future(self._poll_loop())

    async def stop(self) -> None:
        if self._poll_task is not None:
            self._poll_task.cancel()
            try:
                await self._poll_task
            except asyncio.CancelledError:
                pass
            self._poll_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    # -- polling / broadcast -------------------------------------------

    def pump(self) -> List[dict]:
        """Poll the filesystem once; fan new deltas out to every
        websocket client. The only ingestion entry point, called both
        by the background loop and inline by REST handlers, so the
        event loop's single thread is the serialization point."""
        deltas = self.service.poll()
        if deltas:
            for queue in list(self._clients):
                for delta in deltas:
                    queue.put_nowait(delta)
        return deltas

    async def _poll_loop(self) -> None:
        while True:
            self.pump()
            await asyncio.sleep(self.poll_interval)

    # -- request handling ----------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request = await _read_request(reader)
            if request is None:
                return
            if (request.path == "/ws/live" and
                    "websocket" in
                    request.headers.get("upgrade", "").lower()):
                await self._handle_websocket(request, reader, writer)
                return
            status, ctype, body = self._respond(request)
            writer.write(
                (f"HTTP/1.1 {status}\r\n"
                 f"Content-Type: {ctype}\r\n"
                 f"Content-Length: {len(body)}\r\n"
                 f"Cache-Control: no-store\r\n"
                 f"Connection: close\r\n\r\n").encode("ascii"))
            writer.write(body)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()

    def _respond(self, request: _HttpRequest
                 ) -> Tuple[str, str, bytes]:
        if request.method not in ("GET", "HEAD"):
            return self._json_error("405 Method Not Allowed",
                                    "method not allowed")
        try:
            return self._route(request.path)
        except TelemetryError as exc:
            return self._json_error("500 Internal Server Error",
                                    str(exc))

    @staticmethod
    def _json_error(status: str, message: str
                    ) -> Tuple[str, str, bytes]:
        body = canonical_json({"error": message}).encode("utf-8")
        return status, "application/json", body

    @staticmethod
    def _json_ok(payload_bytes: bytes) -> Tuple[str, str, bytes]:
        return "200 OK", "application/json", payload_bytes

    def _route(self, path: str) -> Tuple[str, str, bytes]:
        if path == "/":
            return "200 OK", "text/html; charset=utf-8", \
                self.dashboard_html().encode("utf-8")
        if path == "/api/campaigns":
            self.pump()
            return self._json_ok(self.campaigns_body())
        if (path.startswith("/api/campaigns/") and
                path.endswith("/series")):
            cid = unquote(
                path[len("/api/campaigns/"):-len("/series")])
            self.pump()
            body = self.series_body(cid)
            if body is None:
                return self._json_error(
                    "404 Not Found", f"unknown campaign {cid!r}")
            return self._json_ok(body)
        if path.startswith("/api/fleet/"):
            rest = path[len("/api/fleet/"):]
            name, _, view = rest.rpartition("/")
            if name and view in ("trials", "stats"):
                return self._fleet_view(unquote(name), view)
        return self._json_error("404 Not Found",
                                f"no route for {path!r}")

    def dashboard_html(self) -> str:
        if self._html is not None:
            return self._html
        from .dashboard import DASHBOARD_HTML
        return DASHBOARD_HTML

    # -- REST bodies (bytes are the parity-tested surface) -------------

    def campaigns_body(self) -> bytes:
        agg = self.service.aggregator
        listing = []
        for cid in agg.campaigns:
            series = agg.campaign(cid)
            listing.append({
                "id": cid,
                "meta": dict(series.meta),
                "final": dict(series.final),
                "events": sum(len(series.series[name])
                              for name in sorted(series.series)),
            })
        payload = {"seq": agg.seq, "campaigns": listing,
                   "stores": sorted(self.stores)}
        return canonical_json(payload).encode("utf-8")

    def series_body(self, campaign_id: str) -> Optional[bytes]:
        series = self.service.aggregator.campaign(campaign_id)
        if series is None:
            return None
        return canonical_json(series.as_dict()).encode("utf-8")

    def _fleet_view(self, name: str, view: str
                    ) -> Tuple[str, str, bytes]:
        path = self.stores.get(name)
        if path is None:
            return self._json_error("404 Not Found",
                                    f"unknown store {name!r}")
        import sqlite3

        from ...fleet.store import ResultsStore
        try:
            store = ResultsStore(path, mode=ResultsStore.RO)
        except (sqlite3.Error, OSError, ValueError) as exc:
            # Store not created yet / unreadable: a retryable 503,
            # not a server fault.
            return self._json_error("503 Service Unavailable",
                                    f"store {name!r}: {exc}")
        try:
            if view == "trials":
                body = self.trials_body(name, store)
            else:
                body = self.stats_body(name, store)
        finally:
            store.close()
        return self._json_ok(body)

    @staticmethod
    def trials_body(name: str, store) -> bytes:
        rows = [{key: row[key] for key in sorted(row.keys())}
                for row in store.trial_rows()]
        payload = {"store": name, "trials": rows,
                   "states": store.state_counts(),
                   "lost": store.lost_trials()}
        return canonical_json(payload).encode("utf-8")

    def stats_body(self, name: str, store) -> bytes:
        from ...fleet.report import REPORT_METRICS, group_stats
        payload = {"store": name, "seed": self.stats_seed,
                   "metrics": list(REPORT_METRICS),
                   "groups": group_stats(store,
                                         seed=self.stats_seed)}
        return canonical_json(payload).encode("utf-8")

    # -- websocket -----------------------------------------------------

    async def _handle_websocket(self, request: _HttpRequest,
                                reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        key = request.headers.get("sec-websocket-key")
        if not key:
            writer.write(b"HTTP/1.1 400 Bad Request\r\n"
                         b"Connection: close\r\n\r\n")
            await writer.drain()
            return
        writer.write(
            ("HTTP/1.1 101 Switching Protocols\r\n"
             "Upgrade: websocket\r\n"
             "Connection: Upgrade\r\n"
             f"Sec-WebSocket-Accept: {_accept_key(key)}\r\n\r\n"
             ).encode("ascii"))
        await writer.drain()

        # Register BEFORE snapshotting so no delta can fall in the gap
        # between the snapshot frame and the first queued delta; the
        # pump below drains pending filesystem state into the snapshot
        # itself, and queue entries at or below the snapshot seq are
        # dropped on send.
        queue: asyncio.Queue = asyncio.Queue()
        self._clients.append(queue)
        try:
            self.pump()
            snapshot = self.service.aggregator.snapshot()
            seq = snapshot["seq"]
            frame = canonical_json(
                {"type": "snapshot", "snapshot": snapshot})
            writer.write(_encode_text_frame(frame.encode("utf-8")))
            await writer.drain()
            reader_task = asyncio.ensure_future(
                self._ws_reader(reader, writer))
            try:
                while not reader_task.done():
                    getter = asyncio.ensure_future(queue.get())
                    done, _ = await asyncio.wait(
                        {getter, reader_task},
                        return_when=asyncio.FIRST_COMPLETED)
                    if getter not in done:
                        getter.cancel()
                        break
                    delta = getter.result()
                    if delta["seq"] <= seq:
                        continue
                    seq = delta["seq"]
                    frame = canonical_json(
                        {"type": "delta", "delta": delta})
                    writer.write(
                        _encode_text_frame(frame.encode("utf-8")))
                    await writer.drain()
            finally:
                reader_task.cancel()
                try:
                    await reader_task
                except (asyncio.CancelledError, ConnectionError,
                        EOFError):
                    pass
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._clients.remove(queue)

    @staticmethod
    async def _ws_reader(reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
        """Drain client frames until close/EOF; answer pings."""
        while True:
            opcode, payload = await _read_frame(reader)
            if opcode == _OP_CLOSE:
                writer.write(bytes([0x80 | _OP_CLOSE, 0]))
                await writer.drain()
                return
            if opcode == _OP_PING:
                frame = bytearray([0x80 | _OP_PONG, len(payload)])
                writer.write(bytes(frame) + payload)
                await writer.drain()


def parse_ws_text_frames(data: bytes) -> List[str]:
    """Decode unmasked server→client text frames from a byte stream.

    Test/CI helper mirroring :func:`_encode_text_frame`; raises
    :class:`TelemetryError` on a truncated or non-text frame so smoke
    checks fail loudly.
    """
    frames: List[str] = []
    offset = 0
    while offset < len(data):
        if offset + 2 > len(data):
            raise TelemetryError("truncated websocket frame header")
        opcode = data[offset] & 0x0F
        n = data[offset + 1] & 0x7F
        offset += 2
        if n == 126:
            n = int.from_bytes(data[offset:offset + 2], "big")
            offset += 2
        elif n == 127:
            n = int.from_bytes(data[offset:offset + 8], "big")
            offset += 8
        if opcode != _OP_TEXT:
            raise TelemetryError(
                f"expected text frame, got opcode {opcode:#x}")
        if offset + n > len(data):
            raise TelemetryError("truncated websocket frame payload")
        frames.append(data[offset:offset + n].decode("utf-8"))
        offset += n
    return frames
