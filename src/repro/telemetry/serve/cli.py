"""CLI entry points for the live service and the static report.

Wired from the top-level driver::

    repro-fuzz serve /tmp/telemetry --store fleet=results.sqlite
    repro-fuzz report --store a=run_a.sqlite --store b=run_b.sqlite \\
        --out compare.html

``serve`` blocks in the asyncio loop until interrupted; ``report``
writes one self-contained HTML file and exits. Both accept stores as
``NAME=PATH`` (bare ``PATH`` names the store after the file stem) and
open them strictly read-only.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
from typing import Dict, List, Optional


def parse_store_specs(specs: List[str]) -> Dict[str, str]:
    """``NAME=PATH`` / bare ``PATH`` specs into a name->path map."""
    stores: Dict[str, str] = {}
    for spec in specs:
        name, sep, path = spec.partition("=")
        if not sep:
            path = spec
            name = os.path.splitext(os.path.basename(spec))[0]
        if not name or not path:
            raise argparse.ArgumentTypeError(
                f"bad store spec {spec!r}; expected NAME=PATH")
        stores[name] = path
    return stores


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fuzz serve",
        description="Serve a live telemetry dashboard (HTTP + "
                    "websocket) over a telemetry directory and "
                    "optional fleet results stores.")
    parser.add_argument("root", help="telemetry root directory "
                                     "(the --telemetry-dir of a "
                                     "running campaign)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8722,
                        help="listen port; 0 picks a free one "
                             "(default 8722)")
    parser.add_argument("--store", action="append", default=[],
                        metavar="NAME=PATH",
                        help="expose a fleet results store read-only "
                             "under /api/fleet/NAME/ (repeatable)")
    parser.add_argument("--poll-interval", type=float, default=0.5,
                        help="seconds between filesystem polls "
                             "(default 0.5)")
    parser.add_argument("--stats-seed", type=int, default=0,
                        help="bootstrap seed for /api/fleet/*/stats "
                             "(default 0, matching the text report)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_serve_parser().parse_args(argv)
    from .http import TelemetryServer
    server = TelemetryServer(
        args.root, stores=parse_store_specs(args.store),
        host=args.host, port=args.port,
        poll_interval=args.poll_interval,
        stats_seed=args.stats_seed)

    async def run() -> None:
        await server.start()
        print(f"serving telemetry from {args.root} at "
              f"http://{args.host}:{server.port}/ "
              f"(Ctrl-C to stop)", flush=True)
        for name in sorted(server.stores):
            print(f"  fleet store {name}: "
                  f"/api/fleet/{name}/trials, /api/fleet/{name}/stats",
                  flush=True)
        await server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("stopped")
    return 0


def build_report_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fuzz report",
        description="Render a static HTML comparison report from "
                    "fleet results stores (coverage medians with "
                    "bootstrap CI bands, Mann-Whitney/A12 tables).")
    parser.add_argument("--store", action="append", default=[],
                        metavar="NAME=PATH", required=True,
                        help="results store to include (repeatable)")
    parser.add_argument("--out", required=True, metavar="PATH",
                        help="output HTML path")
    parser.add_argument("--seed", type=int, default=0,
                        help="bootstrap seed (default 0)")
    parser.add_argument("--title",
                        default="repro-fuzz comparison report")
    return parser


def report_main(argv: Optional[List[str]] = None) -> int:
    args = build_report_parser().parse_args(argv)
    from .reportgen import generate_report
    generate_report(parse_store_specs(args.store), args.out,
                    seed=args.seed, title=args.title)
    print(f"report written: {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
