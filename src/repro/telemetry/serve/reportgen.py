"""Static HTML comparison reports over fleet results stores.

``repro-fuzz report`` renders one self-contained HTML page from one or
more fleet results stores (opened read-only, so a live dispatcher is
never disturbed): per (benchmark, map-size) group a
coverage-over-time chart — the per-fuzzer **median** step curve over
trials with a seeded **bootstrap CI band** — plus the Mann-Whitney /
Vargha-Delaney significance tables. Every number in the tables comes
from :func:`repro.fleet.report.group_stats`, the same computation the
text report renders, so the two artifacts can never disagree; the
parity test pins this.

Charts follow the repo's dataviz conventions: fixed series color
order (blue, orange, aqua — never cycled; a fourth-plus fuzzer falls
back to the tables, which carry every fuzzer), one y-axis, 2px lines
with translucent CI bands, a legend whenever two or more series share
a plot, light/dark palettes via ``prefers-color-scheme``, and text in
text tokens rather than series colors. Rendering is deterministic:
groups, fuzzers, and grid times iterate sorted, and the only
randomness is the seeded bootstrap resampler.
"""

from __future__ import annotations

import html
from typing import Dict, List, Sequence, Tuple

from ...fleet.report import (ALPHA, REPORT_METRICS, _median, group_stats)
from ...fleet.store import DONE, ResultsStore

__all__ = ["generate_report", "render_html_report",
           "coverage_band", "MAX_CHART_SERIES"]

#: Series slots with validated light/dark steps (dataviz palette);
#: fuzzers beyond this count appear in the tables only.
MAX_CHART_SERIES = 3

_CHART_W, _CHART_H = 560, 240
_PAD_L, _PAD_R, _PAD_T, _PAD_B = 46, 10, 10, 24

_CSS = """
:root {
  --surface: #fcfcfb; --panel: #f4f3f0;
  --ink: #0b0b0b; --ink-2: #52514e; --grid: #dcdbd6;
  --s1: #2a78d6; --s2: #eb6834; --s3: #1baf7a;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --panel: #242422;
    --ink: #ffffff; --ink-2: #c3c2b7; --grid: #3a3936;
    --s1: #3987e5; --s2: #d95926; --s3: #199e70;
  }
}
body { margin: 0 auto; max-width: 980px; padding: 24px;
       background: var(--surface); color: var(--ink);
       font: 14px/1.5 system-ui, sans-serif; }
h1 { font-size: 20px; } h2 { font-size: 16px; margin-top: 32px; }
h3 { font-size: 14px; color: var(--ink-2); font-weight: 500; }
.card { background: var(--panel); border-radius: 8px;
        padding: 16px; margin: 12px 0; }
.legend { display: flex; gap: 16px; color: var(--ink-2);
          font-size: 12px; margin-top: 4px; }
.legend span::before { content: ""; display: inline-block;
  width: 10px; height: 10px; border-radius: 3px;
  margin-right: 5px; background: var(--c); }
svg text { fill: var(--ink-2); font-size: 11px; }
svg .axis { stroke: var(--grid); stroke-width: 1; }
table { border-collapse: collapse; width: 100%; font-size: 13px; }
th, td { text-align: left; padding: 4px 10px 4px 0;
         border-bottom: 1px solid var(--grid); }
th { color: var(--ink-2); font-weight: 500; }
.num { font-variant-numeric: tabular-nums; }
.sig { font-weight: 600; }
.note { color: var(--ink-2); font-size: 12px; }
"""

_SERIES_VARS = ("var(--s1)", "var(--s2)", "var(--s3)")


def _step_value(curve: Sequence[Tuple[float, float]],
                t: float) -> float:
    """Step-function read of a coverage curve at time ``t``."""
    value = 0.0
    for point_t, edges in curve:
        if point_t > t:
            break
        value = float(edges)
    return value


def coverage_band(curves: Sequence[Sequence[Tuple[float, float]]],
                  seed: int = 0) -> List[Tuple[float, float, float,
                                               float]]:
    """``(t, median, ci_lo, ci_hi)`` rows over the union time grid.

    The band is a seeded bootstrap CI of the median across trials of
    each curve evaluated as a step function — the coverage-over-time
    analogue of the scalar CIs in :mod:`repro.fleet.stats`.
    """
    from ...fleet.stats import bootstrap_ci
    usable = [sorted((float(t), float(v)) for t, v in curve)
              for curve in curves if curve]
    if not usable:
        return []
    grid = sorted(set(t for curve in usable for t, _ in curve))
    rows: List[Tuple[float, float, float, float]] = []
    for t in grid:
        values = [_step_value(curve, t) for curve in usable]
        lo, hi = bootstrap_ci(values, seed=seed)
        rows.append((t, _median(values), lo, hi))
    return rows


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e9:
        return f"{int(value):,}"
    return f"{value:,.1f}"


def _scale(rows_by_fuzzer: Dict[str, list]) -> Tuple[float, float]:
    tmax = ymax = 0.0
    for fuzzer in sorted(rows_by_fuzzer):
        for t, _median_v, _lo, hi in rows_by_fuzzer[fuzzer]:
            tmax = max(tmax, t)
            ymax = max(ymax, hi)
    return (tmax or 1.0), (ymax or 1.0)


def _xy(t: float, v: float, tmax: float, ymax: float) -> str:
    x = _PAD_L + (t / tmax) * (_CHART_W - _PAD_L - _PAD_R)
    y = (_CHART_H - _PAD_B -
         (v / ymax) * (_CHART_H - _PAD_T - _PAD_B))
    return f"{x:.1f},{y:.1f}"


def _coverage_svg(rows_by_fuzzer: Dict[str, list]) -> str:
    tmax, ymax = _scale(rows_by_fuzzer)
    baseline = _CHART_H - _PAD_B
    parts = [f'<svg viewBox="0 0 {_CHART_W} {_CHART_H}" '
             f'role="img">']
    parts.append(f'<line class="axis" x1="{_PAD_L}" y1="{baseline}" '
                 f'x2="{_CHART_W - _PAD_R}" y2="{baseline}"/>')
    parts.append(f'<line class="axis" x1="{_PAD_L}" y1="{_PAD_T}" '
                 f'x2="{_PAD_L}" y2="{baseline}"/>')
    parts.append(f'<text x="{_PAD_L - 4}" y="{_PAD_T + 8}" '
                 f'text-anchor="end">{_fmt(ymax)}</text>')
    parts.append(f'<text x="{_CHART_W - _PAD_R}" '
                 f'y="{_CHART_H - 6}" text-anchor="end">'
                 f't={_fmt(tmax)}s</text>')
    for slot, fuzzer in enumerate(sorted(rows_by_fuzzer)):
        rows = rows_by_fuzzer[fuzzer]
        if not rows or slot >= MAX_CHART_SERIES:
            continue
        color = _SERIES_VARS[slot]
        upper = " ".join(_xy(t, hi, tmax, ymax)
                         for t, _m, _lo, hi in rows)
        lower = " ".join(_xy(t, lo, tmax, ymax)
                         for t, _m, lo, _hi in reversed(rows))
        parts.append(f'<polygon points="{upper} {lower}" '
                     f'fill="{color}" fill-opacity="0.15" '
                     f'stroke="none"/>')
        path = " ".join(
            ("M" if i == 0 else "L") + _xy(t, m, tmax, ymax)
            for i, (t, m, _lo, _hi) in enumerate(rows))
        parts.append(f'<path d="{path}" fill="none" '
                     f'stroke="{color}" stroke-width="2" '
                     f'stroke-linejoin="round"/>')
    parts.append("</svg>")
    return "".join(parts)


def _legend(fuzzers: Sequence[str]) -> str:
    if len(fuzzers) < 2:
        return ""
    spans = "".join(
        f'<span style="--c: {_SERIES_VARS[i]}">'
        f'{html.escape(fuzzer)}</span>'
        for i, fuzzer in enumerate(fuzzers[:MAX_CHART_SERIES]))
    return f'<div class="legend">{spans}</div>'


def _metric_table(stats: dict) -> str:
    rows = [f'<h3>metric: {html.escape(stats["metric"])}</h3>',
            "<table><tr><th>fuzzer</th><th>n</th><th>median</th>"
            "<th>95% CI</th></tr>"]
    for entry in stats["fuzzers"]:
        name = html.escape(entry["fuzzer"])
        if entry["n"] == 0:
            rows.append(f"<tr><td>{name}</td>"
                        f'<td class="num">0</td>'
                        f"<td>&mdash;</td><td>&mdash;</td></tr>")
            continue
        lo, hi = entry["ci"]
        rows.append(
            f"<tr><td>{name}</td>"
            f'<td class="num">{entry["n"]}</td>'
            f'<td class="num">{_fmt(entry["median"])}</td>'
            f'<td class="num">[{_fmt(lo)}, {_fmt(hi)}]</td></tr>')
    rows.append("</table>")
    if stats["pairs"]:
        rows.append(
            "<table><tr><th>pair</th><th>U</th><th>p</th>"
            "<th>A12</th><th>&Delta;median 95% CI</th></tr>")
        for pair in stats["pairs"]:
            dlo, dhi = pair["diff_ci"]
            cls = ' class="num sig"' if pair["significant"] \
                else ' class="num"'
            label = (f'{html.escape(pair["first"])} vs '
                     f'{html.escape(pair["second"])}')
            star = " *" if pair["significant"] else ""
            rows.append(
                f"<tr><td>{label}</td>"
                f'<td class="num">{pair["u1"]:.1f}</td>'
                f'<td{cls}>{pair["p_value"]:.4f}{star}</td>'
                f'<td class="num">{pair["a12"]:.3f}</td>'
                f'<td class="num">[{_fmt(dlo)}, {_fmt(dhi)}]</td>'
                f"</tr>")
        rows.append("</table>")
        rows.append(f'<p class="note">two-sided Mann-Whitney, '
                    f'* marks p &lt; {ALPHA}; CIs are seeded '
                    f'bootstrap intervals.</p>')
    return "\n".join(rows)


def _store_section(name: str, store: ResultsStore,
                   seed: int) -> str:
    parts = [f"<h2>store: {html.escape(name)}</h2>"]
    lost = store.lost_trials()
    if lost:
        ids = ", ".join(str(t) for t in lost)
        parts.append(f'<p class="note">lost/quarantined trials '
                     f'(excluded from stats): {ids}</p>')
    fuzzers = store.fuzzers()
    for group in group_stats(store, fuzzers, REPORT_METRICS, seed):
        parts.append(f'<div class="card">')
        parts.append(f"<h3>{html.escape(group['label'])}</h3>")
        bands: Dict[str, list] = {}
        for fuzzer in fuzzers:
            curves = [store.coverage_curve(int(row["trial_id"]))
                      for row in store.trial_rows(
                          benchmark=group["benchmark"],
                          fuzzer=fuzzer,
                          map_size=group["map_size"],
                          status=DONE)]
            bands[fuzzer] = coverage_band(curves, seed=seed)
        if any(bands[fuzzer] for fuzzer in sorted(bands)):
            parts.append(_coverage_svg(bands))
            parts.append(_legend(fuzzers))
            if len(fuzzers) > MAX_CHART_SERIES:
                extra = ", ".join(fuzzers[MAX_CHART_SERIES:])
                parts.append(
                    f'<p class="note">chart shows the first '
                    f'{MAX_CHART_SERIES} fuzzers; also in tables: '
                    f'{html.escape(extra)}</p>')
        for stats in group["metrics"]:
            parts.append(_metric_table(stats))
        parts.append("</div>")
    return "\n".join(parts)


def render_html_report(stores: Dict[str, str], seed: int = 0,
                       title: str = "repro-fuzz comparison report"
                       ) -> str:
    """The full report page for ``name -> sqlite path`` stores.

    Stores are opened with ``mode="ro"`` — a report over a live
    campaign reads a consistent WAL snapshot and can never write.
    """
    sections = []
    for name in sorted(stores):
        with ResultsStore(stores[name],
                          mode=ResultsStore.RO) as store:
            sections.append(_store_section(name, store, seed))
    body = "\n".join(sections)
    return (f"<!doctype html>\n<html lang=\"en\"><head>"
            f'<meta charset="utf-8">'
            f'<meta name="viewport" content="width=device-width, '
            f'initial-scale=1">'
            f"<title>{html.escape(title)}</title>"
            f"<style>{_CSS}</style></head><body>"
            f"<h1>{html.escape(title)}</h1>"
            f'<p class="note">medians over trials with seeded '
            f'bootstrap CI bands (seed {seed}); statistics from '
            f'repro.fleet.stats.</p>'
            f"{body}</body></html>\n")


def generate_report(stores: Dict[str, str], out_path: str,
                    seed: int = 0,
                    title: str = "repro-fuzz comparison report"
                    ) -> str:
    """Render and write the report; returns the HTML."""
    page = render_html_report(stores, seed=seed, title=title)
    with open(out_path, "w", encoding="utf-8") as fh:
        fh.write(page)
    return page
