"""Run the telemetry server on a thread next to a running workload.

The experiment runner and the fleet dispatcher are synchronous; the
server is asyncio. :class:`BackgroundServer` bridges them: it owns a
private event loop on a daemon thread, starts a
:class:`.http.TelemetryServer` there, and exposes the bound port once
the listening socket exists — so ``repro-fuzz experiment --serve``
and ``repro-fuzz fleet run --serve`` can print a URL before the
workload's first campaign starts, and the workload itself never
touches the loop.

Overhead discipline (PR4 bench methodology, benchmarks/
test_bench_serve.py): the workload thread does nothing for the
server — no queues, no callbacks; the server's poll task reads the
same JSONL artifacts the workload was writing anyway, so the cost on
the hot path is only the OS-level write amplification, pinned ≤2%.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Dict, Optional

from ...core.errors import TelemetryError

__all__ = ["BackgroundServer"]


class BackgroundServer:
    """A :class:`.http.TelemetryServer` on a daemon thread.

    Args mirror the server's; :meth:`start` blocks until the socket
    is bound (or the server failed to start, re-raising its error),
    then :attr:`port`/:attr:`url` are valid. :meth:`stop` is
    idempotent and joins the thread.
    """

    def __init__(self, root: str, *,
                 stores: Optional[Dict[str, str]] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 poll_interval: float = 0.5,
                 start_timeout: float = 10.0) -> None:
        self.root = root
        self.stores = dict(stores or {})
        self.host = host
        self.port = port
        self.poll_interval = poll_interval
        self.start_timeout = start_timeout
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._server = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/"

    def start(self) -> "BackgroundServer":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run, name="repro-telemetry-serve",
            daemon=True)
        self._thread.start()
        if not self._ready.wait(self.start_timeout):
            raise TelemetryError(
                "telemetry server failed to start within "
                f"{self.start_timeout:g}s")
        if self._error is not None:
            raise TelemetryError(
                f"telemetry server failed to start: "
                f"{self._error}") from self._error
        return self

    def _run(self) -> None:
        from .http import TelemetryServer
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        server = TelemetryServer(
            self.root, stores=self.stores, host=self.host,
            port=self.port, poll_interval=self.poll_interval)
        try:
            loop.run_until_complete(server.start())
        # statlint: disable=ERR001 (start() re-raises as TelemetryError)
        except BaseException as exc:
            self._error = exc
            self._ready.set()
            loop.close()
            return
        self._server = server
        self.port = server.port
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(server.stop())
            loop.close()

    def stop(self) -> None:
        thread, loop = self._thread, self._loop
        if thread is None:
            return
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(loop.stop)
        thread.join(self.start_timeout)
        self._thread = None
        self._loop = None

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
