"""Incremental tail-from-offset readers for telemetry JSONL streams.

The live service (and the refreshing CLI status view) must not re-read
a growing ``events.jsonl`` from offset 0 on every poll: a long campaign
accumulates tens of thousands of events, and the whole point of the
ring-buffer/status substrate is that observation stays cheap. A
:class:`FileTailer` remembers the byte offset of the last fully
consumed line and each :meth:`FileTailer.poll` reads only the bytes
appended since, never handing out a partially written trailing line. A
:class:`TreeTailer` manages one tailer per ``events.jsonl`` found under
a telemetry root, discovering new campaign/instance directories as
they appear (sorted, so multi-file interleaving is deterministic).

Both are consumers in the sense of :mod:`repro.telemetry.validate`:
every parsed line is schema-validated before it reaches an aggregator,
so a corrupt artifact fails loudly at the tail site with file + line.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Tuple

from ...core.errors import TelemetryError
from ..events import validate_event

__all__ = ["FileTailer", "TreeTailer", "EVENTS_FILENAME",
           "metrics_watcher_paths"]

EVENTS_FILENAME = "events.jsonl"

#: Sibling artifact holding the metrics/span profile of a campaign.
METRICS_FILENAME = "metrics.json"


def metrics_watcher_paths(root: str,
                          campaigns: List[str]) -> List[Tuple[str, str]]:
    """``(campaign_id, metrics.json path)`` for known campaigns.

    Existence is not checked here — the caller stats the path anyway
    (metrics land at flush time, usually after the event log).
    """
    out: List[Tuple[str, str]] = []
    for campaign_id in sorted(campaigns):
        directory = (root if campaign_id == "." else
                     os.path.join(root, campaign_id))
        out.append((campaign_id,
                    os.path.join(directory, METRICS_FILENAME)))
    return out


class FileTailer:
    """Tails one JSONL event file from its last consumed byte offset.

    A poll consumes only complete lines (ending in ``\\n``); a partial
    trailing line — a writer mid-append — stays in the file until a
    later poll sees its terminator. If the file shrinks below the
    consumed offset (truncation/replacement), the tailer starts over
    from offset 0: the stream identity changed, so its prefix no
    longer counts as consumed.

    Attributes:
        offset: byte offset of the first unconsumed byte.
        bytes_read: total bytes this tailer ever read from disk — the
            regression handle proving refreshes are incremental (it
            approaches file size, not refreshes × size).
        lineno: 1-based line number of the next unconsumed line.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.offset = 0
        self.bytes_read = 0
        self.lineno = 1

    def poll(self) -> List[dict]:
        """Validated events appended since the last poll (maybe [])."""
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return []
        if size < self.offset:   # truncated/replaced: start over
            self.offset = 0
            self.lineno = 1
        if size == self.offset:
            return []
        with open(self.path, "rb") as fh:
            fh.seek(self.offset)
            chunk = fh.read(size - self.offset)
        self.bytes_read += len(chunk)
        end = chunk.rfind(b"\n")
        if end < 0:
            return []   # no complete line yet; re-read the tail later
        complete = chunk[:end + 1]
        events: List[dict] = []
        for raw in complete.split(b"\n")[:-1]:
            where = f"{self.path}:{self.lineno}"
            self.lineno += 1
            line = raw.decode("utf-8").strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError as exc:
                raise TelemetryError(
                    f"{where}: invalid JSON: {exc}") from exc
            events.append(validate_event(event, where=where))
        self.offset += len(complete)
        return events


class TreeTailer:
    """Tails every ``events.jsonl`` under a telemetry root.

    Campaign ids are directory paths relative to the root (``"."`` for
    an event log directly in the root) — the same identifiers
    :func:`repro.telemetry.validate.validate_tree` reports. Discovery
    re-walks the tree on every poll so directories created after the
    tailer (a fleet dispatching new trials, a parallel session adding
    instances) join the watch set automatically.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self._tailers: Dict[str, FileTailer] = {}

    @property
    def campaigns(self) -> List[str]:
        """Known campaign ids, sorted."""
        return sorted(self._tailers)

    def tailer_for(self, campaign_id: str) -> FileTailer:
        return self._tailers[campaign_id]

    def _discover(self) -> None:
        if not os.path.isdir(self.root):
            return
        for dirpath, dirnames, filenames in os.walk(self.root):
            dirnames.sort()
            if EVENTS_FILENAME not in filenames:
                continue
            campaign_id = os.path.relpath(dirpath, self.root)
            if campaign_id not in self._tailers:
                self._tailers[campaign_id] = FileTailer(
                    os.path.join(dirpath, EVENTS_FILENAME))

    def poll(self) -> List[Tuple[str, dict]]:
        """``(campaign_id, event)`` pairs appended since the last
        poll, campaign-sorted then file-ordered within a campaign."""
        self._discover()
        out: List[Tuple[str, dict]] = []
        for campaign_id in sorted(self._tailers):
            for event in self._tailers[campaign_id].poll():
                out.append((campaign_id, event))
        return out
