"""Live telemetry service: HTTP API + websocket dashboard + reports.

This package serves the telemetry substrate (:mod:`repro.telemetry`)
and the fleet results store (:mod:`repro.fleet.store`) while campaigns
are still running:

* :mod:`.tailer` — incremental tail-from-offset readers over canonical
  ``events.jsonl`` streams (shared with the CLI status view);
* :mod:`.aggregator` — :class:`TelemetryAggregator`, the deterministic
  event-stream fold that turns tailed events into queryable series
  (coverage growth, execs/sec, memsim level shares, fault timeline,
  fleet trial counts) with a replayable snapshot/delta protocol;
* :mod:`.http` — an asyncio (stdlib-only) HTTP/1.1 + RFC 6455
  websocket server exposing the aggregator and read-only fleet stores;
* :mod:`.dashboard` — the single-file HTML/JS live dashboard served
  at ``/``;
* :mod:`.reportgen` — static multi-campaign HTML comparison reports
  (coverage-over-time medians with bootstrap CI bands, Mann-Whitney /
  A12 tables straight from :mod:`repro.fleet.stats`);
* :mod:`.background` — a thread wrapper so the experiment runner and
  the fleet CLI can serve a live view next to a running workload.

Determinism contract (DESIGN.md §12): the aggregator is a pure
function of the ingested event sequence, so a live websocket session
and a post-hoc aggregation of the same JSONL files produce
byte-identical series.
"""

from .aggregator import AggregatorService, TelemetryAggregator
from .background import BackgroundServer
from .http import TelemetryServer
from .tailer import FileTailer, TreeTailer

__all__ = [
    "AggregatorService", "TelemetryAggregator",
    "BackgroundServer", "TelemetryServer",
    "FileTailer", "TreeTailer",
]
