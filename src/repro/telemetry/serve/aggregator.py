"""Deterministic event-stream aggregation behind the live service.

:class:`TelemetryAggregator` folds the canonical telemetry event
stream (:mod:`repro.telemetry.events`) into queryable per-campaign
series: coverage growth, execs/sec, map density, crash counts, the
fault/restart/stall/quarantine timeline, and fleet trial progress. It
is the single consumer the dashboard, the REST API, and the websocket
delta feed all read from, and it obeys a strict **determinism
contract** (DESIGN.md §12):

* the aggregate is a pure fold of the ingested ``(campaign_id,
  event)`` sequence — no clocks, no randomness, no filesystem;
* per-campaign series depend only on that campaign's own events, in
  stream order, so any interleaving of campaigns (live tailing vs
  post-hoc bulk read) yields identical per-campaign series;
* every ingest appends zero or more **deltas** — ``append`` ops on a
  named series or ``set`` ops on a keyed object — with a global
  monotone ``seq``; replaying deltas over a snapshot reproduces a
  later snapshot exactly (the websocket protocol is this replay).

Dispatch is **total over the schema**: every kind in
:data:`repro.telemetry.events.EVENT_SCHEMA` must have an
``_on_<kind>`` handler or appear in :data:`IGNORED_KINDS`; the
constructor enforces it at runtime and statlint's TEL104 enforces it
statically, so a newly declared event kind cannot silently vanish
from the dashboard.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ...core.errors import TelemetryError
from ..events import COMMON_FIELDS, EVENT_SCHEMA
from .tailer import TreeTailer, metrics_watcher_paths

__all__ = ["TelemetryAggregator", "CampaignSeries", "AggregatorService",
           "IGNORED_KINDS", "canonical_json"]

#: Event kinds the aggregator deliberately does not visualize. Keep
#: this in sync with the dashboard: statlint TEL104 treats membership
#: here as an explicit decision, absence from both here and the
#: ``_on_<kind>`` handler set as a bug.
IGNORED_KINDS: Tuple[str, ...] = ()

#: Series names every campaign carries, in canonical order.
SERIES_NAMES: Tuple[str, ...] = (
    "coverage", "throughput", "execs", "density", "crashes",
    "timeline", "fleet")

#: Fleet progress counters, in the column order of the ``fleet``
#: series rows (after the leading ``t``).
FLEET_COUNTS: Tuple[str, ...] = (
    "dispatched", "done", "failed", "retried", "measurements")


def canonical_json(value: object) -> str:
    """The service's one JSON encoding: sorted keys, no whitespace."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


class CampaignSeries:
    """All aggregated state of one campaign (or fleet session)."""

    def __init__(self, campaign_id: str) -> None:
        self.campaign_id = campaign_id
        self.meta: Dict[str, object] = {}
        self.final: Dict[str, object] = {}
        self.levels: Dict[str, float] = {}
        self.series: Dict[str, List[list]] = {
            name: [] for name in SERIES_NAMES}
        self.fleet_counts: Dict[str, int] = {
            name: 0 for name in FLEET_COUNTS}

    def as_dict(self) -> dict:
        """JSON-ready snapshot of this campaign. Key order is fixed
        here and canonicalized again by :func:`canonical_json`, so the
        rendered bytes are a pure function of the ingested events."""
        return {
            "id": self.campaign_id,
            "meta": dict(self.meta),
            "final": dict(self.final),
            "levels": {k: self.levels[k] for k in sorted(self.levels)},
            "series": {name: [list(row) for row in self.series[name]]
                       for name in SERIES_NAMES},
        }


def _payload(event: dict) -> Dict[str, object]:
    """Kind-specific fields of an event, key-sorted."""
    return {key: event[key] for key in sorted(event)
            if key not in COMMON_FIELDS}


class TelemetryAggregator:
    """The deterministic fold (see module docstring).

    Args:
        delta_log: how many trailing deltas are kept for incremental
            ``deltas_since`` queries; clients further behind get a
            full snapshot instead (the websocket layer handles that).
    """

    def __init__(self, delta_log: int = 8192) -> None:
        self.seq = 0
        self._campaigns: Dict[str, CampaignSeries] = {}
        self._deltas: Deque[dict] = deque(maxlen=delta_log)
        self._dispatch = {}
        for kind in sorted(EVENT_SCHEMA):
            handler = getattr(self, "_on_" + kind, None)
            if handler is not None:
                self._dispatch[kind] = handler
            elif kind not in IGNORED_KINDS:
                raise TelemetryError(
                    f"TelemetryAggregator handles no event kind "
                    f"{kind!r} and does not ignore it; add an "
                    f"_on_{kind} handler or list it in IGNORED_KINDS")

    # -- queries -------------------------------------------------------

    @property
    def campaigns(self) -> List[str]:
        return sorted(self._campaigns)

    def campaign(self, campaign_id: str) -> Optional[CampaignSeries]:
        return self._campaigns.get(campaign_id)

    def snapshot(self) -> dict:
        """Full state: every campaign's series plus the current seq."""
        return {
            "seq": self.seq,
            "campaigns": {cid: self._campaigns[cid].as_dict()
                          for cid in sorted(self._campaigns)},
        }

    def deltas_since(self, seq: int) -> Optional[List[dict]]:
        """Deltas after ``seq``, oldest first; ``None`` when ``seq``
        predates the delta log (caller must resnapshot)."""
        if seq > self.seq:
            return None
        if seq == self.seq:
            return []
        pending = [d for d in self._deltas if d["seq"] > seq]
        covered = len(pending) == self.seq - seq
        return pending if covered else None

    # -- ingestion -----------------------------------------------------

    def _series_for(self, campaign_id: str) -> CampaignSeries:
        series = self._campaigns.get(campaign_id)
        if series is None:
            series = CampaignSeries(campaign_id)
            self._campaigns[campaign_id] = series
        return series

    def _push(self, campaign_id: str, op: dict) -> dict:
        self.seq += 1
        delta = {"seq": self.seq, "campaign": campaign_id}
        delta.update(op)
        self._deltas.append(delta)
        return delta

    def ingest(self, campaign_id: str, event: dict) -> List[dict]:
        """Fold one event; return the deltas it produced."""
        kind = event["kind"]
        handler = self._dispatch.get(kind)
        if handler is None:
            if kind in IGNORED_KINDS:
                return []
            raise TelemetryError(
                f"aggregator: unhandled event kind {kind!r}")
        series = self._series_for(campaign_id)
        return [self._push(campaign_id, op)
                for op in handler(series, event)]

    def ingest_levels(self, campaign_id: str,
                      levels: Dict[str, float]) -> List[dict]:
        """Install memsim per-level cycle shares (from metrics.json).

        ``set`` semantics: idempotent, so re-reading an unchanged
        metrics file produces no delta.
        """
        ordered = {k: float(levels[k]) for k in sorted(levels)}
        series = self._series_for(campaign_id)
        if series.levels == ordered:
            return []
        series.levels = ordered
        return [self._push(campaign_id,
                           {"op": "set", "key": "levels",
                            "value": dict(ordered)})]

    @staticmethod
    def apply_delta(snapshot: dict, delta: dict) -> None:
        """Replay one delta onto a :meth:`snapshot`-shaped dict —
        the reference client the websocket protocol is tested
        against (and the dashboard's JS mirrors)."""
        campaigns = snapshot["campaigns"]
        cid = delta["campaign"]
        if cid not in campaigns:
            campaigns[cid] = CampaignSeries(cid).as_dict()
        target = campaigns[cid]
        if delta["op"] == "append":
            target["series"][delta["series"]].append(
                list(delta["row"]))
        elif delta["op"] == "set":
            target[delta["key"]] = delta["value"]
        else:
            raise TelemetryError(
                f"unknown delta op {delta['op']!r}")
        snapshot["seq"] = delta["seq"]

    # -- handlers (one per EVENT_SCHEMA kind; see TEL104) --------------

    def _append(self, series: CampaignSeries, name: str,
                row: list) -> dict:
        series.series[name].append(row)
        return {"op": "append", "series": name, "row": list(row)}

    def _timeline(self, series: CampaignSeries, event: dict) -> List[dict]:
        row = [event["t"], event["kind"], event["instance"],
               _payload(event)]
        return [self._append(series, "timeline", row)]

    def _fleet_row(self, series: CampaignSeries, event: dict) -> dict:
        counts = series.fleet_counts
        row = [event["t"]] + [counts[name] for name in FLEET_COUNTS]
        return self._append(series, "fleet", row)

    def _on_campaign_start(self, series: CampaignSeries,
                           event: dict) -> List[dict]:
        meta = _payload(event)
        meta["instance"] = event["instance"]
        series.meta = meta
        return [{"op": "set", "key": "meta", "value": dict(meta)}]

    def _on_campaign_finish(self, series: CampaignSeries,
                            event: dict) -> List[dict]:
        final = _payload(event)
        final["t"] = event["t"]
        series.final = final
        return [{"op": "set", "key": "final", "value": dict(final)}]

    def _on_snapshot(self, series: CampaignSeries,
                     event: dict) -> List[dict]:
        return [
            self._append(series, "coverage",
                         [event["t"], event["edges"]]),
            self._append(series, "throughput",
                         [event["t"], event["execs_per_sec"]]),
            self._append(series, "execs", [event["t"], event["execs"]]),
            self._append(series, "density",
                         [event["t"], event["map_density"]]),
            self._append(series, "crashes",
                         [event["t"], event["crashes"],
                          event["hangs"]]),
        ]

    def _on_fault(self, series, event) -> List[dict]:
        return self._timeline(series, event)

    def _on_restart(self, series, event) -> List[dict]:
        return self._timeline(series, event)

    def _on_stall(self, series, event) -> List[dict]:
        return self._timeline(series, event)

    def _on_quarantine(self, series, event) -> List[dict]:
        return self._timeline(series, event)

    def _on_fleet_resume(self, series, event) -> List[dict]:
        return self._timeline(series, event)

    def _on_artifact_quarantine(self, series, event) -> List[dict]:
        return self._timeline(series, event)

    def _on_integrity(self, series, event) -> List[dict]:
        return self._timeline(series, event)

    def _on_store_retry(self, series, event) -> List[dict]:
        return self._timeline(series, event)

    def _on_trial_dispatch(self, series: CampaignSeries,
                           event: dict) -> List[dict]:
        series.fleet_counts["dispatched"] += 1
        return [self._fleet_row(series, event)]

    def _on_trial_finish(self, series: CampaignSeries,
                         event: dict) -> List[dict]:
        if event["status"] == "ok":
            series.fleet_counts["done"] += 1
        else:
            series.fleet_counts["failed"] += 1
        return [self._fleet_row(series, event),
                *self._timeline(series, event)]

    def _on_trial_retry(self, series: CampaignSeries,
                        event: dict) -> List[dict]:
        series.fleet_counts["retried"] += 1
        return [self._fleet_row(series, event),
                *self._timeline(series, event)]

    def _on_measurement(self, series: CampaignSeries,
                        event: dict) -> List[dict]:
        series.fleet_counts["measurements"] += 1
        return [self._fleet_row(series, event)]


class AggregatorService:
    """Filesystem-facing wrapper: tailers + metrics watch + aggregator.

    The one stateful object the HTTP server owns. :meth:`poll` tails
    every event log under ``root`` incrementally, re-reads a
    campaign's ``metrics.json`` only when its size/mtime changed, and
    returns the deltas the new data produced.
    """

    def __init__(self, root: str, delta_log: int = 8192) -> None:
        self.root = root
        self.tailer = TreeTailer(root)
        self.aggregator = TelemetryAggregator(delta_log=delta_log)
        self._metrics_stamp: Dict[str, Tuple[int, int]] = {}

    def poll(self) -> List[dict]:
        deltas: List[dict] = []
        for campaign_id, event in self.tailer.poll():
            deltas.extend(self.aggregator.ingest(campaign_id, event))
        for campaign_id, levels in self._poll_levels():
            deltas.extend(
                self.aggregator.ingest_levels(campaign_id, levels))
        return deltas

    def _poll_levels(self) -> List[Tuple[str, Dict[str, float]]]:
        """(campaign_id, level shares) for changed metrics.json files."""
        updates: List[Tuple[str, Dict[str, float]]] = []
        for campaign_id, path in metrics_watcher_paths(
                self.root, self.tailer.campaigns):
            try:
                stat = os.stat(path)
            except OSError:
                continue
            stamp = (int(stat.st_size), int(stat.st_mtime_ns))
            if self._metrics_stamp.get(campaign_id) == stamp:
                continue
            self._metrics_stamp[campaign_id] = stamp
            levels = _level_shares_from_metrics(path)
            if levels:
                updates.append((campaign_id, levels))
        return updates


def _level_shares_from_metrics(path: str) -> Dict[str, float]:
    """Mean per-level memsim cycle shares out of one metrics.json.

    The campaign records ``memsim.share.<level>`` histograms (one
    observation per execution, the cost model's L1/L2/LLC/DRAM/TLB
    attribution); the dashboard wants one number per level — the mean
    share, ``sum / total``.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            profile = json.load(fh)
    except (OSError, ValueError):
        return {}
    metrics = profile.get("metrics")
    if not isinstance(metrics, dict):
        return {}
    shares: Dict[str, float] = {}
    for name in sorted(metrics):
        if not name.startswith("memsim.share."):
            continue
        record = metrics[name]
        total = record.get("total", 0)
        if record.get("kind") == "histogram" and total:
            level = name[len("memsim.share."):]
            shares[level] = float(record["sum"]) / float(total)
    return shares
