"""AFL-compatible ``fuzzer_stats`` and ``plot_data`` file formats.

AFL's two on-disk artifacts are the lingua franca of fuzzing dashboards
(``afl-plot``, ``afl-whatsup``, casr, Fuzzbench ingestors), so the
telemetry layer renders its campaign series in the same shapes:

* ``fuzzer_stats`` — ``key : value`` lines, one stat per line, keys
  left-aligned to AFL's customary 17-column pad;
* ``plot_data`` — a CSV whose header and column order match AFL's
  ``plot_data`` exactly (see :data:`PLOT_HEADER`).

This module is pure formatting: render functions take plain dicts and
sequences, parse functions invert them (used by the validators and the
live status view). Times in both artifacts are **virtual seconds** from
the simulated clock, which is what makes two same-config runs produce
byte-identical files.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Union

from ..core.errors import TelemetryError

__all__ = [
    "PLOT_FIELDS", "PLOT_HEADER", "STATS_KEYS",
    "render_fuzzer_stats", "parse_fuzzer_stats",
    "render_plot_data", "parse_plot_data", "plot_row",
]

Scalar = Union[int, float, str]

#: plot_data columns, in AFL's order.
PLOT_FIELDS = ("relative_time", "cycles_done", "cur_path", "paths_total",
               "pending_total", "pending_favs", "map_size",
               "unique_crashes", "unique_hangs", "max_depth",
               "execs_per_sec")

PLOT_HEADER = "# " + ", ".join(PLOT_FIELDS)

#: fuzzer_stats keys, in AFL's customary order (subset relevant to the
#: simulation; no pids or banner strings).
STATS_KEYS = ("start_time", "last_update", "fuzzer_pid", "cycles_done",
              "execs_done", "execs_per_sec", "paths_total",
              "paths_favored", "paths_found", "paths_imported",
              "max_depth", "cur_path", "pending_favs", "pending_total",
              "unique_crashes", "unique_hangs", "bitmap_cvg",
              "afl_banner", "afl_version")


def _fmt(value: Scalar) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_fuzzer_stats(stats: Dict[str, Scalar]) -> str:
    """Render ``key : value`` lines in :data:`STATS_KEYS` order.

    Unknown keys are rejected rather than appended: the key set is the
    compatibility contract with AFL tooling.
    """
    unknown = sorted(k for k in stats if k not in STATS_KEYS)
    if unknown:
        raise TelemetryError(
            f"unknown fuzzer_stats keys: {', '.join(unknown)}")
    lines = [f"{key:<17} : {_fmt(stats[key])}"
             for key in STATS_KEYS if key in stats]
    return "\n".join(lines) + "\n"


def parse_fuzzer_stats(text: str) -> Dict[str, str]:
    """Parse ``key : value`` lines; values stay strings."""
    stats: Dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if ":" not in line:
            raise TelemetryError(
                f"fuzzer_stats line {lineno} is not 'key : value': "
                f"{line!r}")
        key, _, value = line.partition(":")
        stats[key.strip()] = value.strip()
    return stats


def plot_row(values: Dict[str, Scalar]) -> List[Scalar]:
    """Order a field dict into a plot_data row, checking completeness."""
    missing = sorted(f for f in PLOT_FIELDS if f not in values)
    if missing:
        raise TelemetryError(
            f"plot_data row missing fields: {', '.join(missing)}")
    return [values[f] for f in PLOT_FIELDS]


def render_plot_data(rows: Iterable[Sequence[Scalar]]) -> str:
    """Render rows (already in :data:`PLOT_FIELDS` order) as CSV."""
    lines = [PLOT_HEADER]
    for row in rows:
        if len(row) != len(PLOT_FIELDS):
            raise TelemetryError(
                f"plot_data row has {len(row)} fields, "
                f"expected {len(PLOT_FIELDS)}")
        lines.append(", ".join(_fmt(v) for v in row))
    return "\n".join(lines) + "\n"


def parse_plot_data(text: str) -> List[Dict[str, float]]:
    """Parse a plot_data CSV into one dict per row (numeric values)."""
    lines = text.splitlines()
    if not lines or lines[0] != PLOT_HEADER:
        head = lines[0] if lines else "<empty>"
        raise TelemetryError(
            f"plot_data header mismatch: {head!r} != {PLOT_HEADER!r}")
    rows = []
    for lineno, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        parts = [p.strip() for p in line.split(",")]
        if len(parts) != len(PLOT_FIELDS):
            raise TelemetryError(
                f"plot_data line {lineno} has {len(parts)} fields, "
                f"expected {len(PLOT_FIELDS)}")
        try:
            rows.append({field: float(part)
                         for field, part in zip(PLOT_FIELDS, parts)})
        except ValueError as exc:
            raise TelemetryError(
                f"plot_data line {lineno}: non-numeric field: "
                f"{line!r}") from exc
    return rows
