"""Telemetry event schema and validation.

Every record in a telemetry JSONL stream is a flat JSON object with
three common fields — ``t`` (virtual seconds since campaign start),
``kind`` (one of :data:`EVENT_KINDS`), ``instance`` (parallel instance
index, ``-1`` for session-level events) — plus a kind-specific payload
described by :data:`EVENT_SCHEMA`.

The schema is enforced **at both ends**: :func:`make_event` validates on
produce, so a misbehaving emitter fails loudly inside the run that
introduced it instead of corrupting the artifact, and
:func:`validate_stream` re-validates on consume (the CI smoke step and
``python -m repro.telemetry``). Field types are deliberately coarse —
``int``/``float``/``str`` — because the stream is a data-exchange
format, not an internal API.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from ..core.errors import TelemetryError

__all__ = [
    "EVENT_KINDS", "EVENT_SCHEMA", "COMMON_FIELDS",
    "make_event", "validate_event", "validate_stream",
]

#: Common fields present on every event.
COMMON_FIELDS: Dict[str, str] = {
    "t": "float",
    "kind": "str",
    "instance": "int",
}

#: kind -> {payload field -> type tag}. Type tags: "int" (integral),
#: "float" (any real number), "str".
EVENT_SCHEMA: Dict[str, Dict[str, str]] = {
    # Campaign lifecycle ---------------------------------------------
    "campaign_start": {
        "benchmark": "str",
        "fuzzer": "str",
        "map_size": "int",
        "rng_seed": "int",
    },
    "campaign_finish": {
        "execs": "int",
        "edges": "int",
        "crashes": "int",
        "hangs": "int",
        "stop_reason": "str",
    },
    # Periodic progress sample (one per plot_data row) ---------------
    "snapshot": {
        "execs": "int",
        "execs_per_sec": "float",
        "edges": "int",
        "map_density": "float",
        "collision_rate": "float",
        "queue_depth": "int",
        "pending_total": "int",
        "pending_favs": "int",
        "favored": "int",
        "queue_cycles": "int",
        "cur_path": "int",
        "crashes": "int",
        "hangs": "int",
        "max_depth": "int",
    },
    # Supervisor / fault-tolerance -----------------------------------
    "fault": {
        "status": "str",
        "reason": "str",
    },
    "restart": {
        "restarts": "int",
    },
    "stall": {
        "last_progress": "float",
    },
    "quarantine": {
        "exporter": "int",
        "entries": "int",
    },
    # Fleet trial lifecycle (repro.fleet) ----------------------------
    # ``t`` on fleet events is the dispatcher's *logical* clock (a
    # monotone event counter), not virtual campaign time: a fleet spans
    # many campaigns with independent virtual clocks, and wall time
    # would break the deterministic in-process backend's replayability.
    "trial_dispatch": {
        "trial": "int",
        "attempt": "int",
        "fuzzer": "str",
        "benchmark": "str",
        "map_size": "int",
        "rng_seed": "int",
    },
    "trial_finish": {
        "trial": "int",
        "attempt": "int",
        "status": "str",
        "execs": "int",
        "edges": "int",
        "crashes": "int",
    },
    "trial_retry": {
        "trial": "int",
        "attempt": "int",
        "reason": "str",
        "resumed_from_checkpoint": "int",
    },
    # Out-of-band coverage measurement of one corpus snapshot.
    # ``lag_seconds`` is host wall time between the worker producing
    # the snapshot and the measurer consuming it (measurement lag) —
    # operator-facing, never fed back into simulated state.
    "measurement": {
        "trial": "int",
        "snapshot": "int",
        "corpus_size": "int",
        "true_edges": "int",
        "lag_seconds": "float",
    },
    # Fleet crash-safety (repro.fleet resume + artifact integrity) ----
    # ``fleet_resume``: one per `fleet --resume`, summarizing the
    # store-vs-artifact reconciliation (how many trials were already
    # terminal, recovered from a completed result artifact, sent back
    # to the queue, or only needed their measurement re-run).
    "fleet_resume": {
        "done": "int",
        "lost": "int",
        "reconciled": "int",
        "requeued": "int",
        "remeasured": "int",
    },
    # A corrupt/truncated artifact was renamed aside and skipped.
    "artifact_quarantine": {
        "trial": "int",
        "artifact": "str",
        "reason": "str",
    },
    # An integrity anomaly that was repaired in place (clamped negative
    # measurement lag, checkpoint rejected by a worker, ...).
    "integrity": {
        "trial": "int",
        "artifact": "str",
        "detail": "str",
    },
    # One bounded-backoff retry of a results-store operation after a
    # transient SQLite lock/IO error.
    "store_retry": {
        "op": "str",
        "attempt": "int",
        "error": "str",
    },
}

EVENT_KINDS: Tuple[str, ...] = tuple(sorted(EVENT_SCHEMA))


def _type_ok(value: object, tag: str) -> bool:
    if tag == "str":
        return isinstance(value, str)
    if tag == "int":
        return isinstance(value, int) and not isinstance(value, bool)
    if tag == "float":
        return (isinstance(value, (int, float))
                and not isinstance(value, bool))
    raise TelemetryError(f"unknown schema type tag {tag!r}")


def validate_event(event: dict, where: str = "event") -> dict:
    """Check one event against the schema; return it unchanged.

    Raises :class:`TelemetryError` naming the offending field, so both
    producer (``make_event``) and consumer (``validate_stream``) report
    the same diagnostics.
    """
    kind = event.get("kind")
    if kind not in EVENT_SCHEMA:
        raise TelemetryError(
            f"{where}: unknown event kind {kind!r} "
            f"(expected one of {', '.join(EVENT_KINDS)})")
    expected = dict(COMMON_FIELDS)
    expected.update(EVENT_SCHEMA[kind])
    for field in sorted(expected):
        if field not in event:
            raise TelemetryError(
                f"{where}: {kind} event missing field {field!r}")
        if not _type_ok(event[field], expected[field]):
            raise TelemetryError(
                f"{where}: {kind} event field {field!r} should be "
                f"{expected[field]}, got {type(event[field]).__name__} "
                f"({event[field]!r})")
    for field in sorted(event):
        if field not in expected:
            raise TelemetryError(
                f"{where}: {kind} event has unexpected field {field!r}")
    return event


def make_event(kind: str, t: float, instance: int = -1,
               **payload: object) -> dict:
    """Build a schema-valid event dict with key-sorted insertion order."""
    event = {"t": float(t), "kind": kind, "instance": int(instance)}
    event.update(payload)
    validate_event(event, where="emit")
    return {key: event[key] for key in sorted(event)}


def validate_stream(events: Iterable[dict]) -> List[dict]:
    """Validate an iterable of events; return them as a list."""
    out = []
    for i, event in enumerate(events):
        out.append(validate_event(event, where=f"line {i + 1}"))
    return out
