"""Consumer-side validation of on-disk telemetry artifacts.

Used by the CI smoke step (``python -m repro.telemetry <dir>``) and by
tests: load what the recorder flushed, check the JSONL stream against
:data:`repro.telemetry.events.EVENT_SCHEMA`, and check that the AFL
artifacts parse. Problems raise :class:`TelemetryError` with the file
and line in the message.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

from ..core.errors import TelemetryError
from .aflstats import parse_fuzzer_stats, parse_plot_data
from .events import validate_event

__all__ = ["load_events", "telemetry_dirs", "validate_directory",
           "validate_tree"]


def load_events(path: str) -> List[dict]:
    """Parse + schema-validate one ``events.jsonl`` file."""
    events = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            if not line.strip():
                continue
            try:
                event = json.loads(line)
            except ValueError as exc:
                raise TelemetryError(
                    f"{path}:{lineno}: invalid JSON: {exc}") from exc
            events.append(
                validate_event(event, where=f"{path}:{lineno}"))
    return events


def validate_directory(directory: str) -> Dict[str, int]:
    """Validate one instance directory; return artifact counts.

    ``events.jsonl`` is required; ``fuzzer_stats``/``plot_data`` are
    validated when present (session-level directories have only the
    event log).
    """
    report: Dict[str, int] = {}
    events_path = os.path.join(directory, "events.jsonl")
    if not os.path.exists(events_path):
        raise TelemetryError(f"{directory}: missing events.jsonl")
    report["events"] = len(load_events(events_path))

    stats_path = os.path.join(directory, "fuzzer_stats")
    if os.path.exists(stats_path):
        with open(stats_path, "r", encoding="utf-8") as fh:
            stats = parse_fuzzer_stats(fh.read())
        if not stats:
            raise TelemetryError(f"{stats_path}: no stats parsed")
        report["stats_keys"] = len(stats)

    plot_path = os.path.join(directory, "plot_data")
    if os.path.exists(plot_path):
        with open(plot_path, "r", encoding="utf-8") as fh:
            report["plot_rows"] = len(parse_plot_data(fh.read()))
    return report


def telemetry_dirs(root: str) -> List[str]:
    """Every directory under ``root`` holding an event log, sorted.

    Covers all three layouts the recorders produce: a single campaign
    flushed straight into ``root``, a parallel session's
    ``instance-*`` children, and the experiments runner's
    sequence-numbered per-campaign directories.
    """
    found = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        if "events.jsonl" in filenames:
            found.append(dirpath)
    return found


def validate_tree(root: str) -> Dict[str, Dict[str, int]]:
    """Validate every telemetry directory under ``root``.

    Returns ``{relative directory: counts}`` in sorted order. A root
    with no event log anywhere is an error — it means telemetry was
    requested but nothing was recorded.
    """
    if not os.path.isdir(root):
        raise TelemetryError(f"{root}: not a directory")
    reports: Dict[str, Dict[str, int]] = {}
    for directory in telemetry_dirs(root):
        reports[os.path.relpath(directory, root)] = \
            validate_directory(directory)
    if not reports:
        raise TelemetryError(
            f"{root}: no events.jsonl anywhere under the tree")
    return reports
