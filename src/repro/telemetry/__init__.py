"""Structured telemetry for the fuzzing + memsim stack.

Observability layer threaded through :class:`~repro.fuzzer.Campaign`,
the parallel-session supervisor, and the memsim cost model:

* :mod:`.metrics` — deterministic counters/gauges/fixed-bucket
  histograms (:class:`MetricsRegistry`);
* :mod:`.spans` — virtual-time span tracing of the hot paths
  (:class:`SpanTracer`, :data:`NULL_TRACER` for the disabled path);
* :mod:`.events` — the JSONL event schema and validators;
* :mod:`.sinks` / :mod:`.aflstats` — JSONL log, ring buffer, and
  AFL-compatible ``fuzzer_stats``/``plot_data`` writers;
* :mod:`.recorder` — the per-instance facade
  (:class:`TelemetryRecorder`) and the parallel-session fan-out
  (:class:`SessionTelemetry`);
* :mod:`.introspect` / :mod:`.validate` — live status rendering and
  consumer-side artifact validation (``python -m repro.telemetry``).

Determinism contract (statlint TEL001): nothing in this package reads
the wall clock or unseeded randomness; all timestamps are virtual
seconds from the simulated campaign clock, all serialization uses
sorted keys. Two runs of the same configuration therefore produce
byte-identical telemetry artifacts, and a checkpoint-restored campaign
continues its series exactly (see DESIGN.md, "Observability").
"""

from .events import (EVENT_KINDS, EVENT_SCHEMA, make_event,
                     validate_event, validate_stream)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .recorder import SessionTelemetry, TelemetryRecorder
from .sinks import (AflStatsSink, JsonlEventLog, RingBufferSink,
                    encode_event)
from .spans import NULL_TRACER, NullTracer, SpanTracer
from .validate import validate_directory, validate_tree

__all__ = [
    "EVENT_KINDS", "EVENT_SCHEMA", "make_event", "validate_event",
    "validate_stream",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "SessionTelemetry", "TelemetryRecorder",
    "AflStatsSink", "JsonlEventLog", "RingBufferSink", "encode_event",
    "NULL_TRACER", "NullTracer", "SpanTracer",
    "validate_directory", "validate_tree",
]
