"""CLI entry point: validate (and optionally show) a telemetry tree.

Usage::

    python -m repro.telemetry DIR [--status]

Exit status 0 when every artifact under ``DIR`` is schema-valid,
1 otherwise — this is the CI smoke gate for telemetry output.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..core.errors import TelemetryError
from .introspect import render_tree
from .validate import validate_tree


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Validate telemetry artifacts against the event "
                    "schema and AFL file formats.")
    parser.add_argument("directory",
                        help="telemetry root (a --telemetry-dir output)")
    parser.add_argument("--status", action="store_true",
                        help="also render the live-status view")
    args = parser.parse_args(argv)

    try:
        reports = validate_tree(args.directory)
    except (TelemetryError, OSError) as exc:
        print(f"telemetry: INVALID: {exc}", file=sys.stderr)
        return 1

    for name in sorted(reports):
        counts = reports[name]
        detail = ", ".join(f"{key}={counts[key]}"
                           for key in sorted(counts))
        print(f"telemetry: {name}: OK ({detail})")
    if args.status:
        print()
        print(render_tree(args.directory))
    return 0


if __name__ == "__main__":
    sys.exit(main())
