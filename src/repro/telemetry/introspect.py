"""Human-readable status views over telemetry state.

Renders the ``afl-whatsup``-style live view behind
``repro-fuzz telemetry --telemetry-dir DIR`` and the post-run summary
the CLI prints when a campaign was run with telemetry enabled. Works
from either a live :class:`~repro.telemetry.recorder.TelemetryRecorder`
(ring buffer + derived stats, no filesystem) or a flushed directory
tree (parsed artifacts).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from .aflstats import parse_fuzzer_stats
from .recorder import TelemetryRecorder
from .validate import load_events

__all__ = ["render_status", "render_recorder", "render_tree",
           "load_directory", "StatusTracker"]

#: (fuzzer_stats key, display label) rows of the status card.
_STATUS_ROWS: Tuple[Tuple[str, str], ...] = (
    ("last_update", "virtual time (s)"),
    ("execs_done", "execs done"),
    ("execs_per_sec", "execs/sec"),
    ("paths_total", "paths total"),
    ("pending_favs", "pending favs"),
    ("pending_total", "pending total"),
    ("bitmap_cvg", "map density"),
    ("unique_crashes", "crashes"),
    ("unique_hangs", "hangs"),
    ("cycles_done", "queue cycles"),
)


def render_status(title: str, stats: Dict[str, object],
                  recent: Optional[List[dict]] = None,
                  recent_limit: int = 5) -> str:
    """One instance's status card: stats rows + most recent events."""
    lines = [f"=== {title} ==="]
    for key, label in _STATUS_ROWS:
        if key in stats:
            lines.append(f"  {label:<18} {stats[key]}")
    if not any(key in stats for key, _ in _STATUS_ROWS):
        lines.append("  (no snapshots recorded)")
    if recent:
        lines.append("  recent events:")
        for event in recent[-recent_limit:]:
            extras = " ".join(
                f"{k}={event[k]}" for k in sorted(event)
                if k not in ("t", "kind", "instance"))
            lines.append(
                f"    [t={event['t']:.2f}] {event['kind']} {extras}".rstrip())
    return "\n".join(lines)


def render_recorder(recorder: TelemetryRecorder,
                    title: Optional[str] = None) -> str:
    """Status card straight from a live recorder (ring buffer view)."""
    if title is None:
        title = ("session" if recorder.instance < 0
                 else f"instance {recorder.instance}")
    return render_status(title, recorder.afl.fuzzer_stats(),
                         recorder.ring.events)


def load_directory(directory: str) -> Tuple[Dict[str, str], List[dict]]:
    """Parsed (fuzzer_stats, events) from one flushed directory."""
    stats: Dict[str, str] = {}
    stats_path = os.path.join(directory, "fuzzer_stats")
    if os.path.exists(stats_path):
        with open(stats_path, "r", encoding="utf-8") as fh:
            stats = parse_fuzzer_stats(fh.read())
    events: List[dict] = []
    events_path = os.path.join(directory, "events.jsonl")
    if os.path.exists(events_path):
        events = load_events(events_path)
    return stats, events


def render_tree(root: str) -> str:
    """Status cards for every telemetry directory under ``root``."""
    from .validate import telemetry_dirs
    sections: List[str] = []
    if os.path.isdir(root):
        for directory in telemetry_dirs(root):
            stats, events = load_directory(directory)
            title = os.path.relpath(directory, root)
            if title == ".":
                title = root
            sections.append(render_status(title, stats, events))
    if not sections:
        return f"=== {root} ===\n  (no telemetry artifacts found)"
    return "\n\n".join(sections)


class StatusTracker:
    """Refreshable status view that tails event logs incrementally.

    :func:`render_tree` re-reads every ``events.jsonl`` from offset 0,
    which is fine for a one-shot view but quadratic for a refreshing
    one (``--follow``): a long campaign's log is re-parsed in full on
    every tick. A tracker keeps a
    :class:`~repro.telemetry.serve.tailer.TreeTailer` across
    refreshes — the same reader the live service uses — so each
    :meth:`refresh` reads only the bytes appended since the last one.
    The regression test pins this via :attr:`bytes_read`.
    """

    def __init__(self, root: str, recent_limit: int = 5) -> None:
        from .serve.tailer import TreeTailer
        self.root = root
        self.recent_limit = recent_limit
        self.tailer = TreeTailer(root)
        self._recent: Dict[str, List[dict]] = {}

    @property
    def bytes_read(self) -> int:
        """Total event-log bytes ever read — approaches the logs'
        size, not refresh count × size."""
        return sum(self.tailer.tailer_for(cid).bytes_read
                   for cid in self.tailer.campaigns)

    def refresh(self) -> str:
        """Ingest appended events, re-render all status cards."""
        for campaign_id, event in self.tailer.poll():
            bucket = self._recent.setdefault(campaign_id, [])
            bucket.append(event)
            del bucket[:-self.recent_limit]
        sections: List[str] = []
        for campaign_id in self.tailer.campaigns:
            directory = (self.root if campaign_id == "." else
                         os.path.join(self.root, campaign_id))
            stats: Dict[str, str] = {}
            stats_path = os.path.join(directory, "fuzzer_stats")
            if os.path.exists(stats_path):
                with open(stats_path, "r", encoding="utf-8") as fh:
                    stats = parse_fuzzer_stats(fh.read())
            title = (self.root if campaign_id == "." else campaign_id)
            sections.append(render_status(
                title, stats, self._recent.get(campaign_id),
                self.recent_limit))
        if not sections:
            return (f"=== {self.root} ===\n"
                    f"  (no telemetry artifacts found)")
        return "\n\n".join(sections)
