"""Human-readable status views over telemetry state.

Renders the ``afl-whatsup``-style live view behind
``repro-fuzz telemetry --telemetry-dir DIR`` and the post-run summary
the CLI prints when a campaign was run with telemetry enabled. Works
from either a live :class:`~repro.telemetry.recorder.TelemetryRecorder`
(ring buffer + derived stats, no filesystem) or a flushed directory
tree (parsed artifacts).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from .aflstats import parse_fuzzer_stats
from .recorder import TelemetryRecorder
from .validate import load_events

__all__ = ["render_status", "render_recorder", "render_tree",
           "load_directory"]

#: (fuzzer_stats key, display label) rows of the status card.
_STATUS_ROWS: Tuple[Tuple[str, str], ...] = (
    ("last_update", "virtual time (s)"),
    ("execs_done", "execs done"),
    ("execs_per_sec", "execs/sec"),
    ("paths_total", "paths total"),
    ("pending_favs", "pending favs"),
    ("pending_total", "pending total"),
    ("bitmap_cvg", "map density"),
    ("unique_crashes", "crashes"),
    ("unique_hangs", "hangs"),
    ("cycles_done", "queue cycles"),
)


def render_status(title: str, stats: Dict[str, object],
                  recent: Optional[List[dict]] = None,
                  recent_limit: int = 5) -> str:
    """One instance's status card: stats rows + most recent events."""
    lines = [f"=== {title} ==="]
    for key, label in _STATUS_ROWS:
        if key in stats:
            lines.append(f"  {label:<18} {stats[key]}")
    if not any(key in stats for key, _ in _STATUS_ROWS):
        lines.append("  (no snapshots recorded)")
    if recent:
        lines.append("  recent events:")
        for event in recent[-recent_limit:]:
            extras = " ".join(
                f"{k}={event[k]}" for k in sorted(event)
                if k not in ("t", "kind", "instance"))
            lines.append(
                f"    [t={event['t']:.2f}] {event['kind']} {extras}".rstrip())
    return "\n".join(lines)


def render_recorder(recorder: TelemetryRecorder,
                    title: Optional[str] = None) -> str:
    """Status card straight from a live recorder (ring buffer view)."""
    if title is None:
        title = ("session" if recorder.instance < 0
                 else f"instance {recorder.instance}")
    return render_status(title, recorder.afl.fuzzer_stats(),
                         recorder.ring.events)


def load_directory(directory: str) -> Tuple[Dict[str, str], List[dict]]:
    """Parsed (fuzzer_stats, events) from one flushed directory."""
    stats: Dict[str, str] = {}
    stats_path = os.path.join(directory, "fuzzer_stats")
    if os.path.exists(stats_path):
        with open(stats_path, "r", encoding="utf-8") as fh:
            stats = parse_fuzzer_stats(fh.read())
    events: List[dict] = []
    events_path = os.path.join(directory, "events.jsonl")
    if os.path.exists(events_path):
        events = load_events(events_path)
    return stats, events


def render_tree(root: str) -> str:
    """Status cards for every telemetry directory under ``root``."""
    from .validate import telemetry_dirs
    sections: List[str] = []
    if os.path.isdir(root):
        for directory in telemetry_dirs(root):
            stats, events = load_directory(directory)
            title = os.path.relpath(directory, root)
            if title == ".":
                title = root
            sections.append(render_status(title, stats, events))
    if not sections:
        return f"=== {root} ===\n  (no telemetry artifacts found)"
    return "\n\n".join(sections)
