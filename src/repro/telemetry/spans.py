"""Span tracing over the campaign's virtual clock.

A *span* is a named region of the fuzzing hot path (``run_one``,
``mutate``, ``execute``, ``classify_compare``, ``sync``, ...). The
tracer accumulates, per span name, how many times the region ran and
how many **virtual cycles** elapsed inside it — virtual because the
campaign's notion of time is the modeled :class:`VirtualClock`, not the
host's wall clock (which statlint TEL001 bans from this package).

Two cost sources feed the same profile:

* **clock deltas** — :meth:`SpanTracer.span` reads the bound cycle
  counter on entry and exit, so a span around ``run_one`` captures
  everything charged while the seed was being fuzzed;
* **explicit attribution** — :meth:`SpanTracer.add` lets the cost model
  deposit already-priced cycles (per-op breakdowns from
  ``BitmapCostModel.exec_cycles``) without re-measuring them.

The disabled path matters more than the enabled one: a campaign built
without telemetry uses :data:`NULL_TRACER`, whose ``span`` handles are
one shared no-op object — entering a disabled span is two trivial
method calls with no allocation, keeping the hot loop's overhead within
the benchmark guard in ``benchmarks/test_bench_telemetry.py``.
"""

from __future__ import annotations

import functools
from typing import Callable, Dict, List, Optional

__all__ = [
    "Span", "SpanTracer", "NullSpan", "NullTracer", "NULL_TRACER",
    "SPAN_TAXONOMY",
]

#: Canonical span names used by the integrated stack, for docs and the
#: status view. Instrumentation may add more; these are the contract.
SPAN_TAXONOMY: Dict[str, str] = {
    "run_one": "one seed's full fuzzing round (energy loop included)",
    "mutate": "havoc mutation of a single input",
    "execute": "synthetic target execution producing an edge trace",
    "classify_compare": "bitmap classify + compare against virgin map",
    "cost_eval": "memsim cost-model evaluation of an execution shape",
    "sync": "parallel-session corpus synchronisation",
}


class Span:
    """Accumulated profile of one named region."""

    __slots__ = ("name", "calls", "cycles", "_tracer", "_entry")

    def __init__(self, name: str, tracer: "SpanTracer") -> None:
        self.name = name
        self.calls = 0
        self.cycles = 0.0
        self._tracer = tracer
        self._entry = 0.0

    def __enter__(self) -> "Span":
        self._entry = self._tracer._now()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.calls += 1
        self.cycles += self._tracer._now() - self._entry

    def as_dict(self) -> dict:
        return {"calls": self.calls, "cycles": self.cycles}


class SpanTracer:
    """Registry of spans keyed by name, measuring a bound cycle counter."""

    enabled = True

    def __init__(self, cycles_fn: Optional[Callable[[], float]] = None
                 ) -> None:
        self._cycles_fn = cycles_fn
        self._spans: Dict[str, Span] = {}

    def bind(self, cycles_fn: Callable[[], float]) -> None:
        """Attach the virtual-cycle counter spans measure against."""
        self._cycles_fn = cycles_fn

    def _now(self) -> float:
        return self._cycles_fn() if self._cycles_fn is not None else 0.0

    def span(self, name: str) -> Span:
        """Get-or-create the span handle for ``name``.

        Handles are stable: call sites fetch them once and reuse them,
        so the steady-state cost of an instrumented region is two
        attribute reads and an addition, not a dict lookup.
        """
        span = self._spans.get(name)
        if span is None:
            span = Span(name, self)
            self._spans[name] = span
        return span

    def add(self, name: str, cycles: float, calls: int = 1) -> None:
        """Deposit externally priced cycles into a span."""
        span = self.span(name)
        span.calls += calls
        span.cycles += cycles

    def trace(self, name: str) -> Callable:
        """Decorator form of :meth:`span`."""
        def decorate(fn: Callable) -> Callable:
            span = self.span(name)

            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                with span:
                    return fn(*args, **kwargs)
            return wrapper
        return decorate

    def profile(self) -> Dict[str, dict]:
        """Name-sorted {span: {calls, cycles}} view."""
        return {name: self._spans[name].as_dict()
                for name in sorted(self._spans)}

    # -- checkpoint support -------------------------------------------

    def dump_state(self) -> Dict[str, List[float]]:
        return {name: [span.calls, span.cycles]
                for name, span in sorted(self._spans.items())}

    def load_state(self, state: Dict[str, List[float]]) -> None:
        for name, span in self._spans.items():
            if name in state:
                span.calls, span.cycles = int(state[name][0]), state[name][1]
            else:
                span.calls, span.cycles = 0, 0.0


class NullSpan:
    """Shared no-op span handle for disabled telemetry."""

    __slots__ = ()
    calls = 0
    cycles = 0.0

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = NullSpan()


class NullTracer:
    """Tracer that records nothing; every span is the same no-op handle."""

    __slots__ = ()
    enabled = False

    def bind(self, cycles_fn: Callable[[], float]) -> None:
        return None

    def span(self, name: str) -> NullSpan:
        return _NULL_SPAN

    def add(self, name: str, cycles: float, calls: int = 1) -> None:
        return None

    def trace(self, name: str) -> Callable:
        def decorate(fn: Callable) -> Callable:
            return fn
        return decorate

    def profile(self) -> Dict[str, dict]:
        return {}

    def dump_state(self) -> Dict[str, List[float]]:
        return {}

    def load_state(self, state: Dict[str, List[float]]) -> None:
        return None


#: Process-wide disabled tracer; safe to share because it holds no state.
NULL_TRACER = NullTracer()
