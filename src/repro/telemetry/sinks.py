"""Event sinks: JSONL log, AFL artifact derivation, ring buffer.

A sink consumes the validated event stream (:mod:`.events`) and turns
it into one consumption surface:

* :class:`JsonlEventLog` — the full stream, one canonical-form JSON
  object per line (``events.jsonl``);
* :class:`AflStatsSink` — AFL-compatible ``fuzzer_stats`` and
  ``plot_data`` derived from lifecycle + snapshot events
  (:mod:`.aflstats` does the formatting);
* :class:`RingBufferSink` — the last *N* events in memory, powering the
  ``repro-fuzz telemetry`` live status view without unbounded growth.

Sinks never touch the filesystem; they expose ``artifacts()`` (file
name → rendered text) and the recorder decides where files land. Every
sink supports ``dump_state``/``load_state`` with **full value copies**
so a checkpoint restored into a fresh process reproduces the artifact
prefix exactly — the foundation of the byte-identical-resume test.

Canonical encoding: ``sort_keys=True`` and ``(",", ":")`` separators,
so the byte stream is a pure function of the event values.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .aflstats import plot_row, render_fuzzer_stats, render_plot_data

__all__ = ["encode_event", "Sink", "JsonlEventLog", "RingBufferSink",
           "AflStatsSink"]


def encode_event(event: dict) -> str:
    """Canonical single-line JSON encoding of one event."""
    return json.dumps(event, sort_keys=True, separators=(",", ":"))


class Sink:
    """Interface all sinks implement."""

    def emit(self, event: dict) -> None:
        raise NotImplementedError

    def artifacts(self) -> Dict[str, str]:
        """File name -> rendered content; empty for in-memory sinks."""
        return {}

    def dump_state(self) -> object:
        raise NotImplementedError

    def load_state(self, state: object) -> None:
        raise NotImplementedError


class JsonlEventLog(Sink):
    """Accumulates the full event stream for ``events.jsonl``."""

    filename = "events.jsonl"

    def __init__(self) -> None:
        self.events: List[dict] = []

    def emit(self, event: dict) -> None:
        self.events.append(event)

    def artifacts(self) -> Dict[str, str]:
        if not self.events:
            return {}
        lines = [encode_event(e) for e in self.events]
        return {self.filename: "\n".join(lines) + "\n"}

    def dump_state(self) -> List[dict]:
        return [dict(e) for e in self.events]

    def load_state(self, state: List[dict]) -> None:
        self.events = [dict(e) for e in state]


class RingBufferSink(Sink):
    """Keeps the most recent ``size`` events for live introspection."""

    def __init__(self, size: int = 256) -> None:
        self.size = size
        self.events: List[dict] = []

    def emit(self, event: dict) -> None:
        self.events.append(event)
        if len(self.events) > self.size:
            del self.events[:len(self.events) - self.size]

    def dump_state(self) -> List[dict]:
        return [dict(e) for e in self.events]

    def load_state(self, state: List[dict]) -> None:
        self.events = [dict(e) for e in state][-self.size:]


class AflStatsSink(Sink):
    """Derives AFL ``fuzzer_stats`` + ``plot_data`` from the stream.

    ``campaign_start`` pins the static fields (banner, map size),
    every ``snapshot`` appends one plot row and refreshes the running
    stats, ``campaign_finish`` marks the series complete. All times are
    virtual seconds; ``start_time`` is therefore always 0 and
    ``fuzzer_pid`` 0 (there is no process).
    """

    def __init__(self) -> None:
        self.start: Dict[str, object] = {}
        self.last: Dict[str, object] = {}
        self.finish: Dict[str, object] = {}
        self.rows: List[List[object]] = []

    def emit(self, event: dict) -> None:
        kind = event["kind"]
        if kind == "campaign_start":
            self.start = dict(event)
        elif kind == "snapshot":
            self.last = dict(event)
            self.rows.append(plot_row({
                "relative_time": int(event["t"]),
                "cycles_done": event["queue_cycles"],
                "cur_path": event["cur_path"],
                "paths_total": event["queue_depth"],
                "pending_total": event["pending_total"],
                "pending_favs": event["pending_favs"],
                "map_size": int(self.start.get("map_size", 0)),
                "unique_crashes": event["crashes"],
                "unique_hangs": event["hangs"],
                "max_depth": event["max_depth"],
                "execs_per_sec": event["execs_per_sec"],
            }))
        elif kind == "campaign_finish":
            self.finish = dict(event)

    def fuzzer_stats(self) -> Dict[str, object]:
        last = self.last
        density = float(last.get("map_density", 0.0))
        return {
            "start_time": 0,
            "last_update": int(float(last.get("t", 0.0))),
            "fuzzer_pid": 0,
            "cycles_done": int(last.get("queue_cycles", 0)),
            "execs_done": int(last.get("execs", 0)),
            "execs_per_sec": float(last.get("execs_per_sec", 0.0)),
            "paths_total": int(last.get("queue_depth", 0)),
            "paths_favored": int(last.get("favored", 0)),
            "paths_found": int(last.get("queue_depth", 0)),
            "paths_imported": 0,
            "max_depth": int(last.get("max_depth", 0)),
            "cur_path": int(last.get("cur_path", 0)),
            "pending_favs": int(last.get("pending_favs", 0)),
            "pending_total": int(last.get("pending_total", 0)),
            "unique_crashes": int(last.get("crashes", 0)),
            "unique_hangs": int(last.get("hangs", 0)),
            "bitmap_cvg": f"{density * 100.0:.2f}%",
            "afl_banner": str(self.start.get("benchmark", "unknown")),
            "afl_version": "repro-sim",
        }

    def artifacts(self) -> Dict[str, str]:
        if not self.rows and not self.start:
            return {}
        return {
            "fuzzer_stats": render_fuzzer_stats(self.fuzzer_stats()),
            "plot_data": render_plot_data(self.rows),
        }

    def dump_state(self) -> dict:
        return {"start": dict(self.start), "last": dict(self.last),
                "finish": dict(self.finish),
                "rows": [list(r) for r in self.rows]}

    def load_state(self, state: dict) -> None:
        self.start = dict(state["start"])
        self.last = dict(state["last"])
        self.finish = dict(state["finish"])
        self.rows = [list(r) for r in state["rows"]]
