"""Deterministic fleet-level fault plans: chaos for the dispatcher.

:class:`FaultPlan` (:mod:`repro.faults.plan`) schedules faults over the
*virtual* timeline of one parallel session. A :class:`FleetFaultPlan`
does the same one layer up, over the **dispatch-loop tick timeline** of
a whole fleet: each iteration of
:class:`repro.fleet.FleetDispatcher`'s run loop is one tick, and events
fire when the fleet's cumulative tick counter (which keeps counting
across dispatcher kills and resumes) reaches their ``at_tick``.

Six kinds cover the failure modes the crash-safety contract
(DESIGN.md §10) promises to survive:

* ``dispatcher-kill`` — the dispatcher itself dies mid-fleet; recovery
  is ``fleet --resume`` reconciling the results store against on-disk
  worker artifacts.
* ``worker-kill`` / ``worker-stall`` — one trial's worker dies or
  wedges (lowered onto the existing per-trial
  :class:`repro.fleet.TrialFault` machinery); recovery is the
  supervisor's checkpoint retry.
* ``artifact-corrupt`` / ``artifact-truncate`` — a trial's checkpoint
  is damaged on disk (flipped bytes / torn tail); recovery is the
  integrity seal detecting it, quarantining the file, and rerunning
  deterministically from scratch.
* ``store-lock`` — the results store's next writes fail with transient
  ``database is locked`` errors; recovery is the store's bounded
  seeded-jitter retry.

Ticks, like virtual seconds, are pure data: a fleet on the in-process
backend driven twice with the same spec and plan recovers through the
same sequence of faults and produces bit-identical trial rows — the
property the ``fleet-chaos`` experiment asserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..core.errors import FaultPlanError

#: Fleet fault kinds (see module docstring for semantics).
DISPATCHER_KILL = "dispatcher-kill"
WORKER_KILL = "worker-kill"
WORKER_STALL = "worker-stall"
ARTIFACT_CORRUPT = "artifact-corrupt"
ARTIFACT_TRUNCATE = "artifact-truncate"
STORE_LOCK = "store-lock"
FLEET_FAULT_KINDS: Tuple[str, ...] = (
    DISPATCHER_KILL, WORKER_KILL, WORKER_STALL,
    ARTIFACT_CORRUPT, ARTIFACT_TRUNCATE, STORE_LOCK)

#: Kinds that target one trial (``trial`` must be set).
TRIAL_SCOPED: Tuple[str, ...] = (
    WORKER_KILL, WORKER_STALL, ARTIFACT_CORRUPT, ARTIFACT_TRUNCATE)


@dataclass(frozen=True)
class FleetFaultEvent:
    """One scheduled fleet-level fault.

    Attributes:
        at_tick: cumulative dispatch-loop tick at which the fault
            fires (ticks keep counting across dispatcher restarts).
        kind: one of :data:`FLEET_FAULT_KINDS`.
        trial: targeted trial id (trial-scoped kinds; -1 otherwise).
        at_segment: for worker faults, the checkpoint segment after
            which the worker dies/stalls (forwarded into
            :class:`repro.fleet.TrialFault`).
        lock_count: for ``store-lock``, how many consecutive store
            operations fail before succeeding (must stay below the
            store's retry budget for the fleet to survive — that *is*
            the assertion).
    """

    at_tick: int
    kind: str
    trial: int = -1
    at_segment: int = 1
    lock_count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FLEET_FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fleet fault kind {self.kind!r}; known: "
                f"{', '.join(FLEET_FAULT_KINDS)}")
        if self.at_tick < 0:
            raise FaultPlanError(
                f"at_tick must be >= 0, got {self.at_tick}")
        if self.kind in TRIAL_SCOPED and self.trial < 0:
            raise FaultPlanError(
                f"{self.kind} events must name a trial (got "
                f"{self.trial})")
        if self.at_segment < 0:
            raise FaultPlanError("at_segment must be >= 0")
        if self.lock_count < 1:
            raise FaultPlanError("lock_count must be >= 1")


class FleetFaultPlan:
    """An immutable, tick-ordered schedule of :class:`FleetFaultEvent`.

    The empty plan is the identity: a fleet driven with it behaves
    exactly like one driven without chaos at all.
    """

    def __init__(self, events: Iterable[FleetFaultEvent] = ()) -> None:
        self.events: Tuple[FleetFaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.at_tick, e.kind, e.trial)))

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def __iter__(self):
        return iter(self.events)

    def worker_faults(self) -> List[FleetFaultEvent]:
        """The worker-kill/stall events (lowered onto spec faults)."""
        return [e for e in self.events
                if e.kind in (WORKER_KILL, WORKER_STALL)]

    def at(self, tick: int) -> List[FleetFaultEvent]:
        """Events scheduled exactly at ``tick``."""
        return [e for e in self.events if e.at_tick == tick]

    def max_trial(self) -> int:
        """Highest trial id any event addresses (-1 if none)."""
        return max((e.trial for e in self.events), default=-1)

    def validate_for(self, n_trials: int) -> None:
        """Reject events addressed beyond the fleet's expansion."""
        if self.max_trial() >= n_trials:
            raise FaultPlanError(
                f"plan addresses trial {self.max_trial()} but the "
                f"fleet expands to {n_trials} trials")

    @classmethod
    def generate(cls, *, seed: int, n_trials: int, horizon: int,
                 n_events: int,
                 kinds: Sequence[str] = FLEET_FAULT_KINDS,
                 max_segment: int = 2) -> "FleetFaultPlan":
        """Draw a random plan, deterministically from ``seed``.

        Args:
            seed: RNG seed; equal seeds give equal plans.
            n_trials: fleet size trial-scoped events are spread over.
            horizon: tick range events fall within (``[1, horizon]`` —
                tick 0 is skipped so every run makes *some* progress
                before the first fault).
            n_events: exact number of events to draw.
            kinds: fault kinds to draw from (uniformly).
            max_segment: worker faults fire after a segment drawn from
                ``[0, max_segment]``.
        """
        if n_trials < 1:
            raise FaultPlanError("need at least one trial")
        if horizon < 1:
            raise FaultPlanError("horizon must be >= 1")
        if n_events < 0:
            raise FaultPlanError("n_events must be >= 0")
        for kind in kinds:
            if kind not in FLEET_FAULT_KINDS:
                raise FaultPlanError(
                    f"unknown fleet fault kind {kind!r}")
        rng = np.random.default_rng(seed)
        events: List[FleetFaultEvent] = []
        for _ in range(n_events):
            kind = kinds[int(rng.integers(0, len(kinds)))]
            events.append(FleetFaultEvent(
                at_tick=int(rng.integers(1, horizon + 1)),
                kind=kind,
                trial=(int(rng.integers(0, n_trials))
                       if kind in TRIAL_SCOPED else -1),
                at_segment=int(rng.integers(0, max_segment + 1)),
                lock_count=int(rng.integers(1, 3))))
        return cls(events)
