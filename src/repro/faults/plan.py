"""Deterministic fault plans: virtual-time fault schedules.

A :class:`FaultPlan` is a fixed schedule of fault events over the
*virtual* timeline of a parallel session — the same timeline the cost
model advances (:mod:`repro.fuzzer.clock`). Because events are pure
virtual-time data (no wall clocks, no OS signals), a session replayed
with the same plan and RNG seeds is bit-identical, faults included;
this is what makes fault-tolerance experiments repeatable in the sense
Klees et al. demand of fuzzing evaluations.

Four fault kinds model the failure modes real ``-M``/``-S`` fleets see:

* ``crash`` — the instance process dies (OOM kill, target wedging the
  fork server). All in-memory state is lost; the supervisor restarts it
  from its last checkpoint after a backoff.
* ``stall`` — the instance stops making progress while staying alive
  (a hung target without a working timeout). Wall time keeps passing;
  the supervisor detects the flat heartbeat and restarts it.
* ``slow`` — the instance keeps running but every execution costs
  ``magnitude``× the modeled cycles for ``duration`` virtual seconds
  (noisy neighbours, thermal throttling).
* ``corrupt-sync`` — the instance's next sync export is corrupt; peers
  quarantine the payload instead of importing it (truncated queue
  files, torn writes in the sync directory).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..core.errors import FaultPlanError

#: Fault kinds (see module docstring for semantics).
CRASH = "crash"
STALL = "stall"
SLOW = "slow"
CORRUPT_SYNC = "corrupt-sync"
FAULT_KINDS: Tuple[str, ...] = (CRASH, STALL, SLOW, CORRUPT_SYNC)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Attributes:
        time: virtual seconds into the session at which the fault fires.
        instance: index of the targeted instance.
        kind: one of :data:`FAULT_KINDS`.
        duration: virtual seconds the effect lasts (``slow`` only;
            ``stall`` lasts until the supervisor intervenes and the
            other kinds are instantaneous).
        magnitude: cycle-cost multiplier while a ``slow`` fault is
            active (must be >= 1).
    """

    time: float
    instance: int
    kind: str
    duration: float = 0.0
    magnitude: float = 2.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; known: "
                f"{', '.join(FAULT_KINDS)}")
        if self.time < 0:
            raise FaultPlanError(f"event time must be >= 0, got {self.time}")
        if self.instance < 0:
            raise FaultPlanError(
                f"instance index must be >= 0, got {self.instance}")
        if self.duration < 0:
            raise FaultPlanError(
                f"duration must be >= 0, got {self.duration}")
        if self.magnitude < 1.0:
            raise FaultPlanError(
                f"slow magnitude must be >= 1, got {self.magnitude}")


class FaultPlan:
    """An immutable, time-ordered schedule of :class:`FaultEvent`.

    The empty plan is the identity: a session driven with it behaves
    exactly like one driven without fault injection at all.
    """

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        self.events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.time, e.instance)))

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        # An empty plan is falsy so ``session(fault_plan=FaultPlan())``
        # takes the exact no-injection code path.
        return bool(self.events)

    def __iter__(self):
        return iter(self.events)

    def max_instance(self) -> int:
        """Highest instance index any event addresses (-1 if empty)."""
        return max((e.instance for e in self.events), default=-1)

    def validate_for(self, n_instances: int) -> None:
        """Reject events addressed beyond the session's fleet."""
        if self.max_instance() >= n_instances:
            raise FaultPlanError(
                f"plan addresses instance {self.max_instance()} but the "
                f"session has only {n_instances} instances")

    def for_instance(self, instance: int) -> List[FaultEvent]:
        return [e for e in self.events if e.instance == instance]

    def events_in(self, instance: int, start: float,
                  end: float) -> List[FaultEvent]:
        """Events for ``instance`` with ``start <= time < end``."""
        return [e for e in self.events
                if e.instance == instance and start <= e.time < end]

    @classmethod
    def generate(cls, *, seed: int, n_instances: int, horizon: float,
                 rate: float, kinds: Sequence[str] = FAULT_KINDS,
                 mean_duration: float = 0.0,
                 slow_magnitude: float = 3.0) -> "FaultPlan":
        """Draw a random plan, deterministically from ``seed``.

        Args:
            seed: RNG seed; equal seeds give equal plans.
            n_instances: fleet size events are spread over.
            horizon: virtual session length the events fall within.
            rate: expected number of events *per instance* over the
                horizon (Poisson).
            kinds: fault kinds to draw from (uniformly).
            mean_duration: mean ``slow`` window (exponential); 0 means
                one tenth of the horizon.
            slow_magnitude: magnitude for generated ``slow`` events.
        """
        if n_instances < 1:
            raise FaultPlanError("need at least one instance")
        if horizon <= 0:
            raise FaultPlanError("horizon must be positive")
        if rate < 0:
            raise FaultPlanError("rate must be >= 0")
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise FaultPlanError(f"unknown fault kind {kind!r}")
        rng = np.random.default_rng(seed)
        mean_dur = mean_duration or horizon / 10.0
        events: List[FaultEvent] = []
        for instance in range(n_instances):
            for _ in range(int(rng.poisson(rate))):
                kind = kinds[int(rng.integers(0, len(kinds)))]
                events.append(FaultEvent(
                    time=float(rng.uniform(0.0, horizon)),
                    instance=instance, kind=kind,
                    duration=float(rng.exponential(mean_dur))
                    if kind == SLOW else 0.0,
                    magnitude=slow_magnitude))
        return cls(events)
