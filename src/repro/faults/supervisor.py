"""Supervision policy and per-instance state for parallel sessions.

The supervisor is the bookkeeping half of fault tolerance: it tracks
each instance's liveness, decides when a dead or stalled instance may
be restarted (exponential backoff, retry cap), and accumulates the
fault/restart/quarantine counters the session reports. The *mechanics*
of restarting — checkpoint restore, clock adjustment — live in
:class:`repro.fuzzer.ParallelSession`, which owns the campaigns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

#: Instance lifecycle states.
RUNNING = "running"
DEAD = "dead"          # awaiting a scheduled restart
LOST = "lost"          # retry budget exhausted; permanently excluded


@dataclass(frozen=True)
class RestartPolicy:
    """Exponential-backoff restart policy.

    Attributes:
        max_restarts: restarts allowed per instance before it is
            declared lost (0 disables restarting entirely).
        backoff_base: delay before the first restart, virtual seconds.
        backoff_factor: multiplier applied per successive restart.
        backoff_cap: upper bound on any single delay.
    """

    max_restarts: int = 3
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    backoff_cap: float = 30.0

    def backoff(self, prior_restarts: int) -> float:
        """Delay before restart number ``prior_restarts + 1``."""
        delay = self.backoff_base * (self.backoff_factor ** prior_restarts)
        return min(delay, self.backoff_cap)


@dataclass
class InstanceHealth:
    """Mutable supervision state of one instance."""

    status: str = RUNNING
    restarts: int = 0
    faults: int = 0
    restart_at: float = 0.0
    #: ``slow`` fault window: extra cycle multiplier until ``slow_until``.
    slow_factor: float = 1.0
    slow_until: float = 0.0
    #: Next sync export from this instance is corrupt (quarantined).
    corrupt_export: bool = False
    #: Virtual time the instance stopped making progress (stall fault).
    stalled_since: Optional[float] = None
    #: Heartbeat snapshot: execs at the start of the current slice.
    execs_at_slice_start: int = 0
    #: Whether the instance had room to make progress this slice (set
    #: false after a mid-slice restart so the heartbeat check does not
    #: misread the post-restore counters as a stall).
    had_capacity: bool = False
    failures: List[str] = field(default_factory=list)

    @property
    def live(self) -> bool:
        return self.status == RUNNING


class SessionSupervisor:
    """Tracks health and restart budgets for a fleet of instances.

    Args:
        n_instances: fleet size.
        policy: restart policy (defaults to :class:`RestartPolicy`).
        telemetry: optional
            :class:`~repro.telemetry.SessionTelemetry`; when given,
            every supervision decision — fault, restart, stall,
            quarantine — is emitted as a session-level event tagged
            with the affected instance.
    """

    def __init__(self, n_instances: int,
                 policy: Optional[RestartPolicy] = None,
                 telemetry=None) -> None:
        self.policy = policy or RestartPolicy()
        self.health: List[InstanceHealth] = [
            InstanceHealth() for _ in range(n_instances)]
        self.quarantined_imports = 0
        self.telemetry = telemetry

    def _emit(self, kind: str, t: float, instance: int,
              **payload) -> None:
        if self.telemetry is not None:
            self.telemetry.session.emit(kind, t, instance=instance,
                                        **payload)

    def __getitem__(self, i: int) -> InstanceHealth:
        return self.health[i]

    def live_indices(self) -> List[int]:
        return [i for i, h in enumerate(self.health) if h.live]

    def lost_indices(self) -> List[int]:
        return [i for i, h in enumerate(self.health) if h.status == LOST]

    def mark_failed(self, i: int, now: float, reason: str) -> str:
        """An instance died (crash fault, stall, or real exception).

        Schedules a restart with backoff if the retry budget allows,
        otherwise declares the instance lost. Returns the new status.
        """
        health = self.health[i]
        health.failures.append(f"t={now:.3f}: {reason}")
        health.stalled_since = None
        health.slow_factor = 1.0
        health.slow_until = 0.0
        if health.restarts >= self.policy.max_restarts:
            health.status = LOST
        else:
            health.status = DEAD
            health.restart_at = now + self.policy.backoff(health.restarts)
        self._emit("fault", now, i, status=health.status, reason=reason)
        return health.status

    def mark_restarted(self, i: int, now: float = 0.0) -> None:
        health = self.health[i]
        health.restarts += 1
        health.status = RUNNING
        self._emit("restart", now, i, restarts=health.restarts)

    def mark_stalled(self, i: int, now: float,
                     last_progress: float) -> None:
        """Record a detected stall (the failure itself follows via
        :meth:`mark_failed`; this event carries the heartbeat data)."""
        self._emit("stall", now, i, last_progress=last_progress)

    def mark_lost(self, i: int, now: float = 0.0,
                  reason: str = "unrecoverable") -> None:
        self.health[i].status = LOST
        self._emit("fault", now, i, status=LOST, reason=reason)

    def mark_quarantined(self, importer: int, exporter: int,
                         now: float = 0.0, entries: int = 1) -> None:
        """Corrupt sync payload dropped before reaching ``importer``."""
        self.quarantined_imports += entries
        self._emit("quarantine", now, importer,
                   exporter=exporter, entries=entries)

    def slice_began(self, i: int, execs: int) -> None:
        self.health[i].execs_at_slice_start = execs

    def progressed(self, i: int, execs: int) -> bool:
        """Heartbeat check: did the instance execute anything this slice?"""
        return execs > self.health[i].execs_at_slice_start

    @property
    def total_faults(self) -> int:
        return sum(h.faults for h in self.health)
