"""Fault injection and supervision for parallel fuzzing sessions.

Public surface:

* :class:`FaultEvent` / :class:`FaultPlan` — deterministic, seeded
  virtual-time fault schedules (``crash``, ``stall``, ``slow``,
  ``corrupt-sync``).
* :class:`FaultInjector` — session-facing cursor that fires each
  planned event exactly once.
* :class:`RestartPolicy` / :class:`SessionSupervisor` — exponential
  backoff, retry caps and per-instance health tracking used by
  :class:`repro.fuzzer.ParallelSession` to restart failed instances
  from their checkpoints.
* :class:`FleetFaultEvent` / :class:`FleetFaultPlan` — the fleet-level
  analogue: seeded dispatch-tick schedules of dispatcher kills, worker
  faults, artifact corruption and transient store IO errors, executed
  by :mod:`repro.fleet.chaos`.
"""

from .fleetplan import (ARTIFACT_CORRUPT, ARTIFACT_TRUNCATE,
                        DISPATCHER_KILL, FLEET_FAULT_KINDS, STORE_LOCK,
                        WORKER_KILL, WORKER_STALL, FleetFaultEvent,
                        FleetFaultPlan)
from .injector import FaultInjector
from .plan import (CORRUPT_SYNC, CRASH, FAULT_KINDS, SLOW, STALL,
                   FaultEvent, FaultPlan)
from .supervisor import (DEAD, LOST, RUNNING, InstanceHealth,
                         RestartPolicy, SessionSupervisor)

__all__ = [
    "CRASH", "STALL", "SLOW", "CORRUPT_SYNC", "FAULT_KINDS",
    "FaultEvent", "FaultPlan", "FaultInjector",
    "RUNNING", "DEAD", "LOST",
    "InstanceHealth", "RestartPolicy", "SessionSupervisor",
    "DISPATCHER_KILL", "WORKER_KILL", "WORKER_STALL",
    "ARTIFACT_CORRUPT", "ARTIFACT_TRUNCATE", "STORE_LOCK",
    "FLEET_FAULT_KINDS", "FleetFaultEvent", "FleetFaultPlan",
]
