"""Fault injector: feeds a plan's events to a running session.

The injector is the session-facing view of a :class:`FaultPlan`: the
supervisor asks it, once per instance per slice, which events fire in
the slice's virtual-time window. Every event fires exactly once —
restarted instances whose clocks jump backwards (checkpoint restore)
never replay a fault they already suffered, which keeps a plan's event
count equal to the number of injected faults regardless of restart
history.
"""

from __future__ import annotations

from typing import List, Optional, Set

from .plan import FaultEvent, FaultPlan


class FaultInjector:
    """Stateful cursor over a :class:`FaultPlan`."""

    def __init__(self, plan: Optional[FaultPlan]) -> None:
        self.plan = plan or FaultPlan()
        self._fired: Set[FaultEvent] = set()

    def take(self, instance: int, start: float,
             end: float) -> List[FaultEvent]:
        """Unfired events for ``instance`` in ``[start, end)``.

        Returned events are marked fired — a second call over an
        overlapping window yields nothing.
        """
        out = []
        for event in self.plan.events_in(instance, start, end):
            if event not in self._fired:
                self._fired.add(event)
                out.append(event)
        return out

    @property
    def fired_events(self) -> int:
        return len(self._fired)
