"""The laf-intel transform: splitting multi-byte compares.

laf-intel [11] rewrites every multi-byte comparison into a cascade of
single-byte comparisons (and deconstructs switches and strcmp/memcmp
calls the same way). Each sub-comparison is its own CFG edge, so:

* the static edge count inflates severalfold (LLVM-opt: 977k → ~5.5M);
* previously monolithic magic checks become *gradually* discoverable —
  matching byte 1 of 4 is new coverage the fuzzer can hill-climb on.

Our synthetic equivalent transforms a :class:`Program`: every
``EQ_MULTI`` edge of width *w* becomes a chain of *w* ``BYTE_EQ`` edges
checking consecutive input bytes against the magic value. The final
chain edge inherits the original edge's children, loop behaviour and
crash site. The transform is fully vectorized.
"""

from __future__ import annotations

import numpy as np

from ..target.cfg import (NO_CRASH, NO_LOOP, NO_PARENT, Guard,
                          MAX_MAGIC_WIDTH, Program)
from ..target.generator import _build_csr

#: Default static-edge inflation, matching LLVM-opt's 977,899 → ~5.5M.
DEFAULT_STATIC_EXPANSION = 5.63


def apply_lafintel(program: Program, *,
                   static_expansion: float = DEFAULT_STATIC_EXPANSION
                   ) -> Program:
    """Return a laf-intel-transformed copy of ``program``.

    Single-byte guards are untouched; ``EQ_MULTI`` guards of width *w*
    expand into *w*-edge ``BYTE_EQ`` chains. Edge order (and therefore
    the parents-before-children invariant) is preserved.
    """
    n = program.n_edges
    kind = program.kind
    widths = np.where(kind == np.uint8(Guard.EQ_MULTI),
                      program.width, 1).astype(np.int64)
    new_n = int(widths.sum())
    if new_n == n:  # nothing to split
        return program

    # Mapping tables between old and new index spaces.
    final_of_old = np.cumsum(widths) - 1
    prefix = final_of_old - (widths - 1)  # first new index per old edge
    old_of_new = np.repeat(np.arange(n, dtype=np.int64), widths)
    chain_pos = np.arange(new_n, dtype=np.int64) - np.repeat(prefix, widths)
    is_final = chain_pos == widths[old_of_new] - 1
    is_chain_head = chain_pos == 0

    # Parents: chain heads attach to the old parent's *final* edge;
    # later chain links attach to their predecessor.
    old_parent = program.parent[old_of_new]
    head_parent = np.where(old_parent == NO_PARENT, NO_PARENT,
                           final_of_old[np.maximum(old_parent, 0)])
    parent = np.where(is_chain_head, head_parent,
                      np.arange(new_n, dtype=np.int64) - 1)

    # Guards. Split edges check input[off + pos] == magic[pos]; edges
    # that were never EQ_MULTI copy their guard through unchanged.
    was_multi = kind[old_of_new] == np.uint8(Guard.EQ_MULTI)
    new_kind = np.where(was_multi, np.uint8(Guard.BYTE_EQ),
                        kind[old_of_new])
    new_off = np.where(was_multi,
                       program.off[old_of_new] + chain_pos,
                       program.off[old_of_new]).astype(np.int32)
    magic_byte = program.magic[old_of_new,
                               np.minimum(chain_pos, MAX_MAGIC_WIDTH - 1)]
    new_val = np.where(was_multi, magic_byte, program.val[old_of_new])

    new_width = np.ones(new_n, dtype=np.int32)
    new_magic = np.zeros((new_n, MAX_MAGIC_WIDTH), dtype=np.uint8)

    # Loop behaviour and crash sites live on the final edge only.
    new_loop_off = np.where(is_final, program.loop_off[old_of_new],
                            NO_LOOP).astype(np.int32)
    new_loop_cap = np.where(is_final, program.loop_cap[old_of_new],
                            1).astype(np.int64)
    new_crash = np.where(is_final, program.crash_site[old_of_new],
                         NO_CRASH).astype(np.int32)

    depth = _recompute_depths(parent)

    dst_block = np.arange(1, new_n + 1, dtype=np.int64)
    src_block = np.where(parent == NO_PARENT, 0,
                         dst_block[np.maximum(parent, 0)])
    child_off, child_idx = _build_csr(parent, new_n)

    meta = dict(program.meta)
    meta["laf_applied"] = True
    meta["laf_expansion"] = new_n / n
    if "magic_region" in meta:
        meta["magic_region"] = np.asarray(meta["magic_region"])[old_of_new]

    return Program(
        name=f"{program.name}+laf", input_len=program.input_len,
        parent=parent, depth=depth, kind=new_kind.astype(np.uint8),
        off=new_off, val=new_val.astype(np.uint8), width=new_width,
        magic=new_magic, loop_off=new_loop_off, loop_cap=new_loop_cap,
        src_block=src_block, dst_block=dst_block, crash_site=new_crash,
        child_off=child_off, child_idx=child_idx,
        roots=np.flatnonzero(parent == NO_PARENT),
        n_blocks=new_n + 1,
        static_edges=int(round(program.static_edges * static_expansion)),
        meta=meta)


def _recompute_depths(parent: np.ndarray) -> np.ndarray:
    """Depths from scratch, one vectorized relaxation per level."""
    n = parent.size
    depth = np.full(n, -1, dtype=np.int32)
    depth[parent == NO_PARENT] = 0
    for _ in range(n):
        unknown = np.flatnonzero(depth < 0)
        if unknown.size == 0:
            break
        parent_depth = depth[parent[unknown]]
        ready = parent_depth >= 0
        if not ready.any():
            raise AssertionError("orphaned edges: parent depths never "
                                 "resolve")
        depth[unknown[ready]] = parent_depth[ready] + 1
    return depth
