"""Coverage-metric pipelines: edge hashing, N-gram, context, laf-intel.

Public surface:

* :class:`Instrumentation` — the metric interface (trace → map keys).
* :class:`AflEdgeInstrumentation` — classic AFL ``(Bx>>1)^By`` hashing.
* :class:`TracePCGuardInstrumentation` — sequential static IDs.
* :class:`NGramInstrumentation` — last-N-blocks partial path coverage.
* :class:`ContextSensitiveInstrumentation` — Angora-style contexts.
* :func:`apply_lafintel` — the multi-byte-compare splitting transform.
* :func:`build_instrumentation` / :func:`compose_lafintel_ngram` —
  factories used by experiments and examples.
"""

from .collafl import CollAflInstrumentation, required_map_size
from .context import ContextSensitiveInstrumentation
from .edge_ids import (AflEdgeInstrumentation, Instrumentation,
                       TracePCGuardInstrumentation, afl_edge_keys,
                       assign_block_ids)
from .lafintel import DEFAULT_STATIC_EXPANSION, apply_lafintel
from .ngram import NGramInstrumentation, ngram_base_keys
from .pipeline import (build_instrumentation, compose_lafintel_ngram,
                       metric_names)

__all__ = [
    "CollAflInstrumentation", "required_map_size",
    "ContextSensitiveInstrumentation",
    "AflEdgeInstrumentation", "Instrumentation",
    "TracePCGuardInstrumentation", "afl_edge_keys", "assign_block_ids",
    "DEFAULT_STATIC_EXPANSION", "apply_lafintel",
    "NGramInstrumentation", "ngram_base_keys",
    "build_instrumentation", "compose_lafintel_ngram", "metric_names",
]
