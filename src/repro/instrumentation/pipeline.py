"""Factory for instrumentation pipelines and metric compositions.

The paper's key flexibility claim (§IV-D) is that *anything* producing
bitmap keys can sit in front of BigMap. This module is the one place
that knows every metric's name, so experiments and examples can say
``build_instrumentation("ngram3", program, map_size)`` and the §V-C
composition is ``apply_lafintel(program)`` + ``"ngram3"``.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..target.cfg import Program
from .collafl import CollAflInstrumentation
from .context import ContextSensitiveInstrumentation
from .edge_ids import (AflEdgeInstrumentation, Instrumentation,
                       TracePCGuardInstrumentation)
from .lafintel import apply_lafintel
from .ngram import NGramInstrumentation

_BUILDERS: Dict[str, Callable[..., Instrumentation]] = {
    "afl-edge": AflEdgeInstrumentation,
    "trace-pc-guard": TracePCGuardInstrumentation,
    "ngram2": lambda program, map_size, seed=0: NGramInstrumentation(
        program, map_size, n=2, seed=seed),
    "ngram3": lambda program, map_size, seed=0: NGramInstrumentation(
        program, map_size, n=3, seed=seed),
    "ngram4": lambda program, map_size, seed=0: NGramInstrumentation(
        program, map_size, n=4, seed=seed),
    "afl-edge+context": ContextSensitiveInstrumentation,
    "collafl": CollAflInstrumentation,
}


def metric_names() -> list:
    """All registered coverage-metric names."""
    return sorted(_BUILDERS)


def build_instrumentation(metric: str, program: Program, map_size: int,
                          seed: int = 0) -> Instrumentation:
    """Instantiate a coverage metric by name.

    Args:
        metric: one of :func:`metric_names`.
        program: target program (already laf-transformed if desired).
        map_size: coverage bitmap size (power of two).
        seed: compile-time randomness (block IDs, context salts).
    """
    try:
        builder = _BUILDERS[metric]
    except KeyError:
        raise ValueError(f"unknown metric {metric!r}; known: "
                         f"{', '.join(metric_names())}") from None
    return builder(program, map_size, seed=seed)


def compose_lafintel_ngram(program: Program, map_size: int, *,
                           n: int = 3, seed: int = 0) -> Instrumentation:
    """The paper's §V-C composition: laf-intel + N-gram (default N=3)."""
    transformed = apply_lafintel(program)
    return NGramInstrumentation(transformed, map_size, n=n, seed=seed)
