"""N-gram coverage: hashing the last N blocks instead of the last two.

AFL's edge metric keys on ``(src, dst)``; the N-gram metric [Wang et
al., RAID'19] keys on the last N basic blocks, capturing partial path
context. The same CFG edge reached through different histories emits
*different* keys, so N-gram puts several times more pressure on the
coverage bitmap — which is exactly why the paper pairs it with BigMap.

In our tree-structured programs an edge has one static ancestor chain,
so the pure last-N hash alone would not amplify the key count. Real
path-context diversity (functions called from many sites, loops entered
in different states) is modeled explicitly: each edge carries
``1..max_contexts`` context variants, and which variant an execution
emits depends on a checksum of the input — different inputs exercising
the edge through different "histories" touch different keys. The
expected number of distinct keys is therefore about ``mean_contexts``
times the edge count.
"""

from __future__ import annotations

import zlib
from typing import Tuple

import numpy as np

from ..target.cfg import NO_PARENT, Program
from ..target.executor import ExecResult
from .edge_ids import Instrumentation, assign_block_ids

#: Knuth multiplicative-hash constant for key mixing.
_MIX = np.int64(0x9E3779B1)


def ngram_base_keys(program: Program, n: int, map_size: int,
                    seed: int) -> np.ndarray:
    """Static per-edge hash of the last ``n`` blocks on the edge's path.

    Computed bottom-up with vectorized parent gathers: the key of an
    edge combines its destination block ID with its ``n-1`` nearest
    ancestors' destination blocks (fewer near the roots, as in AFL++'s
    implementation where history registers start zeroed).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    block_ids = assign_block_ids(program.n_blocks, map_size, seed)
    mask = np.int64(map_size - 1)
    keys = block_ids[program.dst_block].astype(np.int64)
    ancestor = program.parent.copy()
    for _ in range(n - 1):
        valid = ancestor != NO_PARENT
        contrib = np.zeros_like(keys)
        contrib[valid] = block_ids[
            program.dst_block[ancestor[valid]]]
        keys = ((keys * _MIX) ^ contrib) & mask
        next_anc = np.full_like(ancestor, NO_PARENT)
        next_anc[valid] = program.parent[ancestor[valid]]
        ancestor = next_anc
    return keys & mask


class NGramInstrumentation(Instrumentation):
    """N-gram (last-N-blocks) coverage keys with context variants.

    Args:
        program: the target.
        map_size: coverage bitmap size (power of two).
        n: history length; the paper's §V-C experiment uses N=3.
        seed: compile-time randomness.
        max_contexts: maximum context variants per edge (≥ 1).
        mean_contexts: average variants per edge; the effective key
            amplification factor (≈2 reproduces Table III's pressure).
    """

    def __init__(self, program: Program, map_size: int, *, n: int = 3,
                 seed: int = 0, max_contexts: int = 4,
                 mean_contexts: float = 2.0) -> None:
        super().__init__(program, map_size)
        if max_contexts < 1:
            raise ValueError(f"max_contexts must be >= 1, got "
                             f"{max_contexts}")
        if not 1 <= mean_contexts <= max_contexts:
            raise ValueError(
                f"mean_contexts must be in [1, {max_contexts}], got "
                f"{mean_contexts}")
        self.n = n
        self.name = f"ngram{n}"
        self.base_keys = ngram_base_keys(program, n, map_size, seed)
        rng = np.random.default_rng(np.random.PCG64(seed ^ 0x4E6))
        # Per-edge variant counts with the requested mean: draw from
        # {1, max_contexts} mixture then fill middles uniformly.
        self.n_contexts = self._draw_context_counts(
            rng, program.n_edges, max_contexts, mean_contexts)
        self.context_salt = rng.integers(
            0, np.iinfo(np.int64).max, size=program.n_edges,
            dtype=np.int64)

    @staticmethod
    def _draw_context_counts(rng: np.random.Generator, n_edges: int,
                             max_contexts: int,
                             mean_contexts: float) -> np.ndarray:
        if max_contexts == 1:
            return np.ones(n_edges, dtype=np.int64)
        # Uniform over {1..max} has mean (max+1)/2; blend with all-ones
        # to hit the requested mean.
        uniform_mean = (max_contexts + 1) / 2.0
        blend = (mean_contexts - 1.0) / max(uniform_mean - 1.0, 1e-9)
        blend = min(max(blend, 0.0), 1.0)
        counts = np.ones(n_edges, dtype=np.int64)
        varied = rng.random(n_edges) < blend
        counts[varied] = rng.integers(1, max_contexts + 1,
                                      size=int(varied.sum()))
        return counts

    def keys_for(self, result: ExecResult,
                 input_bytes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        edges = result.edges
        base = self.base_keys[edges]
        n_ctx = self.n_contexts[edges]
        checksum = np.int64(zlib.adler32(memoryview(
            np.ascontiguousarray(input_bytes))))
        variant = (checksum ^ self.context_salt[edges]) % n_ctx
        mask = np.int64(self.map_size - 1)
        keys = (base ^ ((variant * _MIX) & mask)) & mask
        return keys, result.counts

    def distinct_keys_possible(self) -> int:
        """Upper bound on distinct keys: every (edge, variant) pair.

        Collisions inside the hash space make the realized number
        slightly lower; Equation 1 quantifies by how much.
        """
        return int(self.n_contexts.sum())
