"""CollAFL-style collision-free edge IDs (paper §VI, related work).

CollAFL [Gan et al., S&P'18] removes hash collisions by *statically*
assigning edge IDs at link time: blocks with a single incoming edge get
a unique ID outright; remaining edges fall back to parameterized
hashing, re-solved until collision-free. Two properties the paper
highlights:

* the bitmap must be **sized to the static assignment** — every static
  edge needs a slot, even though only a fraction is ever visited
  (Table II: LLVM-opt has 978k static but ≤132k visited edges). The
  big map then costs AFL full-sweep time on every execution — which is
  exactly the overhead BigMap removes, making *CollAFL + BigMap* the
  natural combination (§VI: "used in combination ... to completely
  eliminate collisions while providing more efficient access");
* it only works for block/edge coverage — it cannot host N-gram or
  context metrics, unlike BigMap.

Our synthetic programs give every edge a unique (src, dst) pair, so the
static assignment covers all *materialized* edges; the ``static_edges``
metadata (the unvisited remainder of the notional binary) still forces
the map size up, reproducing the trade-off. Indirect-edge fallback
hashing is modeled with a configurable fraction, as in
:class:`~repro.instrumentation.edge_ids.TracePCGuardInstrumentation`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..target.cfg import Program
from ..target.executor import BatchExecResult, ExecResult
from .edge_ids import Instrumentation


def required_map_size(program: Program) -> int:
    """Smallest power-of-two map that fits CollAFL's static assignment.

    CollAFL reserves a slot per *static* edge (visited or not); the
    paper cites this as its map-bloat drawback.
    """
    needed = max(program.static_edges, 1)
    size = 1
    while size < needed:
        size <<= 1
    return size


class CollAflInstrumentation(Instrumentation):
    """Static, collision-free edge IDs with hashed indirect fallback.

    Args:
        program: the target.
        map_size: coverage bitmap size. Must fit the static assignment
            (``required_map_size``) for the collision-free guarantee;
            smaller maps fall back to modulo wrapping (and collisions),
            which the constructor reports via ``fully_static``.
        seed: randomness for the indirect-edge fallback hashing.
        indirect_fraction: fraction of edges whose destination is not
            statically known (function pointers, virtual calls).
    """

    name = "collafl"

    def __init__(self, program: Program, map_size: int, seed: int = 0,
                 indirect_fraction: float = 0.05) -> None:
        super().__init__(program, map_size)
        if not 0 <= indirect_fraction <= 1:
            raise ValueError(f"indirect_fraction must be in [0, 1], "
                             f"got {indirect_fraction}")
        rng = np.random.default_rng(np.random.PCG64(seed ^ 0xC0111))
        n = program.n_edges

        # Static pass: deterministic unique IDs, offset so that the
        # unvisited static remainder notionally occupies the tail.
        keys = np.arange(n, dtype=np.int64)
        self.fully_static = map_size >= program.static_edges
        if not self.fully_static:
            keys = keys % map_size

        # Indirect edges cannot be assigned statically: CollAFL hashes
        # them over the remaining space, with possible collisions.
        indirect = rng.random(n) < indirect_fraction
        n_ind = int(indirect.sum())
        if n_ind:
            keys[indirect] = rng.integers(0, map_size, size=n_ind,
                                          dtype=np.int64)
        self.edge_keys = keys
        self.indirect_mask = indirect

    def keys_for(self, result: ExecResult,
                 input_bytes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        return self.edge_keys[result.edges], result.counts

    def keys_for_batch(self, result: BatchExecResult, input_rows) \
            -> Tuple[np.ndarray, np.ndarray]:
        return self.edge_keys[result.edges], result.counts

    def distinct_keys_possible(self) -> int:
        return int(np.unique(self.edge_keys).size)

    def direct_collision_count(self) -> int:
        """Colliding *direct* edges — zero when ``fully_static``."""
        direct = self.edge_keys[~self.indirect_mask]
        return int(direct.size - np.unique(direct).size)
