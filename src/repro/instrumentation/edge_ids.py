"""Coverage-key pipelines: AFL edge hashing and trace-pc-guard IDs.

AFL's classic instrumentation (paper Listing 1) assigns every basic
block a random compile-time ID uniform over ``[0, MAP_SIZE)`` and keys
an edge as ``(B_src >> 1) ^ B_dst``. Distinct edges can collide — the
paper's central problem — and the collision probability falls as the
map grows, which is why instrumentations are parameterized by map size
(recompiling with a larger ``MAP_SIZE`` redraws the block IDs).

The alternative ``trace-pc-guard`` style instead numbers static edges
sequentially, which is collision-free for direct edges but cannot see
indirect edges (no destination known at compile time); those fall back
to runtime hashing (paper §II-A2).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence, Tuple

import numpy as np

from ..target.cfg import Program
from ..target.executor import BatchExecResult, ExecResult


class Instrumentation(ABC):
    """Maps an execution's edge trace to coverage-map keys.

    Implementations precompute a per-edge key table at construction so
    per-execution work is one gather.
    """

    #: Human-readable metric name, used in reports.
    name: str

    def __init__(self, program: Program, map_size: int) -> None:
        if map_size <= 0 or (map_size & (map_size - 1)) != 0:
            raise ValueError(
                f"map size must be a positive power of two, got {map_size}")
        self.program = program
        self.map_size = map_size

    @abstractmethod
    def keys_for(self, result: ExecResult,
                 input_bytes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(keys, counts)`` for one execution's trace."""

    def keys_for_batch(self, result: BatchExecResult,
                       input_rows: Sequence[np.ndarray]) \
            -> Tuple[np.ndarray, np.ndarray]:
        """Flat ``(keys, counts)`` for a whole batch, trace-segmented.

        Output arrays align with ``result.edges`` / ``result.offsets``;
        segment ``i`` holds exactly ``keys_for(result.result_for(i),
        input_rows[i])``. This base implementation loops per trace
        (input-dependent metrics like context/ngram need the exact
        per-row bytes); gather-table metrics override it with one flat
        gather.
        """
        keys = np.empty(result.edges.size, dtype=np.int64)
        counts = np.empty(result.edges.size, dtype=np.int64)
        for i in range(result.n):
            lo, hi = int(result.offsets[i]), int(result.offsets[i + 1])
            k, c = self.keys_for(result.result_for(i), input_rows[i])
            keys[lo:hi] = k
            counts[lo:hi] = c
        return keys, counts

    @abstractmethod
    def distinct_keys_possible(self) -> int:
        """Number of distinct keys this metric can emit on this program.

        This is the map pressure ``n`` in the collision-rate formula
        (Equation 1) and in Table II/III's collision-rate columns.
        """


def assign_block_ids(n_blocks: int, map_size: int,
                     seed: int) -> np.ndarray:
    """Compile-time random block IDs, uniform over ``[0, map_size)``."""
    rng = np.random.default_rng(np.random.PCG64(seed))
    return rng.integers(0, map_size, size=n_blocks, dtype=np.int64)


def afl_edge_keys(program: Program, map_size: int,
                  seed: int) -> np.ndarray:
    """Per-edge AFL keys: ``(block[src] >> 1) ^ block[dst]``.

    Both operands are below ``map_size`` (a power of two), so the XOR is
    too — no extra masking needed, exactly as in AFL.
    """
    block_ids = assign_block_ids(program.n_blocks, map_size, seed)
    return (block_ids[program.src_block] >> 1) ^ \
        block_ids[program.dst_block]


class AflEdgeInstrumentation(Instrumentation):
    """Classic AFL edge-hash instrumentation (Listing 1).

    Args:
        program: the target.
        map_size: coverage bitmap size (power of two).
        seed: compile-time randomness; a different seed is a recompile.
    """

    name = "afl-edge"

    def __init__(self, program: Program, map_size: int,
                 seed: int = 0) -> None:
        super().__init__(program, map_size)
        self.edge_keys = afl_edge_keys(program, map_size, seed)

    def keys_for(self, result: ExecResult,
                 input_bytes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        return self.edge_keys[result.edges], result.counts

    def keys_for_batch(self, result: BatchExecResult,
                       input_rows: Sequence[np.ndarray]) \
            -> Tuple[np.ndarray, np.ndarray]:
        return self.edge_keys[result.edges], result.counts

    def distinct_keys_possible(self) -> int:
        return int(np.unique(self.edge_keys).size)


class TracePCGuardInstrumentation(Instrumentation):
    """Sequential static-edge IDs à la Clang's trace-pc-guard.

    Direct edges get consecutive IDs (collision-free until the map is
    smaller than the number of static edges, when the modulo wraps);
    *indirect* edges — a configurable fraction — cannot be numbered at
    compile time and fall back to random hashing.
    """

    name = "trace-pc-guard"

    def __init__(self, program: Program, map_size: int, seed: int = 0,
                 indirect_fraction: float = 0.05) -> None:
        super().__init__(program, map_size)
        if not 0 <= indirect_fraction <= 1:
            raise ValueError(f"indirect_fraction must be in [0, 1], got "
                             f"{indirect_fraction}")
        rng = np.random.default_rng(np.random.PCG64(seed ^ 0x7C9))
        n = program.n_edges
        keys = np.arange(n, dtype=np.int64) % map_size
        indirect = rng.random(n) < indirect_fraction
        n_ind = int(indirect.sum())
        if n_ind:
            keys[indirect] = rng.integers(0, map_size, size=n_ind,
                                          dtype=np.int64)
        self.edge_keys = keys
        self.indirect_mask = indirect

    def keys_for(self, result: ExecResult,
                 input_bytes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        return self.edge_keys[result.edges], result.counts

    def keys_for_batch(self, result: BatchExecResult,
                       input_rows: Sequence[np.ndarray]) \
            -> Tuple[np.ndarray, np.ndarray]:
        return self.edge_keys[result.edges], result.counts

    def distinct_keys_possible(self) -> int:
        return int(np.unique(self.edge_keys).size)
