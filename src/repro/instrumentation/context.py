"""Context-sensitive edge coverage (Angora-style) — extension metric.

Angora [17] XORs a hash of the calling context into every edge key, so
the same edge in different calling contexts is distinct coverage. The
paper cites this as putting "up to eight times more pressure" on the
bitmap — another metric that needs BigMap to be practical.

Modeling: each edge carries a set of possible calling contexts (drawn
at construction); the context an execution observes is a deterministic
function of the input, like :mod:`repro.instrumentation.ngram`'s
variants but with a heavier tail (up to ``max_contexts`` = 8).
"""

from __future__ import annotations

import zlib
from typing import Tuple

import numpy as np

from ..target.cfg import Program
from ..target.executor import ExecResult
from .edge_ids import Instrumentation, afl_edge_keys

_MIX = np.int64(0x9E3779B1)


class ContextSensitiveInstrumentation(Instrumentation):
    """AFL edge keys XORed with a calling-context hash.

    Args:
        max_contexts: maximum contexts per edge (Angora reports up to 8).
        context_weight: geometric decay for the per-edge context-count
            distribution; smaller values concentrate edges on one
            context (call sites are heavy-tailed in practice).
    """

    name = "afl-edge+context"

    def __init__(self, program: Program, map_size: int, *, seed: int = 0,
                 max_contexts: int = 8,
                 context_weight: float = 0.45) -> None:
        super().__init__(program, map_size)
        if max_contexts < 1:
            raise ValueError(f"max_contexts must be >= 1, got "
                             f"{max_contexts}")
        if not 0 < context_weight < 1:
            raise ValueError(f"context_weight must be in (0, 1), got "
                             f"{context_weight}")
        self.base_keys = afl_edge_keys(program, map_size, seed)
        rng = np.random.default_rng(np.random.PCG64(seed ^ 0xC17))
        draws = rng.geometric(1 - context_weight, size=program.n_edges)
        self.n_contexts = np.minimum(draws, max_contexts).astype(np.int64)
        self.context_salt = rng.integers(
            0, np.iinfo(np.int64).max, size=program.n_edges,
            dtype=np.int64)

    def keys_for(self, result: ExecResult,
                 input_bytes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        edges = result.edges
        checksum = np.int64(zlib.adler32(memoryview(
            np.ascontiguousarray(input_bytes))))
        context = (checksum ^ self.context_salt[edges]) % \
            self.n_contexts[edges]
        mask = np.int64(self.map_size - 1)
        keys = (self.base_keys[edges] ^ ((context * _MIX) & mask)) & mask
        return keys, result.counts

    def distinct_keys_possible(self) -> int:
        return int(self.n_contexts.sum())
