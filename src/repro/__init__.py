"""repro — a from-scratch reproduction of BigMap (DSN 2021).

BigMap is a two-level coverage bitmap that lets coverage-guided fuzzers
use arbitrarily large maps (mitigating hash collisions) without the
runtime cost of full-map operations. This library reimplements:

* the BigMap data structure and AFL's flat-bitmap baseline
  (:mod:`repro.core`);
* an AFL-style fuzzer — scheduling, mutation, fitness, crash triage,
  parallel sessions (:mod:`repro.fuzzer`);
* synthetic instrumented targets standing in for the paper's compiled
  benchmarks (:mod:`repro.target`);
* coverage-metric pipelines: edge hashing, N-gram, context sensitivity
  and the laf-intel transform (:mod:`repro.instrumentation`);
* a memory-hierarchy cost model standing in for the paper's Xeon
  testbed (:mod:`repro.memsim`);
* analysis and experiment harnesses regenerating every table and
  figure of the evaluation (:mod:`repro.analysis`,
  :mod:`repro.experiments`).

Quick start::

    from repro.fuzzer import CampaignConfig, run_campaign
    result = run_campaign(CampaignConfig(
        benchmark="libpng", fuzzer="bigmap", map_size=1 << 21,
        scale=0.2, virtual_seconds=5.0, max_real_execs=10_000))
    print(result.throughput, result.discovered_locations)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
