"""Machine description for the memory-hierarchy cost model.

The paper's testbed is two Intel Xeon E5645 (Westmere-EP) sockets:
12 physical cores at 2.40 GHz, per-core 32 kB L1d and 256 kB L2, and a
12 MB L3 shared per socket. All throughput phenomena the paper reports
— the 8 MB map blowing past the LLC, AFL's negative parallel scaling —
are stated in terms of this hierarchy, so the model is parameterized
the same way.

Latency and bandwidth figures are textbook Westmere numbers; the exact
values are calibrated once against the paper's 64 kB anchor
(:mod:`repro.memsim.calibration`) and then held fixed across every
experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True)
class CacheLevel:
    """One cache level.

    Attributes:
        name: display name.
        size_bytes: capacity.
        latency_cycles: load-to-use latency for a scattered access.
        seq_cycles_per_byte: effective cost per byte for a streaming
            sweep resident at this level (prefetchers make streaming
            much cheaper than latency × lines).
    """

    name: str
    size_bytes: int
    latency_cycles: float
    seq_cycles_per_byte: float


@dataclass(frozen=True)
class Machine:
    """A machine for the analytical cost model.

    Attributes:
        frequency_hz: core clock; converts cycles to seconds.
        line_size: cache-line size in bytes.
        levels: cache levels, fastest first. The last level is assumed
            shared between fuzzing instances (``llc_shared``).
        dram_latency_cycles: scattered-access DRAM latency.
        dram_seq_cycles_per_byte: streaming DRAM cost per byte per core.
        dram_bandwidth_bytes_per_sec: total socket DRAM bandwidth, the
            shared resource parallel instances contend for.
        contention_alpha: super-linear queueing exponent applied when
            aggregate demand exceeds ``dram_bandwidth_bytes_per_sec``.
        dtlb_entries: data-TLB capacity (4 kB page entries).
        page_bytes: base page size.
        huge_page_bytes: huge-page size (§IV-E optimization).
        walk_cycles: page-table walk cost on a DTLB miss.
        n_cores: physical cores (max parallel fuzzing instances).
        n_sockets: CPU packages. The testbed has two E5645 sockets;
            co-running instances are spread across them, so k
            instances share each LLC only ceil(k / n_sockets) ways —
            which is why AFL's 2 MB configuration survives 4 instances
            (2 per 12 MB LLC) and collapses beyond (Fig. 9a).
        parallel_overhead: generic per-extra-instance efficiency loss
            (corpus sync I/O, kernel time); keeps even cache-resident
            configurations below the 1:1 line, as both fuzzers are in
            Figure 9(a).
    """

    # The seq_cycles_per_byte figures are *effective* rates for AFL-style
    # sweep loops (LUT classify, bitwise compare): combined compute +
    # memory throughput, calibrated so that the paper's average map-size
    # slowdowns (Fig. 6: 1.4x @256k, 4.5x @2M, 33.1x @8M over a 4,400/s
    # 64 kB baseline) emerge from the level transitions.
    frequency_hz: float = 2.4e9
    line_size: int = 64
    levels: Tuple[CacheLevel, ...] = (
        CacheLevel("L1d", 32 * 1024, 4.0, 0.10),
        CacheLevel("L2", 256 * 1024, 12.0, 0.18),
        CacheLevel("LLC", 12 * 1024 * 1024, 42.0, 0.20),
    )
    dram_latency_cycles: float = 220.0
    dram_seq_cycles_per_byte: float = 0.38
    dram_bandwidth_bytes_per_sec: float = 10.0e9
    contention_alpha: float = 1.35
    dtlb_entries: int = 64
    page_bytes: int = 4096
    huge_page_bytes: int = 2 * 1024 * 1024
    walk_cycles: float = 35.0
    n_cores: int = 12
    n_sockets: int = 2
    parallel_overhead: float = 0.04

    @property
    def llc(self) -> CacheLevel:
        return self.levels[-1]

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.frequency_hz

    def with_llc_bytes(self, llc_bytes: int) -> "Machine":
        """A copy whose LLC capacity is ``llc_bytes``.

        Used by the contention model to hand each of *k* co-running
        instances a ``1/k`` share of the shared LLC.
        """
        new_llc = CacheLevel(self.llc.name, int(llc_bytes),
                             self.llc.latency_cycles,
                             self.llc.seq_cycles_per_byte)
        return Machine(
            frequency_hz=self.frequency_hz, line_size=self.line_size,
            levels=self.levels[:-1] + (new_llc,),
            dram_latency_cycles=self.dram_latency_cycles,
            dram_seq_cycles_per_byte=self.dram_seq_cycles_per_byte,
            dram_bandwidth_bytes_per_sec=self.dram_bandwidth_bytes_per_sec,
            contention_alpha=self.contention_alpha,
            dtlb_entries=self.dtlb_entries, page_bytes=self.page_bytes,
            huge_page_bytes=self.huge_page_bytes,
            walk_cycles=self.walk_cycles, n_cores=self.n_cores,
            n_sockets=self.n_sockets,
            parallel_overhead=self.parallel_overhead)


#: The paper's testbed (per-socket view; 12 MB LLC shared by instances).
XEON_E5645 = Machine()
