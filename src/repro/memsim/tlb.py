"""DTLB pressure model (and the §IV-E huge-pages optimization).

Multi-megabyte coverage maps on 4 kB pages need thousands of DTLB
entries; the Westmere DTLB has 64. The analytical penalty: once a
region's page count exceeds the DTLB, scattered accesses into it miss
the TLB with probability ``1 - entries/pages`` and each miss pays a
page walk. Sequential sweeps amortize one walk per page. Huge pages
(2 MB) collapse the page count, removing the penalty — which is why the
paper backs its bitmaps with huge pages.

An exact LRU DTLB simulator (:class:`DTLBSim`) validates the analytical
fractions in tests.
"""

from __future__ import annotations

from collections import OrderedDict

from .machine import Machine


def pages_for_region(region_bytes: int, machine: Machine,
                     huge_pages: bool) -> int:
    """Number of pages backing a region."""
    page = machine.huge_page_bytes if huge_pages else machine.page_bytes
    return max(1, -(-region_bytes // page))  # ceil division


def scattered_walk_fraction(region_bytes: int, machine: Machine,
                            huge_pages: bool) -> float:
    """Fraction of scattered accesses into a region that page-walk."""
    pages = pages_for_region(region_bytes, machine, huge_pages)
    if pages <= machine.dtlb_entries:
        return 0.0
    return 1.0 - machine.dtlb_entries / pages


def sweep_walk_cycles(region_bytes: int, machine: Machine,
                      huge_pages: bool) -> float:
    """Total page-walk cycles for one sequential sweep of a region.

    One walk per page once the region exceeds the DTLB reach; zero when
    the whole region's pages fit.
    """
    pages = pages_for_region(region_bytes, machine, huge_pages)
    if pages <= machine.dtlb_entries:
        return 0.0
    return pages * machine.walk_cycles


class DTLBSim:
    """Exact LRU DTLB, for validating the analytical fractions."""

    def __init__(self, entries: int, page_bytes: int) -> None:
        if entries <= 0:
            raise ValueError(f"entries must be positive, got {entries}")
        self.entries = entries
        self.page_bytes = page_bytes
        self._slots: "OrderedDict[int, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        """Touch one address; returns True on TLB hit."""
        page = addr // self.page_bytes
        if page in self._slots:
            self._slots.move_to_end(page)
            self.hits += 1
            return True
        if len(self._slots) >= self.entries:
            self._slots.popitem(last=False)
        self._slots[page] = None
        self.misses += 1
        return False

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
