"""Calibration of per-benchmark execution costs against the paper.

The *shapes* of Figures 3/6/9 come from the cost model's mechanics; the
one thing our synthetic targets cannot know is how expensive a real
target's execution is per edge traversal (block sizes, I/O, allocator
behaviour). That scalar is calibrated once per benchmark against an
anchor: the paper's Figure 6 throughput of **AFL with the default 64 kB
map** — the configuration the paper itself calls carefully tuned. All
other (fuzzer, map size, instance count) combinations are then model
*predictions*, not fits; EXPERIMENTS.md records how they land.

Anchors were read off Figure 6's 64 kB AFL bars (approximate — the
figure has no numeric labels); their mean is ~4,400/s, matching the
paper's stated AFL 64 kB average.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.errors import CalibrationError
from .costmodel import (AFL, BitmapCostModel, ExecShape, MapCostConfig)
from .machine import Machine, XEON_E5645

#: Figure 6 anchor: AFL, 64 kB map, execs/sec (approximate bar heights;
#: mean ≈ 4,400/s as the paper states).
PAPER_THROUGHPUT_64K: Dict[str, float] = {
    "zlib": 11_700.0,
    "libpng": 9_400.0,
    "systemd": 7_000.0,
    "libjpeg": 7_800.0,
    "mbedtls": 6_200.0,
    "proj4": 7_000.0,
    "harfbuzz": 5_100.0,
    "libxml2": 4_700.0,
    "openssl": 4_300.0,
    "bloaty": 3_900.0,
    "curl": 3_500.0,
    "php": 2_700.0,
    "sqlite3": 2_000.0,
    "licm": 1_700.0,
    "gvn": 1_650.0,
    "strength-reduce": 1_500.0,
    "indvars": 1_400.0,
    "loop-vectorize": 1_200.0,
    "instcombine": 950.0,
    # Table III-only harnesses: no Figure 6 bar; plausible values in the
    # LLVM cluster's range.
    "loop-unswitch": 2_100.0,
    "sccp": 2_050.0,
    "earlycase": 1_950.0,
    "loop-prediction": 1_900.0,
    "loop-rotate": 1_900.0,
    "irce": 1_950.0,
    "simplifycfg": 1_800.0,
}

#: Fraction of the calibrated execution budget charged per traversal
#: (the rest is the fixed per-exec base: process setup, input parsing).
_TRAVERSAL_SHARE = 0.75

#: Map-op options the paper applies to both fuzzers in §V (§IV-E).
PAPER_OPTIONS = {"merged_classify_compare": True, "huge_pages": True}


def target_working_set_bytes(n_edges: int) -> int:
    """Heuristic for a target's own hot working set.

    Real targets keep parse state, allocator arenas and read-only
    tables warm; bigger programs keep more. Clamped so small targets
    still have *some* footprint and huge ones do not swamp the model.
    """
    return int(min(max(32 * 1024 + n_edges * 8, 48 * 1024),
                   4 * 1024 * 1024))


def calibrate_execution_cost(
        anchor_rate: float, reference_shape: ExecShape, *,
        machine: Machine = XEON_E5645, target_ws_bytes: int = 65_536,
        others_cycles: float = 15_000.0) -> Dict[str, float]:
    """Solve (base, per-traversal) cycles from a 64 kB AFL anchor.

    Prices the map operations of the anchor configuration with the
    execution cost zeroed, then splits the leftover cycle budget
    between the fixed base and the per-traversal cost.

    Returns:
        dict with ``exec_base_cycles`` and ``per_traversal_cycles``.
    """
    if anchor_rate <= 0:
        raise CalibrationError(f"anchor rate must be positive, got "
                               f"{anchor_rate}")
    probe = BitmapCostModel(
        MapCostConfig(AFL, 65_536, **PAPER_OPTIONS), machine=machine,
        exec_base_cycles=0.0, per_traversal_cycles=0.0,
        target_ws_bytes=target_ws_bytes, others_cycles=others_cycles)
    map_cost = probe.exec_cycles(reference_shape).total
    budget = machine.frequency_hz / anchor_rate - map_cost
    if budget <= 0:
        raise CalibrationError(
            f"anchor rate {anchor_rate}/s is unachievable: map "
            f"operations alone cost {map_cost:.0f} cycles")
    traversals = max(reference_shape.traversals, 1)
    return {
        "exec_base_cycles": budget * (1.0 - _TRAVERSAL_SHARE),
        "per_traversal_cycles": budget * _TRAVERSAL_SHARE / traversals,
    }


def model_for_benchmark(
        benchmark: str, kind: str, map_size: int,
        reference_shape: ExecShape, *, n_edges: int,
        machine: Machine = XEON_E5645,
        anchor_rate: Optional[float] = None,
        fork_overhead_cycles: float = 0.0,
        **config_overrides) -> BitmapCostModel:
    """Build a calibrated cost model for one (benchmark, fuzzer, size).

    Args:
        benchmark: paper benchmark name (anchor lookup), unless
            ``anchor_rate`` overrides.
        kind: ``"afl"`` or ``"bigmap"``.
        map_size: coverage bitmap size.
        reference_shape: a representative execution shape measured on
            the seed corpus (traversals / unique locations / used).
        n_edges: target program size, for the working-set heuristic.
        anchor_rate: explicit 64 kB AFL anchor, for custom targets.
        **config_overrides: :class:`MapCostConfig` options.
    """
    if anchor_rate is None:
        try:
            anchor_rate = PAPER_THROUGHPUT_64K[benchmark]
        except KeyError:
            raise CalibrationError(
                f"no throughput anchor for benchmark {benchmark!r}; "
                f"pass anchor_rate explicitly") from None
    ws = target_working_set_bytes(n_edges)
    options = dict(PAPER_OPTIONS)
    options.update(config_overrides)
    if options.get("non_temporal_reset") is None:
        # Auto (the sensible deployment the paper implies): non-temporal
        # stores always bypass the cache, so they only help once the
        # sweep is DRAM-bound anyway — enable NT reset exactly when the
        # flat map's working set no longer fits the LLC.
        options["non_temporal_reset"] = (
            kind == AFL and 2 * map_size + ws > machine.llc.size_bytes)
    costs = calibrate_execution_cost(anchor_rate, reference_shape,
                                     machine=machine, target_ws_bytes=ws)
    return BitmapCostModel(
        MapCostConfig(kind, map_size, **options), machine=machine,
        target_ws_bytes=ws, fork_overhead_cycles=fork_overhead_cycles,
        **costs)
