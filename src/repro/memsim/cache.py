"""Set-associative cache simulator.

A small, exact LRU cache simulator used to *validate* the analytical
cost model's assumptions in tests (e.g. "a full-map sweep of a region
larger than the cache evicts everything", "a condensed region survives
across executions"), and available for fine-grained studies. Campaign
pricing uses the analytical model — simulating every access of millions
of executions would be absurd — but the two must agree on the
qualitative behaviours, and the test suite checks that they do.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np


class SetAssociativeCache:
    """An LRU set-associative cache over byte addresses.

    Args:
        size_bytes: total capacity.
        assoc: ways per set.
        line_size: line size in bytes (power of two).
    """

    def __init__(self, size_bytes: int, assoc: int = 8,
                 line_size: int = 64) -> None:
        if line_size & (line_size - 1):
            raise ValueError(f"line size must be a power of two, got "
                             f"{line_size}")
        n_lines = size_bytes // line_size
        if n_lines % assoc:
            raise ValueError(
                f"{size_bytes} bytes / {line_size}B lines is not "
                f"divisible into {assoc}-way sets")
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_size = line_size
        self.n_sets = n_lines // assoc
        # tags[set][way]; lru[set][way] = age counter (higher = newer)
        self._tags = np.full((self.n_sets, assoc), -1, dtype=np.int64)
        self._age = np.zeros((self.n_sets, assoc), dtype=np.int64)
        self._clock = 0
        self.hits = 0
        self.misses = 0

    def _locate(self, addr: int):
        line = addr // self.line_size
        return line % self.n_sets, line // self.n_sets

    def access(self, addr: int) -> bool:
        """Touch one address; returns True on hit. Fills on miss (LRU)."""
        set_idx, tag = self._locate(addr)
        self._clock += 1
        ways = self._tags[set_idx]
        hit = np.flatnonzero(ways == tag)
        if hit.size:
            self._age[set_idx, hit[0]] = self._clock
            self.hits += 1
            return True
        victim = int(np.argmin(self._age[set_idx]))
        self._tags[set_idx, victim] = tag
        self._age[set_idx, victim] = self._clock
        self.misses += 1
        return False

    def access_many(self, addrs: Iterable[int]) -> int:
        """Touch a sequence of addresses; returns the number of hits."""
        return sum(1 for a in addrs if self.access(a))

    def contains(self, addr: int) -> bool:
        """Whether ``addr``'s line is currently resident (no side effect)."""
        set_idx, tag = self._locate(addr)
        return bool((self._tags[set_idx] == tag).any())

    def resident_lines(self) -> int:
        return int(np.count_nonzero(self._tags >= 0))

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CacheHierarchy:
    """A chain of inclusive caches; reports which level served an access.

    Level 0 is fastest; an access missing every level is served by
    "memory" (level index ``len(levels)``).
    """

    def __init__(self, caches: List[SetAssociativeCache]) -> None:
        if not caches:
            raise ValueError("need at least one cache level")
        self.caches = caches
        self.level_hits = [0] * (len(caches) + 1)

    def access(self, addr: int) -> int:
        """Touch ``addr``; returns the level index that served it."""
        served: Optional[int] = None
        for i, cache in enumerate(self.caches):
            if cache.access(addr) and served is None:
                served = i
        if served is None:
            served = len(self.caches)
        self.level_hits[served] += 1
        return served

    def access_many(self, addrs: Iterable[int]) -> List[int]:
        return [self.access(a) for a in addrs]
