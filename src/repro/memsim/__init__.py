"""Memory-hierarchy cost model: the substitute for the paper's testbed.

Public surface:

* :class:`Machine` / :data:`XEON_E5645` — hardware description.
* :class:`BitmapCostModel` / :class:`MapCostConfig` / :class:`ExecShape`
  / :class:`OpCycles` — per-iteration analytical pricing.
* :func:`model_for_benchmark` / :data:`PAPER_THROUGHPUT_64K` —
  calibration against the paper's 64 kB AFL anchor.
* :func:`solve_parallel` / :func:`scaling_curve` — LLC + bandwidth
  contention between concurrent instances (Figure 9).
* :class:`SetAssociativeCache` / :class:`CacheHierarchy` /
  :class:`DTLBSim` — exact simulators validating the analytical rules.
"""

from .cache import CacheHierarchy, SetAssociativeCache
from .calibration import (PAPER_OPTIONS, PAPER_THROUGHPUT_64K,
                          calibrate_execution_cost, model_for_benchmark,
                          target_working_set_bytes)
from .contention import (InstanceLoad, ParallelResult, scaling_curve,
                         solve_parallel)
from .costmodel import (AFL, BIGMAP, BatchOpCycles, BitmapCostModel,
                        ExecShape, MapCostConfig, OpCycles)
from .machine import XEON_E5645, CacheLevel, Machine
from .tlb import (DTLBSim, pages_for_region, scattered_walk_fraction,
                  sweep_walk_cycles)

__all__ = [
    "CacheHierarchy", "SetAssociativeCache",
    "PAPER_OPTIONS", "PAPER_THROUGHPUT_64K", "calibrate_execution_cost",
    "model_for_benchmark", "target_working_set_bytes",
    "InstanceLoad", "ParallelResult", "scaling_curve", "solve_parallel",
    "AFL", "BIGMAP", "BatchOpCycles", "BitmapCostModel", "ExecShape",
    "MapCostConfig", "OpCycles",
    "XEON_E5645", "CacheLevel", "Machine",
    "DTLBSim", "pages_for_region", "scattered_walk_fraction",
    "sweep_walk_cycles",
]
