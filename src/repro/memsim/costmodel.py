"""Analytical per-execution cost model for bitmap operations.

This module prices one fuzzing iteration (target execution + bitmap
reset/update/classify/compare/hash) in cycles on a
:class:`~repro.memsim.machine.Machine`, reproducing the paper's
throughput phenomena without its Xeon testbed.

The model rests on one residency rule, validated against the exact
cache simulator in the test suite:

    **Everything an iteration touches competes for cache.** The
    iteration's working set W is the sum of the target's own hot data
    and every map structure the iteration references. An operation's
    data is served by the smallest cache level that holds W; if W
    exceeds the LLC, it is served by DRAM.

What goes into W is where AFL and BigMap differ — and is the entire
point of the paper:

* AFL streams its full local map *and* the full virgin map every
  iteration (reset/classify/compare sweeps), so
  ``W_afl = 2 × map_size + target_ws``. An 8 MB map means a 16 MB+
  working set: nothing survives in a 12 MB LLC, every sweep and every
  scattered counter update goes to memory, and thousands of 4 kB pages
  thrash the DTLB.
* BigMap touches only the condensed prefix (``used_key`` bytes, a few
  times over) plus the cache lines of the index entries its edges hit:
  ``W_bigmap = 2 × used + unique × line + target_ws`` — independent of
  ``map_size``, which is the adaptivity claim of §IV-A.

Sequential sweeps are priced per byte at the residency level's
streaming rate (writes at DRAM pay read-for-ownership; non-temporal
stores bypass it, §IV-E). Scattered accesses pay the residency level's
load latency plus a DTLB walk fraction (huge pages eliminate it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..core.errors import CalibrationError
from .machine import Machine, XEON_E5645
from .tlb import scattered_walk_fraction, sweep_walk_cycles

#: Map-structure kinds.
AFL = "afl"
BIGMAP = "bigmap"

#: Extra DRAM cost factor for cached→memory write sweeps (RFO + WB).
DRAM_WRITE_FACTOR = 1.6
#: Streaming rate for non-temporal stores (cycles/byte), level-independent.
NON_TEMPORAL_RATE = 0.40


@dataclass(frozen=True)
class MapCostConfig:
    """Which data structure, at what size, with which §IV-E options."""

    kind: str
    map_size: int
    merged_classify_compare: bool = True
    non_temporal_reset: bool = False
    huge_pages: bool = True
    index_entry_bytes: int = 8

    def __post_init__(self) -> None:
        if self.kind not in (AFL, BIGMAP):
            raise CalibrationError(f"unknown map kind {self.kind!r}")
        if self.map_size <= 0:
            raise CalibrationError(f"map_size must be positive, got "
                                   f"{self.map_size}")


@dataclass(frozen=True)
class ExecShape:
    """Per-execution quantities reported by the campaign loop.

    Attributes:
        traversals: total edge traversals (instrumentation executions).
        unique_locations: distinct map locations touched.
        used_bytes: BigMap's ``used_key`` at this point (ignored for AFL).
        interesting: whether the test case triggers the hash operation.
        hash_bytes: bytes the hash covers (BigMap: up to last non-zero).
    """

    traversals: int
    unique_locations: int
    used_bytes: int = 0
    interesting: bool = False
    hash_bytes: int = 0


@dataclass(frozen=True)
class OpCycles:
    """Cycle breakdown of one fuzzing iteration (Figure 3's categories)."""

    execution: float
    reset: float
    classify: float
    compare: float
    hash: float
    others: float

    @property
    def total(self) -> float:
        return (self.execution + self.reset + self.classify +
                self.compare + self.hash + self.others)

    def as_dict(self) -> Dict[str, float]:
        return {"execution": self.execution, "reset": self.reset,
                "classify": self.classify, "compare": self.compare,
                "hash": self.hash, "others": self.others}


@dataclass(frozen=True)
class BatchOpCycles:
    """Vectorized :class:`OpCycles` for a batch of non-interesting execs.

    ``execution`` varies per trace; the sweep components depend only on
    the (shared) coverage state, so they are scalars. ``row(i)`` must be
    bit-identical to ``exec_cycles(ExecShape(...))`` for that trace —
    the batched campaign relies on this for cycle-exact determinism.
    """

    execution: np.ndarray
    reset: float
    classify: float
    compare: float
    hash: float
    others: float

    @property
    def n(self) -> int:
        return int(self.execution.size)

    def totals(self) -> np.ndarray:
        """Per-trace total cycles, accumulated in ``OpCycles.total`` order."""
        return ((((self.execution + self.reset) + self.classify) +
                 self.compare) + self.hash) + self.others

    def row(self, i: int) -> OpCycles:
        return OpCycles(execution=float(self.execution[i]),
                        reset=self.reset, classify=self.classify,
                        compare=self.compare, hash=self.hash,
                        others=self.others)


class BitmapCostModel:
    """Prices fuzzing iterations for one (machine, map config, target).

    Args:
        config: map structure and options.
        machine: hardware parameters (default: the paper's Xeon).
        exec_base_cycles: fixed per-execution target cost (setup, I/O).
        per_traversal_cycles: target cost per edge traversal.
        indirection_cycles: BigMap's extra per-traversal cost for the
            index load + predicted branch (Listing 2 lines 3–5).
        target_ws_bytes: the target program's own hot working set.
        others_cycles: scheduling/bookkeeping constant ("Others").
        fork_overhead_cycles: per-execution process-creation cost. Zero
            models the paper's persistent mode (§V-A1: "does not have
            any fork() call or initialization overheads"); classic
            fork-server AFL pays a few hundred microseconds per run.
    """

    def __init__(self, config: MapCostConfig, *,
                 machine: Machine = XEON_E5645,
                 exec_base_cycles: float = 60_000.0,
                 per_traversal_cycles: float = 110.0,
                 indirection_cycles: float = 2.0,
                 target_ws_bytes: int = 65_536,
                 others_cycles: float = 15_000.0,
                 fork_overhead_cycles: float = 0.0) -> None:
        for name, value in (("exec_base_cycles", exec_base_cycles),
                            ("per_traversal_cycles", per_traversal_cycles),
                            ("indirection_cycles", indirection_cycles),
                            ("others_cycles", others_cycles)):
            if value < 0:
                raise CalibrationError(f"{name} must be >= 0, got {value}")
        self.config = config
        self.machine = machine
        self.exec_base_cycles = exec_base_cycles
        self.per_traversal_cycles = per_traversal_cycles
        self.indirection_cycles = indirection_cycles
        self.target_ws_bytes = target_ws_bytes
        self.others_cycles = others_cycles
        if fork_overhead_cycles < 0:
            raise CalibrationError(
                f"fork_overhead_cycles must be >= 0, got "
                f"{fork_overhead_cycles}")
        self.fork_overhead_cycles = fork_overhead_cycles

    # -- residency -------------------------------------------------------

    def working_set_bytes(self, shape: ExecShape) -> int:
        """Total bytes one iteration touches (the W of the module doc)."""
        if self.config.kind == AFL:
            return 2 * self.config.map_size + self.target_ws_bytes
        index_lines = shape.unique_locations * self.machine.line_size
        return (2 * shape.used_bytes + index_lines + self.target_ws_bytes)

    def _level_index(self, footprint: int) -> int:
        """Smallest level holding ``footprint``; len(levels) = DRAM."""
        for i, level in enumerate(self.machine.levels):
            if footprint <= level.size_bytes:
                return i
        return len(self.machine.levels)

    def _seq_rate(self, level_idx: int, *, write: bool) -> float:
        if level_idx >= len(self.machine.levels):
            rate = self.machine.dram_seq_cycles_per_byte
            return rate * DRAM_WRITE_FACTOR if write else rate
        return self.machine.levels[level_idx].seq_cycles_per_byte

    def _scat_latency(self, level_idx: int) -> float:
        if level_idx >= len(self.machine.levels):
            return self.machine.dram_latency_cycles
        return self.machine.levels[level_idx].latency_cycles

    # -- per-operation pricing -------------------------------------------

    def _sweep(self, region_bytes: int, level_idx: int, *,
               write: bool = False, read_write: bool = False,
               non_temporal: bool = False) -> float:
        """Cycles for one sequential pass over ``region_bytes``."""
        if region_bytes <= 0:
            return 0.0
        if non_temporal:
            cycles = region_bytes * NON_TEMPORAL_RATE
        else:
            rate = self._seq_rate(level_idx, write=write or read_write)
            passes = 2.0 if read_write else 1.0
            cycles = region_bytes * rate * passes
        return cycles + sweep_walk_cycles(region_bytes, self.machine,
                                          self.config.huge_pages)

    def _scatter(self, n_accesses: int, region_bytes: int,
                 level_idx: int) -> float:
        """Cycles for data-dependent accesses within ``region_bytes``."""
        if n_accesses <= 0:
            return 0.0
        walk = scattered_walk_fraction(region_bytes, self.machine,
                                       self.config.huge_pages)
        per_access = self._scat_latency(level_idx) + \
            walk * self.machine.walk_cycles
        return n_accesses * per_access

    # -- iteration pricing -------------------------------------------------

    def exec_cycles(self, shape: ExecShape) -> OpCycles:
        """Cycle breakdown of one fuzzing iteration."""
        cfg = self.config
        level_w = self._level_index(self.working_set_bytes(shape))

        execution = (self.exec_base_cycles +
                     self.fork_overhead_cycles +
                     shape.traversals * self.per_traversal_cycles)
        if cfg.kind == AFL:
            active = cfg.map_size
            # Counter updates scatter over the full map span.
            execution += self._scatter(shape.unique_locations,
                                       cfg.map_size, level_w)
            reset_level = level_w
            hash_bytes = cfg.map_size
        else:
            active = shape.used_bytes
            # Index lookup per traversal (cheap: predicted branch + load
            # from a hot line) plus scattered index access per distinct
            # edge, plus dense counter writes into the condensed prefix.
            execution += shape.traversals * self.indirection_cycles
            index_region = cfg.map_size * cfg.index_entry_bytes
            execution += self._scatter(shape.unique_locations,
                                       index_region, level_w)
            # Hot-set rule: the condensed prefix is touched several
            # times per iteration and nothing streams over it, so it
            # stays resident at whatever level holds it — regardless of
            # the index lines and target data around it.
            dense_level = self._level_index(2 * shape.used_bytes)
            execution += self._scatter(shape.unique_locations,
                                       max(shape.used_bytes, 1),
                                       dense_level)
            reset_level = dense_level
            hash_bytes = shape.hash_bytes or shape.used_bytes

        sweep_level = level_w if cfg.kind == AFL else reset_level
        reset = self._sweep(active, reset_level, write=True,
                            non_temporal=cfg.non_temporal_reset)
        if cfg.merged_classify_compare:
            classify = 0.0
            compare = (self._sweep(active, sweep_level, read_write=True) +
                       self._sweep(active, sweep_level))
        else:
            classify = self._sweep(active, sweep_level, read_write=True)
            compare = (self._sweep(active, sweep_level) +
                       self._sweep(active, sweep_level))
        hash_cycles = self._sweep(hash_bytes, sweep_level) \
            if shape.interesting else 0.0

        return OpCycles(execution=execution, reset=reset,
                        classify=classify, compare=compare,
                        hash=hash_cycles, others=self.others_cycles)

    def exec_cycles_batch(self, traversals: np.ndarray,
                          unique_locations: np.ndarray, *,
                          used_bytes: int = 0) -> BatchOpCycles:
        """Price a batch of non-interesting executions at once.

        Equivalent to calling :meth:`exec_cycles` per trace with
        ``ExecShape(traversals[i], unique_locations[i], used_bytes)`` —
        and bit-identical to it, because every per-row term is computed
        with the same elementary float operations in the same order.
        ``used_bytes`` is a scalar: within one batch the coverage state
        is fixed (interesting traces replay the scalar path, and the
        caller re-prices the remainder when ``used_key`` moves).
        """
        cfg = self.config
        trav = np.asarray(traversals, dtype=np.int64)
        uniq = np.asarray(unique_locations, dtype=np.int64)
        execution = ((self.exec_base_cycles + self.fork_overhead_cycles) +
                     trav * self.per_traversal_cycles)

        if cfg.kind == AFL:
            # AFL's working set is shape-independent, so one residency
            # level covers the whole batch.
            level_w = self._level_index(
                2 * cfg.map_size + self.target_ws_bytes)
            walk = scattered_walk_fraction(cfg.map_size, self.machine,
                                           cfg.huge_pages)
            per_access = self._scat_latency(level_w) + \
                walk * self.machine.walk_cycles
            execution = execution + uniq * per_access
            active = cfg.map_size
            reset_level = level_w
        else:
            # BigMap's working set varies with unique_locations, so the
            # residency level of the index scatter is per-row.
            line = self.machine.line_size
            working_set = (2 * used_bytes + uniq * line +
                           self.target_ws_bytes)
            sizes = np.array([lvl.size_bytes
                              for lvl in self.machine.levels],
                             dtype=np.int64)
            level_rows = np.searchsorted(sizes, working_set, side="left")
            latency = np.array(
                [self._scat_latency(i)
                 for i in range(len(self.machine.levels) + 1)])
            execution = execution + trav * self.indirection_cycles
            index_region = cfg.map_size * cfg.index_entry_bytes
            walk_idx = scattered_walk_fraction(index_region, self.machine,
                                               cfg.huge_pages)
            per_access_idx = latency[level_rows] + \
                walk_idx * self.machine.walk_cycles
            execution = execution + uniq * per_access_idx
            dense_level = self._level_index(2 * used_bytes)
            walk_dense = scattered_walk_fraction(
                max(used_bytes, 1), self.machine, cfg.huge_pages)
            per_access_dense = self._scat_latency(dense_level) + \
                walk_dense * self.machine.walk_cycles
            execution = execution + uniq * per_access_dense
            active = used_bytes
            reset_level = dense_level

        sweep_level = reset_level
        reset = self._sweep(active, reset_level, write=True,
                            non_temporal=cfg.non_temporal_reset)
        if cfg.merged_classify_compare:
            classify = 0.0
            compare = (self._sweep(active, sweep_level, read_write=True) +
                       self._sweep(active, sweep_level))
        else:
            classify = self._sweep(active, sweep_level, read_write=True)
            compare = (self._sweep(active, sweep_level) +
                       self._sweep(active, sweep_level))

        return BatchOpCycles(execution=execution, reset=reset,
                             classify=classify, compare=compare,
                             hash=0.0, others=self.others_cycles)

    # -- cycle attribution -------------------------------------------------

    def _level_key(self, level_idx: int) -> str:
        if level_idx >= len(self.machine.levels):
            return "dram"
        return self.machine.levels[level_idx].name.lower()

    def cycle_attribution(self, shape: ExecShape) -> Dict[str, float]:
        """Where one iteration's cycles go: per hierarchy level + TLB.

        Returns ``{"core", "l1d", "l2", "llc", "dram", "tlb"}`` cycle
        totals that sum to ``exec_cycles(shape).total`` exactly — the
        same pricing walk as :meth:`exec_cycles`, but split by *where*
        each component is served instead of by *which operation* spent
        it. ``core`` holds the memory-independent work (target compute,
        indirection arithmetic, fork, bookkeeping); ``tlb`` holds page
        walks from both sweeps and scattered accesses. Telemetry feeds
        these as histogram observations (``memsim.share.*``), giving
        campaigns the per-execution tracing-cost decomposition the
        throughput figures are built from.
        """
        cfg = self.config
        attr = {"core": 0.0, "l1d": 0.0, "l2": 0.0, "llc": 0.0,
                "dram": 0.0, "tlb": 0.0}

        def scatter(n_accesses: int, region_bytes: int,
                    level_idx: int) -> None:
            if n_accesses <= 0:
                return
            walk = scattered_walk_fraction(region_bytes, self.machine,
                                           cfg.huge_pages)
            attr[self._level_key(level_idx)] += \
                n_accesses * self._scat_latency(level_idx)
            attr["tlb"] += n_accesses * walk * self.machine.walk_cycles

        def sweep(region_bytes: int, level_idx: int, *,
                  write: bool = False, read_write: bool = False,
                  non_temporal: bool = False) -> None:
            if region_bytes <= 0:
                return
            if non_temporal:
                # NT stores stream past the hierarchy straight to DRAM.
                attr["dram"] += region_bytes * NON_TEMPORAL_RATE
            else:
                rate = self._seq_rate(level_idx, write=write or read_write)
                passes = 2.0 if read_write else 1.0
                attr[self._level_key(level_idx)] += \
                    region_bytes * rate * passes
            attr["tlb"] += sweep_walk_cycles(region_bytes, self.machine,
                                             cfg.huge_pages)

        level_w = self._level_index(self.working_set_bytes(shape))
        attr["core"] += (self.exec_base_cycles +
                         self.fork_overhead_cycles +
                         shape.traversals * self.per_traversal_cycles)
        if cfg.kind == AFL:
            active = cfg.map_size
            scatter(shape.unique_locations, cfg.map_size, level_w)
            reset_level = level_w
            hash_bytes = cfg.map_size
        else:
            active = shape.used_bytes
            attr["core"] += shape.traversals * self.indirection_cycles
            index_region = cfg.map_size * cfg.index_entry_bytes
            scatter(shape.unique_locations, index_region, level_w)
            dense_level = self._level_index(2 * shape.used_bytes)
            scatter(shape.unique_locations, max(shape.used_bytes, 1),
                    dense_level)
            reset_level = dense_level
            hash_bytes = shape.hash_bytes or shape.used_bytes

        sweep_level = level_w if cfg.kind == AFL else reset_level
        sweep(active, reset_level, write=True,
              non_temporal=cfg.non_temporal_reset)
        sweep(active, sweep_level, read_write=True)
        sweep(active, sweep_level)
        if not cfg.merged_classify_compare:
            # Unmerged classify+compare costs one extra plain sweep
            # over the region (rw + 2×plain vs merged's rw + plain).
            sweep(active, sweep_level)
        if shape.interesting:
            sweep(hash_bytes, sweep_level)
        attr["core"] += self.others_cycles
        return attr

    def level_share(self, shape: ExecShape) -> Dict[str, float]:
        """:meth:`cycle_attribution` normalized to fractions of total."""
        attr = self.cycle_attribution(shape)
        total = sum(attr.values())
        if total <= 0:
            return {key: 0.0 for key in attr}
        return {key: value / total for key, value in attr.items()}

    def throughput(self, shape: ExecShape) -> float:
        """Executions per second for a steady stream of ``shape`` execs."""
        return self.machine.frequency_hz / self.exec_cycles(shape).total

    def dram_bytes_per_exec(self, shape: ExecShape) -> float:
        """Approximate DRAM traffic per iteration (drives contention).

        Sweeps whose residency level is DRAM stream their full region;
        scattered DRAM accesses move one line each. Zero when the
        working set fits in the LLC. The smaller the cache share
        relative to the working set, the *more* traffic each iteration
        moves (the target's own data misses too, and dirty map lines
        are written back mid-sweep) — this thrash amplification is what
        bends AFL's total throughput downward past the socket knee in
        Figure 9(a).
        """
        working_set = self.working_set_bytes(shape)
        level_w = self._level_index(working_set)
        if level_w < len(self.machine.levels):
            return 0.0
        cfg = self.config
        if cfg.kind == AFL:
            active = cfg.map_size
            sweep_passes = 4.0  # reset + classify/compare rw + virgin
            scattered = shape.unique_locations
        else:
            active = shape.used_bytes
            sweep_passes = 4.0
            scattered = 2 * shape.unique_locations
        base_traffic = (active * sweep_passes +
                        scattered * self.machine.line_size +
                        self.target_ws_bytes)
        overflow = 1.0 - min(1.0, self.machine.llc.size_bytes /
                             working_set)
        return base_traffic * (1.0 + 0.8 * overflow)
