"""Shared-resource contention between parallel fuzzing instances (§V-D).

Two mechanisms couple co-running instances on one socket:

1. **LLC capacity sharing** — *k* instances split the shared last-level
   cache; each effectively sees ``LLC/k``. An instance whose working
   set fit in 12 MB alone may stop fitting at 4 instances — at which
   point its sweeps and counter updates start streaming from DRAM,
   *increasing* its memory traffic exactly when the bus gets busier.
2. **DRAM bandwidth saturation** — aggregate traffic beyond the socket
   bandwidth queues; service time grows super-linearly
   (``(demand/capacity)^alpha``), so total throughput can *decrease*
   with more instances — the paper's negative-slope AFL curve in
   Figure 9(a).

The fixpoint solver alternates between instance execution rates and the
bandwidth slowdown they imply until stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .costmodel import BitmapCostModel, ExecShape, MapCostConfig
from .machine import Machine


@dataclass(frozen=True)
class InstanceLoad:
    """One fuzzing instance's model and steady-state execution shape."""

    model: BitmapCostModel
    shape: ExecShape


@dataclass(frozen=True)
class ParallelResult:
    """Solved steady state for k co-running instances.

    Attributes:
        per_instance_rate: execs/sec of each instance under contention.
        total_rate: aggregate execs/sec.
        slowdown: converged DRAM service-time multiplier (1.0 = no
            saturation).
        demand_bytes_per_sec: aggregate DRAM traffic at the solution.
    """

    per_instance_rate: List[float]
    total_rate: float
    slowdown: float
    demand_bytes_per_sec: float


def _shared_model(instance: InstanceLoad, machine: Machine,
                  n_instances: int) -> BitmapCostModel:
    # Instances spread across sockets: each LLC is shared only by the
    # instances pinned to that package.
    per_socket = -(-n_instances // max(machine.n_sockets, 1))  # ceil
    shared = machine.with_llc_bytes(
        max(machine.line_size,
            machine.llc.size_bytes // per_socket))
    model = instance.model
    return BitmapCostModel(
        model.config, machine=shared,
        exec_base_cycles=model.exec_base_cycles,
        per_traversal_cycles=model.per_traversal_cycles,
        indirection_cycles=model.indirection_cycles,
        target_ws_bytes=model.target_ws_bytes,
        others_cycles=model.others_cycles,
        fork_overhead_cycles=model.fork_overhead_cycles)


def solve_parallel(instances: Sequence[InstanceLoad], *,
                   machine: Machine = None, iterations: int = 60,
                   damping: float = 0.5) -> ParallelResult:
    """Solve the contended steady state for co-running instances.

    Args:
        instances: per-instance cost models and execution shapes; all
            are assumed pinned to distinct physical cores.
        machine: shared machine; defaults to the first instance's.
        iterations: fixpoint iterations (converges in far fewer).
        damping: update damping for stability.
    """
    if not instances:
        raise ValueError("need at least one instance")
    machine = machine or instances[0].model.machine
    k = len(instances)
    if k > machine.n_cores:
        raise ValueError(f"{k} instances exceed the machine's "
                         f"{machine.n_cores} physical cores")

    base_cycles: List[float] = []
    dram_cycles: List[float] = []
    dram_bytes: List[float] = []
    for inst in instances:
        model = _shared_model(inst, machine, k)
        total = model.exec_cycles(inst.shape).total
        traffic = model.dram_bytes_per_exec(inst.shape)
        mem_cycles = traffic * machine.dram_seq_cycles_per_byte
        mem_cycles = min(mem_cycles, total)  # traffic estimate guard
        base_cycles.append(total - mem_cycles)
        dram_cycles.append(mem_cycles)
        dram_bytes.append(traffic)

    frequency = machine.frequency_hz
    # Each socket has its own memory controller; the most loaded socket
    # (ceil(k / sockets) instances) sets the saturation point. For the
    # homogeneous case this equals scaling capacity by k / per_socket.
    per_socket = -(-k // max(machine.n_sockets, 1))
    capacity = machine.dram_bandwidth_bytes_per_sec * \
        (k / per_socket if k else 1.0)
    # Generic multi-instance efficiency loss (sync, kernel, I/O).
    efficiency = 1.0 / (1.0 + machine.parallel_overhead * (k - 1))
    slowdown = 1.0
    rates = [0.0] * k
    demand = 0.0
    for _ in range(iterations):
        rates = [efficiency * frequency /
                 (base_cycles[i] + slowdown * dram_cycles[i])
                 for i in range(k)]
        demand = sum(rates[i] * dram_bytes[i] for i in range(k))
        target = max(1.0, (demand / capacity) ** machine.contention_alpha) \
            if demand > 0 else 1.0
        slowdown += damping * (target - slowdown)
    return ParallelResult(per_instance_rate=rates, total_rate=sum(rates),
                          slowdown=slowdown,
                          demand_bytes_per_sec=demand)


def scaling_curve(instance: InstanceLoad, counts: Sequence[int], *,
                  machine: Machine = None) -> List[ParallelResult]:
    """Homogeneous scaling: the same instance replicated 1..k times.

    This is the paper's Figure 9(a) setup — every instance fuzzes the
    same benchmark with the same configuration.
    """
    return [solve_parallel([instance] * k, machine=machine)
            for k in counts]
