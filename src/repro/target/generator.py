"""Deterministic program generation: trunk plus guarded subtrees.

:func:`generate_program` materializes a :class:`~repro.target.cfg.Program`
from a :class:`ProgramSpec`, fully vectorized and reproducible (same
spec → byte-identical arrays). The shape mirrors what coverage-guided
fuzzers see on real targets:

* a **core tree** of ``n_core_edges`` edges guarded by ``ALWAYS`` /
  ``BYTE_LT`` / ``BYTE_EQ`` predicates — one execution covers a swath,
  a campaign hill-climbs the rest gradually. Every core edge is
  practically discoverable, so the core size *is* the paper's
  "discovered edges" knob (Table II);
* **magic subtrees** gated by ``EQ_MULTI`` compares — whole regions a
  blind byte-mutator cannot enter until laf-intel splits the gate or a
  dictionary stamps the operand in;
* scattered **magic leaves** and statically dead ``NEVER`` leaves;
* **loop edges** whose hit counts are driven by a shared "length
  field" region of the input (``meta["loop_region"]``) — mutants that
  inflate those bytes model time-out-prone executions;
* **planted crash sites** on deep, rarely-taken edges (and optionally
  inside magic subtrees, reachable only past the gates).

Equality operands are a fixed function of the input offset
(:func:`_eq_value`), so predicates on one path can never contradict
each other — reachability is decided by guard kinds alone, which keeps
the discoverability masks exact and cheap.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.errors import ProgramSpecError
from .cfg import (MAX_MAGIC_WIDTH, NO_CRASH, NO_LOOP, NO_PARENT, Guard,
                  Program)

#: ``BYTE_LT`` operands are drawn from this range: pass probabilities
#: of 0.44–0.87 for a uniform random byte, and always above every
#: equality operand (see :func:`_eq_value`), so mixed constraints on
#: one input offset stay satisfiable.
_LT_VAL_RANGE = (112, 225)

#: Equality operands live below this bound (< min BYTE_LT operand).
_EQ_VAL_BOUND = 96

#: Core-tree guard mix for non-root edges (ALWAYS, BYTE_LT, BYTE_EQ).
_CORE_GUARD_P = (0.55, 0.37, 0.08)

#: Magic-subtree interior guard mix (post-gate code is easier going).
_SUBTREE_GUARD_P = (0.55, 0.35, 0.10)

#: Loop caps are powers of two in this exponent range; 255 is then the
#: maximal residue for every cap, so saturating the loop region roughly
#: doubles a mean input's traversal count.
_LOOP_CAP_EXP_RANGE = (3, 6)

#: Length of the shared loop-region ("length field") in the input.
_LOOP_REGION_LEN = 8


def _eq_value(off: np.ndarray) -> np.ndarray:
    """The one byte value equality guards at ``off`` compare against."""
    return ((np.asarray(off, dtype=np.int64) * 37 + 11)
            % _EQ_VAL_BOUND).astype(np.uint8)


@dataclass(frozen=True)
class ProgramSpec:
    """Parameters of one synthetic target.

    Attributes:
        name: program name (also salts the RNG).
        n_core_edges: size of the practically discoverable core tree —
            the paper's "discovered edges" count at this scale.
        input_len: input size in bytes.
        seed: generation randomness.
        magic_subtree_edges: interior edges of **each** magic subtree.
        magic_subtree_count: number of magic-gated subtrees.
        magic_leaf_edges: scattered single magic-guarded leaf edges.
        never_leaf_edges: statically dead (``NEVER``) leaf edges.
        n_crash_sites: crash sites planted on deep core edges.
        n_magic_crash_sites: crash sites inside magic subtrees.
        static_edges: compile-time edge count of the notional binary;
            defaults to ~1.35× the materialized edge count.
        magic_width: gate operand width in bytes (2..MAX_MAGIC_WIDTH).
        loop_fraction: fraction of core edges carrying loops.
        max_depth: depth cap of the core tree (bounds executor levels).
        growth: geometric level-size growth of generated trees.
    """

    name: str
    n_core_edges: int
    input_len: int = 256
    seed: int = 0
    magic_subtree_edges: int = 0
    magic_subtree_count: int = 0
    magic_leaf_edges: int = 0
    never_leaf_edges: int = 0
    n_crash_sites: int = 0
    n_magic_crash_sites: int = 0
    static_edges: Optional[int] = None
    magic_width: int = 4
    loop_fraction: float = 0.12
    max_depth: int = 7
    growth: float = 1.5

    def __post_init__(self) -> None:
        def bad(message: str) -> None:
            raise ProgramSpecError(f"spec {self.name!r}: {message}")

        if self.n_core_edges < 1:
            bad("n_core_edges must be >= 1")
        if self.input_len < 16:
            bad("input_len must be >= 16")
        if not 2 <= self.magic_width <= MAX_MAGIC_WIDTH:
            bad(f"magic_width must be in [2, {MAX_MAGIC_WIDTH}]")
        if not 0 <= self.loop_fraction <= 1:
            bad("loop_fraction must be in [0, 1]")
        if self.max_depth < 2:
            bad("max_depth must be >= 2")
        if self.growth <= 1.0:
            bad("growth must be > 1")
        for attr in ("magic_subtree_edges", "magic_subtree_count",
                     "magic_leaf_edges", "never_leaf_edges",
                     "n_crash_sites", "n_magic_crash_sites"):
            if getattr(self, attr) < 0:
                bad(f"{attr} must be >= 0")
        if self.static_edges is not None and self.static_edges < 1:
            bad("static_edges must be >= 1")


def _build_csr(parent: np.ndarray, n: int) -> Tuple[np.ndarray, np.ndarray]:
    """CSR children lists from a parent vector.

    Children of edge ``e`` are ``child_idx[child_off[e]:child_off[e+1]]``,
    ascending. Root edges (``parent == NO_PARENT``) appear in no row.
    """
    parent = np.asarray(parent, dtype=np.int64)
    nonroot = parent != NO_PARENT
    counts = np.bincount(parent[nonroot], minlength=n)
    child_off = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=child_off[1:])
    order = np.argsort(parent, kind="stable")
    child_idx = order[nonroot[order]].astype(np.int64)
    return child_off, child_idx


def _partition_levels(n: int, max_depth: int, growth: float) -> np.ndarray:
    """Split ``n`` edges into per-level sizes growing geometrically."""
    n_levels = min(max_depth, n)
    weights = growth ** np.arange(n_levels, dtype=np.float64)
    sizes = np.maximum(1, np.floor(n * weights / weights.sum()))
    sizes = sizes.astype(np.int64)
    # Settle rounding on the deepest (largest-weight) levels.
    excess = int(sizes.sum()) - n
    level = n_levels - 1
    while excess > 0 and level >= 0:
        take = min(excess, int(sizes[level]) - 1)
        sizes[level] -= take
        excess -= take
        level -= 1
    if excess < 0:
        sizes[-1] += -excess
    return sizes


class _Builder:
    """Accumulates edge rows; finalized into a Program once."""

    def __init__(self, spec: ProgramSpec, rng: np.random.Generator) -> None:
        self.spec = spec
        self.rng = rng
        self.parent: List[np.ndarray] = []
        self.depth: List[np.ndarray] = []
        self.kind: List[np.ndarray] = []
        self.off: List[np.ndarray] = []
        self.val: List[np.ndarray] = []
        self.width: List[np.ndarray] = []
        self.magic: List[np.ndarray] = []
        self.n = 0
        # The loop region: a small run of "length field" bytes every
        # loop edge reads. Kept out of guard offsets so token/guard
        # placement and loop inflation stay independent.
        lo = 8 if spec.input_len >= 8 + _LOOP_REGION_LEN + 8 else 0
        self.loop_region = (lo, lo + min(_LOOP_REGION_LEN,
                                         max(2, spec.input_len // 4)))
        region = np.arange(spec.input_len, dtype=np.int32)
        self.guard_offsets = region[(region < self.loop_region[0]) |
                                    (region >= self.loop_region[1])]

    def _rand_offs(self, k: int) -> np.ndarray:
        return self.guard_offsets[
            self.rng.integers(0, self.guard_offsets.size, size=k)]

    def add_rows(self, parent: np.ndarray, depth: np.ndarray,
                 kind: np.ndarray, off: np.ndarray, val: np.ndarray,
                 width: Optional[np.ndarray] = None,
                 magic: Optional[np.ndarray] = None) -> np.ndarray:
        k = parent.size
        idx = np.arange(self.n, self.n + k, dtype=np.int64)
        self.parent.append(parent.astype(np.int64))
        self.depth.append(depth.astype(np.int32))
        self.kind.append(kind.astype(np.uint8))
        self.off.append(off.astype(np.int32))
        self.val.append(val.astype(np.uint8))
        self.width.append(np.ones(k, dtype=np.int32)
                          if width is None else width.astype(np.int32))
        self.magic.append(np.zeros((k, MAX_MAGIC_WIDTH), dtype=np.uint8)
                          if magic is None else magic.astype(np.uint8))
        self.n += k
        return idx

    def add_tree(self, n_edges: int, root_parent: int, root_depth: int,
                 guard_p: Tuple[float, float, float],
                 max_depth: int) -> np.ndarray:
        """A random guarded tree of ``n_edges`` edges under one parent.

        Returns the global indices of the new edges. When
        ``root_parent`` is ``NO_PARENT`` the first level are roots.
        """
        sizes = _partition_levels(n_edges, max(2, max_depth),
                                  self.spec.growth)
        rng = self.rng
        indices: List[np.ndarray] = []
        prev: Optional[np.ndarray] = None
        for lvl, size in enumerate(int(s) for s in sizes):
            if prev is None:
                parent = np.full(size, root_parent, dtype=np.int64)
            else:
                parent = prev[rng.integers(0, prev.size, size=size)]
            depth = np.full(size, root_depth + lvl, dtype=np.int32)
            if prev is None and root_parent == NO_PARENT:
                kind = np.full(size, Guard.ALWAYS, dtype=np.uint8)
            else:
                kind = rng.choice(
                    np.array([Guard.ALWAYS, Guard.BYTE_LT, Guard.BYTE_EQ],
                             dtype=np.uint8),
                    size=size, p=guard_p)
            off = self._rand_offs(size)
            val = np.zeros(size, dtype=np.uint8)
            lt = kind == np.uint8(Guard.BYTE_LT)
            val[lt] = rng.integers(*_LT_VAL_RANGE, size=int(lt.sum()))
            eq = kind == np.uint8(Guard.BYTE_EQ)
            val[eq] = _eq_value(off[eq])
            idx = self.add_rows(parent, depth, kind, off, val)
            indices.append(idx)
            prev = idx
        return np.concatenate(indices)


def generate_program(spec: ProgramSpec) -> Program:
    """Materialize ``spec`` into a validated :class:`Program`."""
    rng = np.random.default_rng(np.random.PCG64(
        [spec.seed, zlib.crc32(spec.name.encode())]))
    b = _Builder(spec, rng)

    # 1. Core tree: exactly n_core_edges practically discoverable edges.
    core = b.add_tree(spec.n_core_edges, NO_PARENT, 0, _CORE_GUARD_P,
                      spec.max_depth)
    core_depth = np.concatenate(b.depth)[core]

    # 2. Magic-gated subtrees, attached near the trunk so the gate is
    # the only obstacle.
    magic_marks: List[np.ndarray] = []
    gate_anchor_pool = core[core_depth <= min(2, int(core_depth.max()))]
    gate_positions = _magic_positions(b, spec.magic_subtree_count +
                                      spec.magic_leaf_edges)
    magic_subtree_edges: List[np.ndarray] = []
    for s in range(spec.magic_subtree_count):
        if spec.magic_subtree_edges < 1 or gate_positions.size == 0:
            break
        anchor = int(gate_anchor_pool[
            rng.integers(0, gate_anchor_pool.size)])
        anchor_depth = int(np.concatenate(b.depth)[anchor])
        goff = int(gate_positions[s % gate_positions.size])
        magic_row = np.zeros((1, MAX_MAGIC_WIDTH), dtype=np.uint8)
        magic_row[0, :spec.magic_width] = _eq_value(
            np.arange(goff, goff + spec.magic_width))
        gate = b.add_rows(
            np.array([anchor]), np.array([anchor_depth + 1]),
            np.array([Guard.EQ_MULTI]), np.array([goff]),
            np.array([0]), np.array([spec.magic_width]), magic_row)
        interior = b.add_tree(
            spec.magic_subtree_edges, int(gate[0]), anchor_depth + 2,
            _SUBTREE_GUARD_P, spec.max_depth - anchor_depth - 2)
        magic_marks.extend([gate, interior])
        magic_subtree_edges.append(interior)

    # 3. Scattered magic leaves (extra dictionary tokens / laf fodder).
    if spec.magic_leaf_edges and gate_positions.size:
        k = spec.magic_leaf_edges
        anchors = core[rng.integers(0, core.size, size=k)]
        depth_all = np.concatenate(b.depth)
        widths = rng.integers(2, spec.magic_width + 1, size=k)
        offs = gate_positions[(spec.magic_subtree_count +
                               np.arange(k)) % gate_positions.size]
        magic_rows = np.zeros((k, MAX_MAGIC_WIDTH), dtype=np.uint8)
        for j in range(int(widths.max())):
            sel = widths > j
            magic_rows[sel, j] = _eq_value(offs[sel] + j)
        leaves = b.add_rows(anchors, depth_all[anchors] + 1,
                            np.full(k, Guard.EQ_MULTI), offs,
                            np.zeros(k), widths, magic_rows)
        magic_marks.append(leaves)

    # 4. Dead code.
    if spec.never_leaf_edges:
        k = spec.never_leaf_edges
        anchors = core[rng.integers(0, core.size, size=k)]
        depth_all = np.concatenate(b.depth)
        b.add_rows(anchors, depth_all[anchors] + 1,
                   np.full(k, Guard.NEVER), np.zeros(k), np.zeros(k))

    n = b.n
    parent = np.concatenate(b.parent)
    depth = np.concatenate(b.depth)
    kind = np.concatenate(b.kind)
    off = np.concatenate(b.off)
    val = np.concatenate(b.val)
    width = np.concatenate(b.width)
    magic = np.concatenate(b.magic)

    # 5. Loops: core (and subtree) edges reading the shared region.
    loop_off = np.full(n, NO_LOOP, dtype=np.int32)
    loop_cap = np.ones(n, dtype=np.int64)
    loop_pool = core if not magic_subtree_edges else np.concatenate(
        [core] + magic_subtree_edges)
    n_loops = int(round(loop_pool.size * spec.loop_fraction))
    if n_loops:
        chosen = rng.choice(loop_pool, size=n_loops, replace=False)
        lo, hi = b.loop_region
        loop_off[chosen] = rng.integers(lo, hi, size=n_loops)
        loop_cap[chosen] = 2 ** rng.integers(*_LOOP_CAP_EXP_RANGE,
                                             size=n_loops)

    # 6. Crash sites: deep, rarely-taken core edges (forced BYTE_EQ so
    # campaigns trigger them occasionally, not immediately), plus sites
    # locked inside magic subtrees.
    crash_site = np.full(n, NO_CRASH, dtype=np.int32)
    crash_edges: List[np.ndarray] = []
    if spec.n_crash_sites:
        deep = core[core_depth >= max(0, int(core_depth.max()) - 2)]
        k = min(spec.n_crash_sites, deep.size)
        picked = rng.choice(deep, size=k, replace=False)
        kind[picked] = np.uint8(Guard.BYTE_EQ)
        width[picked] = 1
        magic[picked] = 0
        val[picked] = _eq_value(off[picked])
        crash_edges.append(picked)
    if spec.n_magic_crash_sites and magic_subtree_edges:
        pool = np.concatenate(magic_subtree_edges)
        pool = pool[depth[pool] >= int(np.percentile(depth[pool], 60))]
        k = min(spec.n_magic_crash_sites, pool.size)
        crash_edges.append(rng.choice(pool, size=k, replace=False))
    if crash_edges:
        sites = np.sort(np.concatenate(crash_edges))
        crash_site[sites] = np.arange(sites.size, dtype=np.int32)

    dst_block = np.arange(1, n + 1, dtype=np.int64)
    src_block = np.where(parent == NO_PARENT, 0,
                         dst_block[np.maximum(parent, 0)])
    child_off, child_idx = _build_csr(parent, n)

    magic_region = np.zeros(n, dtype=bool)
    for marked in magic_marks:
        magic_region[marked] = True

    static = (spec.static_edges if spec.static_edges is not None
              else int(round(n * 1.35)))
    program = Program(
        name=spec.name, input_len=spec.input_len, parent=parent,
        depth=depth, kind=kind, off=off, val=val, width=width,
        magic=magic, loop_off=loop_off, loop_cap=loop_cap,
        src_block=src_block, dst_block=dst_block, crash_site=crash_site,
        child_off=child_off, child_idx=child_idx,
        roots=np.flatnonzero(parent == NO_PARENT), n_blocks=n + 1,
        static_edges=max(static, 1),
        meta={"laf_applied": False, "spec": spec,
              "loop_region": b.loop_region,
              "magic_region": magic_region})
    program.validate()
    return program


def _magic_positions(b: _Builder, count: int) -> np.ndarray:
    """Non-overlapping gate offsets on a ``magic_width`` grid."""
    spec = b.spec
    usable = b.guard_offsets[
        b.guard_offsets + spec.magic_width <= spec.input_len]
    # Keep gates apart when there is room; wrap around otherwise.
    grid = usable[::spec.magic_width]
    if grid.size == 0 or count == 0:
        return grid[:0]
    return grid[b.rng.permutation(grid.size)[:max(count, 1)]]
