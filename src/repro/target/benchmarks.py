"""The benchmark registry: Table II/III targets as generator configs.

Each :class:`BenchmarkConfig` carries the paper's published columns
(seed-corpus size, fuzzer-discovered edges, compile-time static edges,
version) and knows how to materialize a scaled synthetic stand-in:
``spec(scale)`` parameterizes the generator so the practically
discoverable edge count equals ``round(discovered_edges * scale)`` —
at ``scale=1.0`` the program matches the paper's Table II row by
construction.

The LLVM-opt harnesses get a large magic-gated region (``magic_ratio``)
— they are the laf-intel benchmarks of Table III, where splitting
multi-byte compares multiplies discoverable coverage — while the
library targets carry a modest one.
"""

from __future__ import annotations

import zlib as _zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .cfg import Program
from .generator import ProgramSpec, generate_program
from .seeds import generate_seed_corpus

#: LLVM-opt static edge count (shared by every ``opt`` pass harness).
_LLVM_STATIC = 977_899
_LLVM_VERSION = "v10.0.1"


@dataclass(frozen=True)
class BenchmarkConfig:
    """One paper benchmark, parameterizing the program generator.

    Attributes:
        name: registry name (Table II/III row).
        n_seeds: paper seed-corpus size.
        discovered_edges: paper "discovered edges" column — the
            practically discoverable count at ``scale=1.0``.
        static_edges: paper compile-time edge count.
        version: benchmark version string from Table II.
        magic_ratio: magic-subtree edges as a fraction of the core
            (what laf-intel / a dictionary can unlock on top).
        input_len: input size of the synthetic stand-in.
    """

    name: str
    n_seeds: int
    discovered_edges: int
    static_edges: int
    version: str
    magic_ratio: float = 0.30
    input_len: int = 192

    def _rng_seed(self) -> int:
        return _zlib.crc32(self.name.encode("ascii")) & 0x7FFF

    def spec(self, scale: float = 1.0) -> ProgramSpec:
        """Generator parameters for this benchmark at ``scale``."""
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        n_core = max(8, int(round(self.discovered_edges * scale)))
        magic_total = int(round(n_core * self.magic_ratio))
        subtree_count = max(1, min(6, magic_total // 24))
        per_subtree = magic_total // subtree_count
        if per_subtree < 4:
            subtree_count = per_subtree = 0
        n_crash = max(2, int(round(n_core * 0.003)))
        return ProgramSpec(
            name=self.name,
            n_core_edges=n_core,
            input_len=self.input_len,
            seed=self._rng_seed(),
            magic_subtree_edges=per_subtree,
            magic_subtree_count=subtree_count,
            magic_leaf_edges=max(2, n_core // 250),
            never_leaf_edges=max(1, n_core // 500),
            n_crash_sites=n_crash,
            n_magic_crash_sites=max(1, n_crash // 3) if subtree_count
            else 0,
            static_edges=max(int(round(self.static_edges * scale)),
                             n_core + magic_total + 8))

    def build(self, scale: float = 1.0, *,
              seed_scale: Optional[float] = None) -> "BuiltBenchmark":
        """Materialize the program and its scaled seed corpus."""
        program = generate_program(self.spec(scale))
        effective = scale if seed_scale is None else seed_scale
        n = max(1, int(round(self.n_seeds * effective)))
        seeds = generate_seed_corpus(program, n,
                                     seed=self._rng_seed() + 0x105)
        return BuiltBenchmark(config=self, program=program,
                              seeds=seeds, scale=scale)


@dataclass
class BuiltBenchmark:
    """A materialized benchmark: program + seed corpus."""

    config: Optional[BenchmarkConfig]
    program: Program
    seeds: List[bytes]
    scale: float


def _llvm(name: str, n_seeds: int, discovered: int) -> BenchmarkConfig:
    return BenchmarkConfig(name=name, n_seeds=n_seeds,
                           discovered_edges=discovered,
                           static_edges=_LLVM_STATIC,
                           version=_LLVM_VERSION, magic_ratio=1.40,
                           input_len=256)


#: Table II, in the paper's row order (ascending discovered edges).
TABLE2_BENCHMARKS: Tuple[BenchmarkConfig, ...] = (
    BenchmarkConfig("zlib", 77, 722, 875, "v1.2.11", input_len=128),
    BenchmarkConfig("libpng", 1, 1_218, 2_987, "v1.6.35",
                    input_len=128),
    BenchmarkConfig("systemd", 6, 2_314, 53_453, "v245", input_len=128),
    BenchmarkConfig("libjpeg", 1, 2_928, 9_542, "v2.0.4",
                    input_len=128),
    BenchmarkConfig("mbedtls", 1, 5_377, 10_942, "v2.21.0"),
    BenchmarkConfig("proj4", 43, 6_379, 7_830, "v6.3.1"),
    BenchmarkConfig("harfbuzz", 58, 8_930, 10_021, "v2.6.4"),
    BenchmarkConfig("libxml2", 1, 9_422, 50_327, "v2.9.10"),
    BenchmarkConfig("openssl", 2_241, 10_297, 45_989, "v1.0.2u"),
    BenchmarkConfig("bloaty", 94, 10_536, 89_658, "v1.0"),
    BenchmarkConfig("curl", 31, 12_728, 62_523, "v7.68.0"),
    BenchmarkConfig("php", 2_782, 20_260, 123_767, "v7.4.3"),
    BenchmarkConfig("sqlite3", 1_256, 40_948, 45_136, "v3.31.1"),
    _llvm("licm", 101, 64_317),
    _llvm("gvn", 140, 65_781),
    _llvm("strength-reduce", 122, 76_065),
    _llvm("indvars", 174, 82_105),
    _llvm("loop-vectorize", 345, 108_231),
    _llvm("instcombine", 1_046, 131_677),
)

#: The seven LLVM passes of Table III that Table II does not list
#: individually (sizes interpolated into the LLVM harness range).
_TABLE3_EXTRA: Tuple[BenchmarkConfig, ...] = (
    _llvm("loop-unswitch", 133, 71_204),
    _llvm("sccp", 96, 68_530),
    _llvm("earlycase", 88, 60_412),
    _llvm("loop-prediction", 107, 58_990),
    _llvm("loop-rotate", 119, 59_873),
    _llvm("irce", 92, 61_742),
    _llvm("simplifycfg", 141, 55_631),
)

_T2_BY_NAME: Dict[str, BenchmarkConfig] = {c.name: c
                                           for c in TABLE2_BENCHMARKS}

#: Table III: all 13 LLVM-opt harnesses (laf-intel + N-gram study).
TABLE3_BENCHMARKS: Tuple[BenchmarkConfig, ...] = tuple(
    [c for c in TABLE2_BENCHMARKS if c.static_edges == _LLVM_STATIC] +
    list(_TABLE3_EXTRA))

#: Figure 3's runtime-composition benchmarks, in figure order.
FIG3_BENCHMARK_NAMES: Tuple[str, ...] = (
    "libpng", "sqlite3", "gvn", "bloaty", "openssl", "php")

#: Figure 8's crash-count benchmarks (the Table II LLVM passes).
FIG8_BENCHMARK_NAMES: Tuple[str, ...] = (
    "licm", "gvn", "strength-reduce", "indvars", "loop-vectorize",
    "instcombine")

_REGISTRY: Dict[str, BenchmarkConfig] = {
    **_T2_BY_NAME, **{c.name: c for c in _TABLE3_EXTRA}}


def get_benchmark(name: str) -> BenchmarkConfig:
    """Look up a benchmark; raises ``KeyError`` for unknown names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: "
            f"{', '.join(sorted(_REGISTRY))}") from None


def benchmark_names(selector: str = "all") -> Sequence[str]:
    """Benchmark names for a selector: ``all``, ``table2``, ``table3``,
    ``fig3`` or ``fig8``."""
    if selector == "all":
        return list(_REGISTRY)
    if selector == "table2":
        return [c.name for c in TABLE2_BENCHMARKS]
    if selector == "table3":
        return [c.name for c in TABLE3_BENCHMARKS]
    if selector == "fig3":
        return list(FIG3_BENCHMARK_NAMES)
    if selector == "fig8":
        return list(FIG8_BENCHMARK_NAMES)
    raise ValueError(f"unknown benchmark selector {selector!r}")
