"""Crash records with synthetic call stacks for Crashwalk-style dedup.

The paper deduplicates crashes with Crashwalk (hashing the call stack
and fault address) precisely because that is *map-size independent* —
AFL's own "unique crashes" counter is biased by the coverage bitmap
(§V-B3). Our synthetic targets therefore attach a deterministic call
stack to every crash site: the chain of basic blocks leading to the
crashing edge, truncated to the nearest frames like a real backtrace.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Tuple

from .cfg import NO_PARENT, Program

#: Frames kept in a synthetic backtrace (gdb-style nearest-first cap).
STACK_FRAMES = 8


@dataclass(frozen=True)
class CrashInfo:
    """One observed crash.

    Attributes:
        site_id: planted crash-site identifier (``Program.crash_site``).
        edge_index: the edge whose traversal triggered the crash.
        stack: synthetic call stack, outermost frame first.
        fault_address: synthetic faulting address; distinct per site.
    """

    site_id: int
    edge_index: int
    stack: Tuple[int, ...]
    fault_address: int

    def crashwalk_key(self) -> int:
        """Crashwalk's dedup key: hash(stack, fault address).

        Stable across processes (unlike ``hash()``), so parallel
        sessions and serialized records deduplicate identically.
        """
        payload = ",".join(map(str, self.stack)) + \
            f"@{self.fault_address:x}"
        return zlib.crc32(payload.encode("ascii"))


def synth_stack(program: Program, edge: int) -> Tuple[int, ...]:
    """The backtrace a debugger would print for a crash on ``edge``:
    the destination blocks of its ancestor chain, outermost first,
    capped at :data:`STACK_FRAMES` innermost frames."""
    frames = []
    cursor = edge
    while cursor != NO_PARENT and len(frames) < STACK_FRAMES:
        frames.append(int(program.dst_block[cursor]))
        cursor = int(program.parent[cursor])
    return tuple(reversed(frames))
