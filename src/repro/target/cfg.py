"""Synthetic control-flow graphs: guard kinds and the Program record.

The paper fuzzes compiled C targets; our stand-ins are tree-structured
CFG programs whose edges are guarded by byte predicates over the input.
A :class:`Program` is a struct-of-arrays record: one row per edge, with
the tree stored both as a parent vector and as CSR children lists
(``child_off``/``child_idx``), plus AFL-style basic-block numbering
(``src_block``/``dst_block``) for the instrumentation layer.

Guard semantics (evaluated against the input buffer ``inp``):

* ``ALWAYS`` — taken whenever the parent edge is taken;
* ``BYTE_LT`` — taken iff ``inp[off] < val``;
* ``BYTE_EQ`` — taken iff ``inp[off] == val``;
* ``EQ_MULTI`` — taken iff ``inp[off:off+width] == magic[:width]``
  (the multi-byte magic compares laf-intel splits);
* ``NEVER`` — statically dead code, never taken.

Edges are stored parents-before-children: ``parent[e] < e`` for every
non-root edge. Blocks are numbered ``dst_block[e] = e + 1`` with block
0 as the shared entry block, so ``n_blocks == n_edges + 1``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from ..core.errors import ProgramValidationError

#: Sentinel parent index for root edges.
NO_PARENT = -1
#: Sentinel ``loop_off`` for edges without input-dependent loops.
NO_LOOP = -1
#: Sentinel ``crash_site`` for edges without a planted crash.
NO_CRASH = -1

#: Widest multi-byte magic compare (bytes); ``magic`` rows have this
#: many columns regardless of each edge's actual ``width``.
MAX_MAGIC_WIDTH = 8


class Guard(enum.IntEnum):
    """Edge guard kinds (stored as ``uint8`` in ``Program.kind``)."""

    ALWAYS = 0
    BYTE_LT = 1
    BYTE_EQ = 2
    EQ_MULTI = 3
    NEVER = 4


@dataclass
class Program:
    """One synthetic target: a guarded-edge tree in CSR form.

    Attributes:
        name: human-readable identifier.
        input_len: nominal input size; guards only read offsets below
            it (shorter inputs are zero-padded, longer ones truncated).
        parent: ``int64[n]`` parent edge index (``NO_PARENT`` = root).
        depth: ``int32[n]`` tree depth (roots at 0).
        kind: ``uint8[n]`` :class:`Guard` values.
        off: ``int32[n]`` guarded input offset.
        val: ``uint8[n]`` comparison operand for the byte guards.
        width: ``int32[n]`` magic width (1 for single-byte guards).
        magic: ``uint8[n, MAX_MAGIC_WIDTH]`` magic operands.
        loop_off: ``int32[n]`` input offset controlling the edge's loop
            count, or ``NO_LOOP``.
        loop_cap: ``int64[n]`` loop-count modulus (hit count is
            ``1 + inp[loop_off] % loop_cap``).
        src_block: ``int64[n]`` source basic-block id.
        dst_block: ``int64[n]`` destination basic-block id.
        crash_site: ``int32[n]`` planted crash-site id, or ``NO_CRASH``.
        child_off: ``int64[n+1]`` CSR row offsets into ``child_idx``.
        child_idx: ``int64[...]`` children edge indices, grouped per
            parent, ascending within each group.
        roots: ``int64`` indices of root edges.
        n_blocks: number of basic blocks (``n_edges + 1``).
        static_edges: compile-time edge count of the notional binary
            (Table II's last column); drives CollAFL map sizing and
            laf-intel's static inflation.
        meta: free-form annotations (``laf_applied``, ``loop_region``,
            ``magic_region``, ...).
    """

    name: str
    input_len: int
    parent: np.ndarray
    depth: np.ndarray
    kind: np.ndarray
    off: np.ndarray
    val: np.ndarray
    width: np.ndarray
    magic: np.ndarray
    loop_off: np.ndarray
    loop_cap: np.ndarray
    src_block: np.ndarray
    dst_block: np.ndarray
    crash_site: np.ndarray
    child_off: np.ndarray
    child_idx: np.ndarray
    roots: np.ndarray
    n_blocks: int
    static_edges: int
    meta: Dict = field(default_factory=dict)

    # -- derived sizes -----------------------------------------------------

    @property
    def n_edges(self) -> int:
        return int(self.parent.size)

    @property
    def n_crash_sites(self) -> int:
        return int((self.crash_site != NO_CRASH).sum())

    # -- reachability masks ------------------------------------------------

    def _propagate_down(self, ok: np.ndarray) -> np.ndarray:
        """AND a per-edge predicate down the tree, level by level."""
        mask = ok.copy()
        if mask.size == 0:
            return mask
        order = np.argsort(self.depth, kind="stable")
        depths = self.depth[order]
        max_depth = int(depths[-1])
        bounds = np.searchsorted(depths, np.arange(max_depth + 2))
        for level in range(1, max_depth + 1):
            idx = order[bounds[level]:bounds[level + 1]]
            mask[idx] &= mask[self.parent[idx]]
        return mask

    def discoverable_mask(self) -> np.ndarray:
        """Edges some input can traverse (no dead code on the path).

        Guards are satisfiable by construction (the generator derives
        every equality operand from the input offset, so constraints on
        a path never conflict); only ``NEVER`` guards kill reachability.
        """
        return self._propagate_down(self.kind != np.uint8(Guard.NEVER))

    def practically_discoverable_mask(self) -> np.ndarray:
        """Edges reachable by single-byte mutation (paper footnote 1).

        Multi-byte magic compares are satisfiable but not *practically*
        discoverable by a byte-flipping fuzzer — the paper's Table II
        "discovered edges" column counts coverage without them. After
        laf-intel every compare is single-byte, so this mask converges
        to :meth:`discoverable_mask`.
        """
        ok = self.kind != np.uint8(Guard.NEVER)
        ok &= ~((self.kind == np.uint8(Guard.EQ_MULTI)) & (self.width > 1))
        return self._propagate_down(ok)

    # -- validation --------------------------------------------------------

    def validate(self) -> None:
        """Check every structural invariant; raises on violation."""
        n = self.n_edges
        idx = np.arange(n, dtype=np.int64)

        def check(cond: bool, message: str) -> None:
            if not cond:
                raise ProgramValidationError(
                    f"program {self.name!r}: {message}")

        check(n > 0, "no edges")
        check(self.input_len > 0, "non-positive input_len")
        for name_, arr, dt in (
                ("parent", self.parent, np.int64),
                ("depth", self.depth, np.int32),
                ("kind", self.kind, np.uint8),
                ("off", self.off, np.int32),
                ("val", self.val, np.uint8),
                ("width", self.width, np.int32),
                ("loop_off", self.loop_off, np.int32),
                ("loop_cap", self.loop_cap, np.int64),
                ("src_block", self.src_block, np.int64),
                ("dst_block", self.dst_block, np.int64),
                ("crash_site", self.crash_site, np.int32)):
            check(arr.shape == (n,), f"{name_} shape {arr.shape}")
            check(arr.dtype == dt, f"{name_} dtype {arr.dtype}")
        check(self.magic.shape == (n, MAX_MAGIC_WIDTH),
              f"magic shape {self.magic.shape}")

        roots = self.parent == NO_PARENT
        check(bool(roots.any()), "no root edges")
        check(np.array_equal(np.flatnonzero(roots), np.sort(self.roots)),
              "roots index mismatch")
        nonroot = ~roots
        check(bool((self.parent[nonroot] >= 0).all()) and
              bool((self.parent[nonroot] < idx[nonroot]).all()),
              "parents must precede children")
        check(bool((self.depth[roots] == 0).all()), "root depth != 0")
        check(bool((self.depth[nonroot] ==
                    self.depth[np.maximum(self.parent, 0)][nonroot] + 1)
                   .all()), "depth != parent depth + 1")

        check(bool((self.kind <= np.uint8(Guard.NEVER)).all()),
              "unknown guard kind")
        check(bool((self.width >= 1).all()) and
              bool((self.width <= MAX_MAGIC_WIDTH).all()),
              "width out of [1, MAX_MAGIC_WIDTH]")
        check(bool((self.off >= 0).all()) and
              bool((self.off + self.width <= self.input_len).all()),
              "guard reads past input_len")
        looped = self.loop_off != NO_LOOP
        check(bool((self.loop_off[looped] < self.input_len).all()) and
              bool((self.loop_off[looped] >= 0).all()),
              "loop_off out of range")
        check(bool((self.loop_cap >= 1).all()), "loop_cap < 1")

        check(self.n_blocks == n + 1, "n_blocks != n_edges + 1")
        check(np.array_equal(self.dst_block,
                             np.arange(1, n + 1, dtype=np.int64)),
              "dst_block must be edge index + 1")
        expect_src = np.where(roots, 0,
                              self.dst_block[np.maximum(self.parent, 0)])
        check(np.array_equal(self.src_block, expect_src),
              "src_block inconsistent with parent blocks")

        check(self.child_off.shape == (n + 1,), "child_off shape")
        check(int(self.child_off[0]) == 0 and
              int(self.child_off[-1]) == int(nonroot.sum()),
              "child_off bounds")
        check(bool((np.diff(self.child_off) >= 0).all()),
              "child_off not monotone")
        check(self.child_idx.size == int(nonroot.sum()),
              "child_idx size != number of non-root edges")
        if self.child_idx.size:
            check(np.array_equal(
                np.sort(self.child_idx), np.flatnonzero(nonroot)),
                "child_idx must enumerate non-root edges once")
            owner = np.repeat(idx, np.diff(self.child_off))
            check(np.array_equal(self.parent[self.child_idx], owner),
                  "CSR rows disagree with parent vector")

        sites = self.crash_site[self.crash_site != NO_CRASH]
        check(sites.size == np.unique(sites).size,
              "duplicate crash-site ids")
        check(self.static_edges >= 1, "static_edges < 1")
