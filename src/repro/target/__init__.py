"""Synthetic instrumented targets: the paper's benchmarks, in silico.

This package stands in for the compiled C programs the paper fuzzes:
deterministic guarded-CFG programs (:mod:`~repro.target.cfg`,
:mod:`~repro.target.generator`), a vectorized executor
(:mod:`~repro.target.executor`), crash records with Crashwalk-style
stacks (:mod:`~repro.target.crashes`), seed corpora
(:mod:`~repro.target.seeds`) and the Table II/III benchmark registry
(:mod:`~repro.target.benchmarks`).
"""

from .benchmarks import (FIG3_BENCHMARK_NAMES, FIG8_BENCHMARK_NAMES,
                         TABLE2_BENCHMARKS, TABLE3_BENCHMARKS,
                         BenchmarkConfig, BuiltBenchmark,
                         benchmark_names, get_benchmark)
from .cfg import (MAX_MAGIC_WIDTH, NO_CRASH, NO_LOOP, NO_PARENT, Guard,
                  Program)
from .crashes import CrashInfo
from .executor import BatchExecResult, ExecResult, Executor
from .generator import ProgramSpec, _build_csr, generate_program
from .seeds import generate_seed_corpus

__all__ = [
    "BenchmarkConfig",
    "BuiltBenchmark",
    "CrashInfo",
    "BatchExecResult",
    "ExecResult",
    "Executor",
    "FIG3_BENCHMARK_NAMES",
    "FIG8_BENCHMARK_NAMES",
    "Guard",
    "MAX_MAGIC_WIDTH",
    "NO_CRASH",
    "NO_LOOP",
    "NO_PARENT",
    "Program",
    "ProgramSpec",
    "TABLE2_BENCHMARKS",
    "TABLE3_BENCHMARKS",
    "_build_csr",
    "benchmark_names",
    "generate_program",
    "generate_seed_corpus",
    "get_benchmark",
]
