"""Seed-corpus generation for synthetic targets.

Seeds model the "well-formed sample files" a fuzzing campaign starts
from: random content that exercises the easy trunk of the program, with
sane (small-ish) values in the loop-count "length field" region — real
seed files do not start with pathological lengths — and, optionally,
the occasional embedded magic value (a corpus that happens to contain a
valid chunk tag).

Generation is deterministic: same ``(program, n, seed)`` → identical
corpus, the reproducible regime Klees et al. call for.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .cfg import Guard, Program

#: Seed bytes in the loop region stay below this (mutants can push the
#: region to 255, which is what makes loop-heavy *hangs* discoverable
#: relative to the seed-calibrated budget).
_SEED_LOOP_BYTE_BOUND = 161


def generate_seed_corpus(program: Program, n: int, *, seed: int = 0,
                         magic_probability: float = 0.0) -> List[bytes]:
    """Generate ``n`` seed inputs for ``program``.

    Args:
        program: the target.
        n: corpus size.
        seed: corpus randomness.
        magic_probability: per-seed, per-gate chance of embedding a
            magic operand at its expected offset (0 = magic regions
            start locked, the paper's Table II regime).
    """
    if n < 0:
        raise ValueError(f"corpus size must be >= 0, got {n}")
    if not 0 <= magic_probability <= 1:
        raise ValueError(f"magic_probability must be in [0, 1], got "
                         f"{magic_probability}")
    rng = np.random.default_rng(np.random.PCG64([seed, 0x5EED]))
    region = program.meta.get("loop_region")

    gates = []
    if magic_probability > 0:
        for edge in np.flatnonzero(
                program.kind == np.uint8(Guard.EQ_MULTI)).tolist():
            width = int(program.width[edge])
            gates.append((int(program.off[edge]),
                          program.magic[edge, :width].copy()))

    corpus: List[bytes] = []
    for _ in range(n):
        buf = rng.integers(0, 256, size=program.input_len,
                           dtype=np.uint8)
        if region is not None:
            lo, hi = region
            buf[lo:hi] = rng.integers(0, _SEED_LOOP_BYTE_BOUND,
                                      size=hi - lo, dtype=np.uint8)
        for off, magic in gates:
            if rng.random() < magic_probability:
                buf[off:off + magic.size] = magic
        corpus.append(buf.tobytes())
    return corpus
