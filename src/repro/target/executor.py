"""Vectorized program execution: one pass, level-by-level.

:class:`Executor` evaluates every edge guard against the input in one
vectorized sweep, then propagates reachability down the tree one depth
level at a time (a parent's verdict is final before any child reads
it). Loop hit counts, crash detection and trace truncation all fall out
of the same pass — no per-edge Python loop ever runs at execute time.

Execution order is breadth-first by ``(depth, edge index)``; a crash
truncates the trace after the crashing edge in that order, the way a
real process stops producing coverage at the faulting instruction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .cfg import NO_CRASH, NO_LOOP, Guard, Program
from .crashes import CrashInfo, synth_stack

#: Base of the synthetic fault-address space (see CrashInfo).
_FAULT_BASE = 0x400000


@dataclass
class ExecResult:
    """Outcome of one execution.

    Attributes:
        edges: ``int64`` indices of traversed edges, ascending.
        counts: per-edge hit counts aligned with ``edges`` (1 for plain
            edges, ``1 + inp[loop_off] % loop_cap`` for loop edges).
        traversals: total edge traversals (``counts.sum()``) — the
            execution-cost driver in the memory model.
        crash: the triggered :class:`CrashInfo`, or ``None``.
        interesting: scratch flag for the coverage pipeline (the
            executor itself always leaves it ``False``).
    """

    edges: np.ndarray
    counts: np.ndarray
    traversals: int
    crash: Optional[CrashInfo] = None
    interesting: bool = field(default=False, compare=False)

    @property
    def n_edges(self) -> int:
        """Number of distinct edges traversed."""
        return int(self.edges.size)


@dataclass
class BatchExecResult:
    """Outcome of one batched execution of ``n`` inputs.

    Per-trace edge lists are concatenated into flat arrays; trace ``i``
    owns the segment ``[offsets[i], offsets[i+1])``. Within a segment
    edges are ascending, exactly as :class:`ExecResult` orders them.

    Attributes:
        edges: flat ``int64`` edge indices for all traces.
        counts: flat hit counts aligned with ``edges``.
        offsets: ``int64`` array of ``n + 1`` segment boundaries.
        traversals: per-trace total traversals (``int64``, length n).
        crashes: per-trace :class:`CrashInfo` or ``None``.
    """

    edges: np.ndarray
    counts: np.ndarray
    offsets: np.ndarray
    traversals: np.ndarray
    crashes: List[Optional[CrashInfo]]

    @property
    def n(self) -> int:
        """Number of traces in the batch."""
        return int(self.offsets.size - 1)

    def segment(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """(edges, counts) views for trace ``i``."""
        lo, hi = int(self.offsets[i]), int(self.offsets[i + 1])
        return self.edges[lo:hi], self.counts[lo:hi]

    def result_for(self, i: int) -> ExecResult:
        """Materialize trace ``i`` as a scalar :class:`ExecResult`."""
        edges, counts = self.segment(i)
        return ExecResult(edges=edges, counts=counts,
                          traversals=int(self.traversals[i]),
                          crash=self.crashes[i])


class Executor:
    """Executes inputs against one :class:`Program`.

    Construction precomputes guard gather tables and the level
    structure; :meth:`execute` is then a handful of vectorized ops.
    """

    def __init__(self, program: Program) -> None:
        self.program = program
        n = program.n_edges
        kind = program.kind

        self._lt = np.flatnonzero(kind == np.uint8(Guard.BYTE_LT))
        self._lt_off = program.off[self._lt]
        self._lt_val = program.val[self._lt]
        self._eq = np.flatnonzero(kind == np.uint8(Guard.BYTE_EQ))
        self._eq_off = program.off[self._eq]
        self._eq_val = program.val[self._eq]
        self._never = np.flatnonzero(kind == np.uint8(Guard.NEVER))
        self._multi = np.flatnonzero(kind == np.uint8(Guard.EQ_MULTI))
        self._multi_off = program.off[self._multi]
        self._multi_width = program.width[self._multi]
        self._multi_magic = program.magic[self._multi]

        self._loops = np.flatnonzero(program.loop_off != NO_LOOP)
        self._loop_off = program.loop_off[self._loops]
        self._loop_cap = program.loop_cap[self._loops]

        order = np.argsort(program.depth, kind="stable")
        depths = program.depth[order]
        max_depth = int(depths[-1]) if n else 0
        bounds = np.searchsorted(depths, np.arange(max_depth + 2))
        self._levels: List[Tuple[np.ndarray, np.ndarray]] = []
        for level in range(1, max_depth + 1):
            idx = order[bounds[level]:bounds[level + 1]]
            self._levels.append((idx, program.parent[idx]))

        self._crash_edges = np.flatnonzero(program.crash_site != NO_CRASH)
        # Lexicographic (depth, index) rank for picking the first crash.
        self._crash_rank = (program.depth[self._crash_edges]
                            .astype(np.int64) * (n + 1) +
                            self._crash_edges)
        self._depth = program.depth
        self._stack_cache: Dict[int, Tuple[int, ...]] = {}

    # ------------------------------------------------------------------

    def _guards_ok(self, buf: np.ndarray) -> np.ndarray:
        ok = np.ones(self.program.n_edges, dtype=bool)
        ok[self._never] = False
        if self._lt.size:
            ok[self._lt] = buf[self._lt_off] < self._lt_val
        if self._eq.size:
            ok[self._eq] = buf[self._eq_off] == self._eq_val
        if self._multi.size:
            acc = np.ones(self._multi.size, dtype=bool)
            for j in range(int(self._multi_width.max())):
                sel = self._multi_width > j
                acc[sel] &= (buf[self._multi_off[sel] + j] ==
                             self._multi_magic[sel, j])
            ok[self._multi] = acc
        return ok

    def _crash_info(self, edge: int) -> CrashInfo:
        site = int(self.program.crash_site[edge])
        stack = self._stack_cache.get(edge)
        if stack is None:
            stack = synth_stack(self.program, edge)
            self._stack_cache[edge] = stack
        return CrashInfo(site_id=site, edge_index=edge, stack=stack,
                         fault_address=_FAULT_BASE + (site << 6))

    def execute(self, data: bytes) -> ExecResult:
        """Run one input; returns its trace (and crash, if any)."""
        program = self.program
        buf = np.zeros(program.input_len, dtype=np.uint8)
        raw = np.frombuffer(data, dtype=np.uint8)[:program.input_len]
        buf[:raw.size] = raw

        reach = self._guards_ok(buf)
        for idx, parents in self._levels:
            reach[idx] &= reach[parents]

        crash = None
        if self._crash_edges.size:
            hit = reach[self._crash_edges]
            if hit.any():
                pos = int(np.argmin(np.where(
                    hit, self._crash_rank, np.iinfo(np.int64).max)))
                edge = int(self._crash_edges[pos])
                crash = self._crash_info(edge)
                d = self._depth[edge]
                reach &= (self._depth < d) | (
                    (self._depth == d) &
                    (np.arange(program.n_edges) <= edge))

        edges = np.flatnonzero(reach).astype(np.int64)
        counts = np.ones(edges.size, dtype=np.int64)
        if self._loops.size:
            live = reach[self._loops]
            if live.any():
                pos = np.searchsorted(edges, self._loops[live])
                counts[pos] = 1 + (buf[self._loop_off[live]]
                                   .astype(np.int64)
                                   % self._loop_cap[live])
        return ExecResult(edges=edges, counts=counts,
                          traversals=int(counts.sum()), crash=crash)

    # ------------------------------------------------------------------
    # batched execution

    def _guards_ok_batch(self, bufs: np.ndarray) -> np.ndarray:
        n_rows = bufs.shape[0]
        ok = np.ones((n_rows, self.program.n_edges), dtype=bool)
        ok[:, self._never] = False
        if self._lt.size:
            ok[:, self._lt] = bufs[:, self._lt_off] < self._lt_val
        if self._eq.size:
            ok[:, self._eq] = bufs[:, self._eq_off] == self._eq_val
        if self._multi.size:
            acc = np.ones((n_rows, self._multi.size), dtype=bool)
            for j in range(int(self._multi_width.max())):
                sel = self._multi_width > j
                acc[:, sel] &= (bufs[:, self._multi_off[sel] + j] ==
                                self._multi_magic[sel, j])
            ok[:, self._multi] = acc
        return ok

    def execute_batch(self, data: np.ndarray,
                      lengths: np.ndarray = None) -> BatchExecResult:
        """Run a ``(n, width)`` uint8 matrix of inputs in one pass.

        Rows must be zero-padded past their logical lengths — exactly
        the layout :meth:`Mutator.havoc_batch` produces — because the
        scalar path zero-fills its buffer; any padding width is
        accepted (rows are truncated or zero-extended to the program's
        ``input_len``). Each trace is bit-identical to
        ``execute(row_bytes)``.

        Args:
            data: 2-D uint8 matrix, one input per row.
            lengths: unused (row semantics come from the zero padding);
                accepted so callers can pass a mutant batch's metadata
                through unchanged.

        Returns:
            :class:`BatchExecResult` with flat per-trace segments.
        """
        program = self.program
        n_rows, width = data.shape
        n = program.n_edges
        bufs = np.zeros((n_rows, program.input_len), dtype=np.uint8)
        w = min(width, program.input_len)
        bufs[:, :w] = data[:, :w]

        reach = self._guards_ok_batch(bufs)
        for idx, parents in self._levels:
            reach[:, idx] &= reach[:, parents]

        crashes: List[Optional[CrashInfo]] = [None] * n_rows
        if self._crash_edges.size:
            hit = reach[:, self._crash_edges]
            crashed_rows = np.flatnonzero(hit.any(axis=1))
            if crashed_rows.size:
                ranks = np.where(hit[crashed_rows], self._crash_rank,
                                 np.iinfo(np.int64).max)
                first = np.argmin(ranks, axis=1)
                crash_edges = self._crash_edges[first]
                for row, edge in zip(crashed_rows, crash_edges):
                    crashes[row] = self._crash_info(int(edge))
                d = self._depth[crash_edges][:, None]
                arange = np.arange(n)
                reach[crashed_rows] &= (self._depth < d) | (
                    (self._depth == d) & (arange <= crash_edges[:, None]))

        rows, cols = np.nonzero(reach)
        edges = cols.astype(np.int64)
        offsets = np.zeros(n_rows + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=n_rows), out=offsets[1:])
        counts = np.ones(edges.size, dtype=np.int64)
        if self._loops.size:
            lrows, lidx = np.nonzero(reach[:, self._loops])
            if lrows.size:
                # Flat position of (row, col): the flat array is sorted
                # by the global key row * n_edges + col.
                key = rows.astype(np.int64) * n + cols
                pos = np.searchsorted(
                    key, lrows.astype(np.int64) * n + self._loops[lidx])
                counts[pos] = 1 + (bufs[lrows, self._loop_off[lidx]]
                                   .astype(np.int64)
                                   % self._loop_cap[lidx])
        csum = np.zeros(edges.size + 1, dtype=np.int64)
        np.cumsum(counts, out=csum[1:])
        traversals = csum[offsets[1:]] - csum[offsets[:-1]]
        return BatchExecResult(edges=edges, counts=counts,
                               offsets=offsets, traversals=traversals,
                               crashes=crashes)
