"""Vectorized program execution: one pass, level-by-level.

:class:`Executor` evaluates every edge guard against the input in one
vectorized sweep, then propagates reachability down the tree one depth
level at a time (a parent's verdict is final before any child reads
it). Loop hit counts, crash detection and trace truncation all fall out
of the same pass — no per-edge Python loop ever runs at execute time.

Execution order is breadth-first by ``(depth, edge index)``; a crash
truncates the trace after the crashing edge in that order, the way a
real process stops producing coverage at the faulting instruction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .cfg import NO_CRASH, NO_LOOP, Guard, Program
from .crashes import CrashInfo, synth_stack

#: Base of the synthetic fault-address space (see CrashInfo).
_FAULT_BASE = 0x400000


@dataclass
class ExecResult:
    """Outcome of one execution.

    Attributes:
        edges: ``int64`` indices of traversed edges, ascending.
        counts: per-edge hit counts aligned with ``edges`` (1 for plain
            edges, ``1 + inp[loop_off] % loop_cap`` for loop edges).
        traversals: total edge traversals (``counts.sum()``) — the
            execution-cost driver in the memory model.
        crash: the triggered :class:`CrashInfo`, or ``None``.
        interesting: scratch flag for the coverage pipeline (the
            executor itself always leaves it ``False``).
    """

    edges: np.ndarray
    counts: np.ndarray
    traversals: int
    crash: Optional[CrashInfo] = None
    interesting: bool = field(default=False, compare=False)

    @property
    def n_edges(self) -> int:
        """Number of distinct edges traversed."""
        return int(self.edges.size)


class Executor:
    """Executes inputs against one :class:`Program`.

    Construction precomputes guard gather tables and the level
    structure; :meth:`execute` is then a handful of vectorized ops.
    """

    def __init__(self, program: Program) -> None:
        self.program = program
        n = program.n_edges
        kind = program.kind

        self._lt = np.flatnonzero(kind == np.uint8(Guard.BYTE_LT))
        self._lt_off = program.off[self._lt]
        self._lt_val = program.val[self._lt]
        self._eq = np.flatnonzero(kind == np.uint8(Guard.BYTE_EQ))
        self._eq_off = program.off[self._eq]
        self._eq_val = program.val[self._eq]
        self._never = np.flatnonzero(kind == np.uint8(Guard.NEVER))
        self._multi = np.flatnonzero(kind == np.uint8(Guard.EQ_MULTI))
        self._multi_off = program.off[self._multi]
        self._multi_width = program.width[self._multi]
        self._multi_magic = program.magic[self._multi]

        self._loops = np.flatnonzero(program.loop_off != NO_LOOP)
        self._loop_off = program.loop_off[self._loops]
        self._loop_cap = program.loop_cap[self._loops]

        order = np.argsort(program.depth, kind="stable")
        depths = program.depth[order]
        max_depth = int(depths[-1]) if n else 0
        bounds = np.searchsorted(depths, np.arange(max_depth + 2))
        self._levels: List[Tuple[np.ndarray, np.ndarray]] = []
        for level in range(1, max_depth + 1):
            idx = order[bounds[level]:bounds[level + 1]]
            self._levels.append((idx, program.parent[idx]))

        self._crash_edges = np.flatnonzero(program.crash_site != NO_CRASH)
        # Lexicographic (depth, index) rank for picking the first crash.
        self._crash_rank = (program.depth[self._crash_edges]
                            .astype(np.int64) * (n + 1) +
                            self._crash_edges)
        self._depth = program.depth
        self._stack_cache: Dict[int, Tuple[int, ...]] = {}

    # ------------------------------------------------------------------

    def _guards_ok(self, buf: np.ndarray) -> np.ndarray:
        ok = np.ones(self.program.n_edges, dtype=bool)
        ok[self._never] = False
        if self._lt.size:
            ok[self._lt] = buf[self._lt_off] < self._lt_val
        if self._eq.size:
            ok[self._eq] = buf[self._eq_off] == self._eq_val
        if self._multi.size:
            acc = np.ones(self._multi.size, dtype=bool)
            for j in range(int(self._multi_width.max())):
                sel = self._multi_width > j
                acc[sel] &= (buf[self._multi_off[sel] + j] ==
                             self._multi_magic[sel, j])
            ok[self._multi] = acc
        return ok

    def _crash_info(self, edge: int) -> CrashInfo:
        site = int(self.program.crash_site[edge])
        stack = self._stack_cache.get(edge)
        if stack is None:
            stack = synth_stack(self.program, edge)
            self._stack_cache[edge] = stack
        return CrashInfo(site_id=site, edge_index=edge, stack=stack,
                         fault_address=_FAULT_BASE + (site << 6))

    def execute(self, data: bytes) -> ExecResult:
        """Run one input; returns its trace (and crash, if any)."""
        program = self.program
        buf = np.zeros(program.input_len, dtype=np.uint8)
        raw = np.frombuffer(data, dtype=np.uint8)[:program.input_len]
        buf[:raw.size] = raw

        reach = self._guards_ok(buf)
        for idx, parents in self._levels:
            reach[idx] &= reach[parents]

        crash = None
        if self._crash_edges.size:
            hit = reach[self._crash_edges]
            if hit.any():
                pos = int(np.argmin(np.where(
                    hit, self._crash_rank, np.iinfo(np.int64).max)))
                edge = int(self._crash_edges[pos])
                crash = self._crash_info(edge)
                d = self._depth[edge]
                reach &= (self._depth < d) | (
                    (self._depth == d) &
                    (np.arange(program.n_edges) <= edge))

        edges = np.flatnonzero(reach).astype(np.int64)
        counts = np.ones(edges.size, dtype=np.int64)
        if self._loops.size:
            live = reach[self._loops]
            if live.any():
                pos = np.searchsorted(edges, self._loops[live])
                counts[pos] = 1 + (buf[self._loop_off[live]]
                                   .astype(np.int64)
                                   % self._loop_cap[live])
        return ExecResult(edges=edges, counts=counts,
                          traversals=int(counts.sum()), crash=crash)
