"""Bias-free independent coverage evaluation (paper §V-A3).

Comparing fuzzers by their own coverage maps is unfair — a bigger map
has fewer collisions and "sees" more locations. The paper therefore
collects each fuzzer's output corpus and re-measures it with an
independent coverage build. Our equivalent: re-execute the corpus on
the program and count *true program edges* (structural indices, no
hashing, no map, no collisions).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from ..target.cfg import Program
from ..target.executor import Executor


def evaluate_corpus(program: Program, corpus: Iterable[bytes],
                    executor: Optional[Executor] = None) -> int:
    """Distinct true edges covered by ``corpus`` (collision-free)."""
    executor = executor or Executor(program)
    covered = np.zeros(program.n_edges, dtype=bool)
    for data in corpus:
        result = executor.execute(data)
        covered[result.edges] = True
    return int(np.count_nonzero(covered))


def coverage_growth(program: Program, corpus: Iterable[bytes],
                    executor: Optional[Executor] = None
                    ) -> List[Tuple[int, int]]:
    """(inputs evaluated, cumulative true edges) after each input.

    Corpus order matters; campaigns store queue order (discovery
    order), so this approximates the discovery curve re-measured
    independently.
    """
    executor = executor or Executor(program)
    covered = np.zeros(program.n_edges, dtype=bool)
    curve: List[Tuple[int, int]] = []
    for i, data in enumerate(corpus, start=1):
        result = executor.execute(data)
        covered[result.edges] = True
        curve.append((i, int(np.count_nonzero(covered))))
    return curve


def covered_edge_mask(program: Program, corpus: Iterable[bytes],
                      executor: Optional[Executor] = None) -> np.ndarray:
    """Boolean per-edge coverage mask of a corpus."""
    executor = executor or Executor(program)
    covered = np.zeros(program.n_edges, dtype=bool)
    for data in corpus:
        covered[executor.execute(data).edges] = True
    return covered
