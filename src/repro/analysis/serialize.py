"""Persistence for campaign results: JSON records and corpus export.

Campaigns are deterministic given their configuration, but full runs
are expensive — downstream analysis wants to store results once and
reload them. The JSON record keeps everything except the corpus inline;
the corpus (raw input bytes) goes to a directory of numbered files,
AFL-queue style, so external tools can replay it.
"""

from __future__ import annotations

import base64
import json
from pathlib import Path
from typing import List, Optional

from ..fuzzer.stats import CampaignResult
from ..memsim.costmodel import ExecShape

_FORMAT_VERSION = 1


def result_to_dict(result: CampaignResult, *,
                   include_corpus: bool = False) -> dict:
    """JSON-ready dict for one campaign result.

    The corpus is omitted by default (use :func:`save_corpus`); with
    ``include_corpus`` it is embedded base64-encoded.
    """
    record = {
        "format_version": _FORMAT_VERSION,
        "benchmark": result.benchmark,
        "fuzzer": result.fuzzer,
        "map_size": result.map_size,
        "metric": result.metric,
        "lafintel": result.lafintel,
        "execs": result.execs,
        "virtual_seconds": result.virtual_seconds,
        "throughput": result.throughput,
        "discovered_locations": result.discovered_locations,
        "used_key": result.used_key,
        "unique_crashes": result.unique_crashes,
        "afl_unique_crashes": result.afl_unique_crashes,
        "coverage_curve": [[t, v] for t, v in result.coverage_curve],
        "crash_curve": [[t, v] for t, v in result.crash_curve],
        "op_cycles": result.op_cycles,
        "interesting_execs": result.interesting_execs,
        "stopped_by": result.stopped_by,
        "true_edge_coverage": result.true_edge_coverage,
        "corpus_size": result.corpus_size,
        "mean_shape": {
            "traversals": result.mean_shape.traversals,
            "unique_locations": result.mean_shape.unique_locations,
            "used_bytes": result.mean_shape.used_bytes,
        },
    }
    if include_corpus:
        record["corpus"] = [base64.b64encode(d).decode("ascii")
                            for d in result.corpus]
    return record


def result_from_dict(record: dict) -> CampaignResult:
    """Rebuild a :class:`CampaignResult` from :func:`result_to_dict`."""
    version = record.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported result format version {version}")
    corpus: List[bytes] = [base64.b64decode(d)
                           for d in record.get("corpus", [])]
    shape = record["mean_shape"]
    return CampaignResult(
        benchmark=record["benchmark"], fuzzer=record["fuzzer"],
        map_size=record["map_size"], metric=record["metric"],
        lafintel=record["lafintel"], execs=record["execs"],
        virtual_seconds=record["virtual_seconds"],
        throughput=record["throughput"],
        discovered_locations=record["discovered_locations"],
        used_key=record["used_key"],
        unique_crashes=record["unique_crashes"],
        afl_unique_crashes=record["afl_unique_crashes"],
        corpus=corpus,
        coverage_curve=[(t, v) for t, v in record["coverage_curve"]],
        crash_curve=[(t, v) for t, v in record["crash_curve"]],
        op_cycles=dict(record["op_cycles"]),
        interesting_execs=record["interesting_execs"],
        stopped_by=record["stopped_by"],
        mean_shape=ExecShape(
            traversals=shape["traversals"],
            unique_locations=shape["unique_locations"],
            used_bytes=shape["used_bytes"]),
        true_edge_coverage=record["true_edge_coverage"])


def save_result(result: CampaignResult, path, *,
                include_corpus: bool = False) -> None:
    """Write one result to a JSON file."""
    Path(path).write_text(json.dumps(
        result_to_dict(result, include_corpus=include_corpus),
        indent=2, sort_keys=True))


def load_result(path) -> CampaignResult:
    """Load a result written by :func:`save_result`."""
    return result_from_dict(json.loads(Path(path).read_text()))


def save_corpus(corpus, directory) -> List[Path]:
    """Export inputs as ``id:000000``-style files (AFL queue layout)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for i, data in enumerate(corpus):
        path = directory / f"id:{i:06d}"
        path.write_bytes(data)
        paths.append(path)
    return paths


def load_corpus(directory) -> List[bytes]:
    """Load a corpus directory written by :func:`save_corpus`."""
    directory = Path(directory)
    return [path.read_bytes()
            for path in sorted(directory.glob("id:*"))]
