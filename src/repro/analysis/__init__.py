"""Analysis utilities: collision math, bias-free coverage, reporting."""

from .collision import (collision_probability, collision_rate,
                        collision_rate_table, expected_distinct_keys,
                        keys_for_collision_probability)
from .coverage_eval import (coverage_growth, covered_edge_mask,
                            evaluate_corpus)
from .reporting import render_bar_block, render_series, render_table
from .serialize import (load_corpus, load_result, result_from_dict,
                        result_to_dict, save_corpus, save_result)
from .throughput import (arithmetic_mean, average_speedup, geometric_mean,
                         speedups)

__all__ = [
    "collision_probability", "collision_rate", "collision_rate_table",
    "expected_distinct_keys", "keys_for_collision_probability",
    "coverage_growth", "covered_edge_mask", "evaluate_corpus",
    "render_bar_block", "render_series", "render_table",
    "load_corpus", "load_result", "result_from_dict", "result_to_dict",
    "save_corpus", "save_result",
    "arithmetic_mean", "average_speedup", "geometric_mean", "speedups",
]
