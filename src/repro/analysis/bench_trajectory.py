"""Bench-trajectory registry: recorded ``BENCH_*.json`` artifacts.

Each PR that lands a performance change records a host-throughput
baseline as ``BENCH_<n>.json`` at the repo root (see
``benchmarks/test_bench_*.py``), and EXPERIMENTS.md documents the
trajectory as a markdown table. This module is the single source of
truth binding the two: it loads every recorded artifact and renders
the exact table the doc must carry, so
``tests/analysis/test_bench_trajectory.py`` can fail whenever an
artifact lands without its doc row (or a doc row drifts from the
recorded numbers).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

from ..core.errors import ExperimentError

#: Recorded bench artifacts live at the repo root as BENCH_<pr>.json.
BENCH_PATTERN = re.compile(r"^BENCH_(\d+)\.json$")

#: Markdown header of the trajectory table in EXPERIMENTS.md.
TABLE_HEADER = ("| Artifact | Bench | Workload | Serial execs/s | "
                "Batched execs/s | Speedup | Identical |")
TABLE_RULE = "|---|---|---|---|---|---|---|"


@dataclass(frozen=True)
class BenchRecord:
    """One recorded bench artifact.

    Attributes:
        pr: PR number encoded in the file name (``BENCH_<pr>.json``).
        path: artifact path.
        bench: bench id (e.g. ``batch_engine``).
        workload: short human label of the measured workload.
        serial_execs_per_sec / batched_execs_per_sec: recorded rates.
        speedup: recorded ratio.
        identical_results: equivalence re-check outcome.
        backend / workers / window: optional engine descriptors newer
            artifacts carry (``BENCH_6`` onward records the execution
            backend, its worker count and the cross-seed window);
            ``None`` for artifacts predating those fields. The loader
            must accept every recorded schema generation side by side.
    """

    pr: int
    path: Path
    bench: str
    workload: str
    serial_execs_per_sec: float
    batched_execs_per_sec: float
    speedup: float
    identical_results: bool
    backend: Optional[str] = None
    workers: Optional[int] = None
    window: Optional[int] = None


def _workload_label(payload: dict) -> str:
    workload = payload.get("workload", {})
    benchmark = workload.get("benchmark", "?")
    fuzzer = workload.get("fuzzer", "?")
    map_size = int(workload.get("map_size", 0))
    execs = int(payload.get("execs", 0))
    if map_size >= 1 << 20 and map_size % (1 << 20) == 0:
        size = f"{map_size >> 20}M"
    elif map_size >= 1 << 10 and map_size % (1 << 10) == 0:
        size = f"{map_size >> 10}k"
    else:
        size = str(map_size)
    label = f"{benchmark}/{fuzzer} @ {size}, {execs // 1000}k execs"
    window = payload.get("window")
    if window is not None and int(window) > 1:
        label += f", W={int(window)}"
    return label


def load_bench_records(root: Optional[Path] = None
                       ) -> List[BenchRecord]:
    """Load every ``BENCH_*.json`` at the repo root, PR-ordered."""
    if root is None:
        root = Path(__file__).resolve().parents[3]
    found: List[Tuple[int, Path]] = []
    for path in root.glob("BENCH_*.json"):
        match = BENCH_PATTERN.match(path.name)
        if match:
            found.append((int(match.group(1)), path))
    records = []
    for pr, path in sorted(found):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ExperimentError(
                f"unreadable bench artifact {path.name}: {exc}") from exc
        try:
            records.append(BenchRecord(
                pr=pr, path=path, bench=str(payload["bench"]),
                workload=_workload_label(payload),
                serial_execs_per_sec=float(
                    payload["serial_execs_per_sec"]),
                batched_execs_per_sec=float(
                    payload["batched_execs_per_sec"]),
                speedup=float(payload["speedup"]),
                identical_results=bool(payload["identical_results"]),
                # Newer-schema descriptors: optional, so artifacts of
                # every generation load side by side.
                backend=(None if payload.get("backend") is None
                         else str(payload["backend"])),
                workers=(None if payload.get("workers") is None
                         else int(payload["workers"])),
                window=(None if payload.get("window") is None
                        else int(payload["window"]))))
        except KeyError as exc:
            raise ExperimentError(
                f"bench artifact {path.name} is missing field "
                f"{exc.args[0]!r}") from exc
    return records


def render_trajectory_table(records: List[BenchRecord]) -> str:
    """The markdown table EXPERIMENTS.md must carry, byte-exact."""
    lines = [TABLE_HEADER, TABLE_RULE]
    for record in records:
        check = "yes" if record.identical_results else "NO"
        lines.append(
            f"| `{record.path.name}` | {record.bench} | "
            f"{record.workload} | "
            f"{record.serial_execs_per_sec:,.1f} | "
            f"{record.batched_execs_per_sec:,.1f} | "
            f"{record.speedup:.2f}x | {check} |")
    return "\n".join(lines)


def documented_trajectory_table(experiments_md: Path) -> str:
    """Extract the trajectory table block from EXPERIMENTS.md."""
    text = experiments_md.read_text(encoding="utf-8")
    lines = text.splitlines()
    try:
        start = lines.index(TABLE_HEADER)
    except ValueError:
        raise ExperimentError(
            f"{experiments_md.name} has no bench-trajectory table "
            f"(expected header: {TABLE_HEADER!r})") from None
    block = [lines[start]]
    for line in lines[start + 1:]:
        if not line.startswith("|"):
            break
        block.append(line)
    return "\n".join(block)
