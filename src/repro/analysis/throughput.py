"""Throughput aggregation helpers for the experiment harnesses."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (speedup ratios should not be arithmetic-averaged
    blindly, but the paper reports arithmetic averages — both helpers
    exist so EXPERIMENTS.md can show the two side by side)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def arithmetic_mean(values: Sequence[float]) -> float:
    vals = list(values)
    if not vals:
        return 0.0
    return sum(vals) / len(vals)


def speedups(baseline: Dict[str, float],
             contender: Dict[str, float]) -> Dict[str, float]:
    """Per-key ``contender / baseline`` ratios (shared keys only)."""
    out: Dict[str, float] = {}
    for key, base in baseline.items():
        if key in contender and base > 0:
            out[key] = contender[key] / base
    return out


def average_speedup(baseline: Dict[str, float],
                    contender: Dict[str, float]) -> float:
    """The paper's headline number: mean of per-benchmark speedups."""
    ratios = speedups(baseline, contender)
    return arithmetic_mean(list(ratios.values()))
