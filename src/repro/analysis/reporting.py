"""Plain-text table/series renderers for the experiment harnesses.

Every experiment prints its results in the paper's own layout (rows of
Table II/III, series of the figures) so paper-vs-measured comparison is
a visual diff. No plotting dependencies — the harness is meant to run
in CI and its output to be committed into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Fixed-width text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) if i else
                               cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.2f}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)


def render_series(name: str, points: Sequence, *,
                  x_label: str = "x", y_label: str = "y") -> str:
    """One figure series as aligned (x, y) pairs."""
    lines = [f"{name}  ({x_label} -> {y_label})"]
    for x, y in points:
        lines.append(f"  {_fmt(x):>12}  {_fmt(y):>12}")
    return "\n".join(lines)


def render_bar_block(title: str, values: Dict[str, float],
                     unit: str = "") -> str:
    """Labelled values with a proportional ASCII bar."""
    lines = [title]
    if not values:
        return title + "\n  (empty)"
    peak = max(values.values()) or 1.0
    for label, value in values.items():
        bar = "#" * max(1, int(40 * value / peak)) if value > 0 else ""
        lines.append(f"  {label:<22} {_fmt(value):>12}{unit}  {bar}")
    return "\n".join(lines)
