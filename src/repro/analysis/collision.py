"""Collision-rate mathematics (paper §II-B, Equation 1, Figure 2).

Drawing ``n`` keys uniformly from a hash space of size ``H``, the
collision rate is the expected fraction of draws that land on an
already-drawn key:

    CollisionRate(H, n) = 1 - (H / n) * (1 - ((H - 1) / H) ** n)

The module also provides the expected number of *distinct* keys (which
is what BigMap's ``used_key`` converges to) and the birthday-problem
threshold the paper quotes ("~50% probability of at least one collision
after only 300 IDs in a 64 kB map").
"""

from __future__ import annotations

import math
from typing import Iterable, List


def collision_rate(hash_space: int, n_keys: int) -> float:
    """Equation 1: expected fraction of colliding draws."""
    if hash_space <= 0:
        raise ValueError(f"hash space must be positive, got {hash_space}")
    if n_keys < 0:
        raise ValueError(f"key count must be non-negative, got {n_keys}")
    if n_keys == 0:
        return 0.0
    h = float(hash_space)
    n = float(n_keys)
    # (1 - 1/H)^n via expm1/log1p for numerical stability at large H.
    survive = math.exp(n * math.log1p(-1.0 / h))
    rate = 1.0 - (h / n) * (1.0 - survive)
    # Clamp float noise (the expression can land at ~-1e-15 for n=1).
    return min(max(rate, 0.0), 1.0)


def expected_distinct_keys(hash_space: int, n_keys: int) -> float:
    """Expected number of distinct keys among ``n`` uniform draws.

    ``H * (1 - (1 - 1/H)^n)`` — the steady-state value of BigMap's
    ``used_key`` when ``n`` program entities hash into ``H`` slots.
    """
    if hash_space <= 0:
        raise ValueError(f"hash space must be positive, got {hash_space}")
    if n_keys < 0:
        raise ValueError(f"key count must be non-negative, got {n_keys}")
    h = float(hash_space)
    return h * (1.0 - math.exp(n_keys * math.log1p(-1.0 / h)))


def collision_probability(hash_space: int, n_keys: int) -> float:
    """Birthday problem: P(at least one collision among n draws)."""
    if n_keys <= 1:
        return 0.0
    if n_keys > hash_space:
        return 1.0
    # log of prod_{i=0}^{n-1} (1 - i/H)
    log_p = sum(math.log1p(-i / hash_space) for i in range(n_keys))
    return 1.0 - math.exp(log_p)


def keys_for_collision_probability(hash_space: int,
                                   probability: float = 0.5) -> int:
    """Smallest n with P(collision) >= ``probability`` (birthday bound).

    For a 64 kB space and p=0.5 this is ~302, the paper's "~50% after
    assigning only 300 IDs".
    """
    if not 0 < probability < 1:
        raise ValueError(f"probability must be in (0, 1), got "
                         f"{probability}")
    # sqrt approximation as a starting point, then walk.
    n = max(2, int(math.sqrt(2.0 * hash_space *
                             math.log(1.0 / (1.0 - probability)))))
    while collision_probability(hash_space, n) < probability:
        n += 1
    while n > 2 and collision_probability(hash_space, n - 1) >= probability:
        n -= 1
    return n


def collision_rate_table(map_sizes: Iterable[int],
                         key_counts: Iterable[int]) -> List[List[float]]:
    """Figure 2's grid: rows = key counts, columns = map sizes (%)."""
    sizes = list(map_sizes)
    return [[100.0 * collision_rate(h, n) for h in sizes]
            for n in key_counts]
