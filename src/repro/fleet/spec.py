"""Fleet experiment specs: the (fuzzer × benchmark × map-size × trial)
grid and its deterministic expansion into a trial queue.

A :class:`FleetSpec` names the axes of a multi-trial comparison — the
shape fuzzbench calls an *experiment config* — and :meth:`expand` turns
it into a flat, deterministically-ordered list of :class:`TrialSpec`
rows, one per campaign the fleet will run. Trial ids are dense and
stable: the same spec always expands to the same queue, which is what
lets a fleet be re-dispatched, resumed, or replayed on the in-process
backend with identical results.

Seed pairing follows Klees et al. (*Evaluating Fuzz Testing*): replica
``k`` of every fuzzer draws the same ``rng_seed``, so cross-fuzzer
comparisons are paired on randomness and differences are attributable
to the fuzzer, not the draw.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.errors import FleetSpecError
from ..fuzzer.campaign import CampaignConfig

#: Seed stride between trial replicas — the same stride
#: :class:`repro.fuzzer.ParallelSession` uses between instances, so a
#: fleet replica and a parallel-session instance with the same index
#: see the same stream.
REPLICA_SEED_STRIDE = 1000

#: Injected-fault kinds a trial spec can carry (process-kill and
#: worker-stall; the virtual-time kinds live in repro.faults.plan).
KILL = "kill"
STALL = "stall"
TRIAL_FAULT_KINDS: Tuple[str, ...] = (KILL, STALL)


@dataclass(frozen=True)
class TrialFault:
    """A deterministic fault injected into one trial's worker.

    Attributes:
        kind: ``"kill"`` (the worker process dies mid-trial) or
            ``"stall"`` (the worker stops making progress but stays
            alive, so the dispatcher's heartbeat watchdog must catch
            it).
        at_segment: fire after this many completed checkpoint segments
            (0 = before the first checkpoint exists, forcing a
            from-scratch retry).
        on_attempt: only fire on this attempt number (default 0: the
            first attempt fails, the retry runs clean).
    """

    kind: str
    at_segment: int = 1
    on_attempt: int = 0

    def __post_init__(self) -> None:
        if self.kind not in TRIAL_FAULT_KINDS:
            raise FleetSpecError(
                f"unknown trial fault kind {self.kind!r}; known: "
                f"{', '.join(TRIAL_FAULT_KINDS)}")
        if self.at_segment < 0:
            raise FleetSpecError("at_segment must be >= 0")
        if self.on_attempt < 0:
            raise FleetSpecError("on_attempt must be >= 0")


@dataclass(frozen=True)
class TrialSpec:
    """One cell of the expanded trial queue.

    Attributes:
        trial_id: dense index into the expansion (stable across runs).
        fuzzer / benchmark / map_size: the compared configuration axes.
        replica: trial replica index within the cell (0-based).
        rng_seed: campaign RNG seed (paired across fuzzers per replica).
        config: the full :class:`CampaignConfig` the worker runs.
        fault: optional injected fault (fault-tolerance testing).
    """

    trial_id: int
    fuzzer: str
    benchmark: str
    map_size: int
    replica: int
    rng_seed: int
    config: CampaignConfig
    fault: Optional[TrialFault] = None

    @property
    def cell(self) -> Tuple[str, str, int]:
        """The comparison cell this trial belongs to."""
        return (self.benchmark, self.fuzzer, self.map_size)


@dataclass(frozen=True)
class FleetSpec:
    """A multi-trial fleet experiment (see module docstring).

    Attributes:
        fuzzers / benchmarks / map_sizes: grid axes, in report order.
        n_trials: replicas per (fuzzer, benchmark, map-size) cell.
        base_seed: seed of replica 0 (replica k adds
            ``k * REPLICA_SEED_STRIDE``).
        scale / seed_scale / virtual_seconds / max_real_execs / metric /
            lafintel: forwarded into every trial's
            :class:`CampaignConfig`.
        snapshot_interval: virtual seconds between worker checkpoints +
            corpus snapshots; defaults to a quarter of the budget.
        faults: injected faults, keyed by trial id (validated against
            the expansion).
    """

    fuzzers: Tuple[str, ...]
    benchmarks: Tuple[str, ...]
    map_sizes: Tuple[int, ...]
    n_trials: int
    base_seed: int = 0
    scale: float = 0.25
    seed_scale: Optional[float] = None
    virtual_seconds: float = 30.0
    max_real_execs: int = 50_000
    metric: str = "afl-edge"
    lafintel: bool = False
    snapshot_interval: Optional[float] = None
    faults: Dict[int, TrialFault] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for axis, values in (("fuzzers", self.fuzzers),
                             ("benchmarks", self.benchmarks),
                             ("map_sizes", self.map_sizes)):
            if not values:
                raise FleetSpecError(f"spec has an empty {axis} axis")
        if self.n_trials < 1:
            raise FleetSpecError(
                f"n_trials must be >= 1, got {self.n_trials}")
        if (self.snapshot_interval is not None and
                self.snapshot_interval <= 0):
            raise FleetSpecError("snapshot_interval must be positive")
        n = self.n_expanded
        for trial_id in sorted(self.faults):
            if not 0 <= trial_id < n:
                raise FleetSpecError(
                    f"fault addressed to trial {trial_id}, but the "
                    f"spec expands to {n} trials")

    @property
    def n_expanded(self) -> int:
        return (len(self.benchmarks) * len(self.map_sizes) *
                len(self.fuzzers) * self.n_trials)

    @property
    def checkpoint_interval(self) -> float:
        """Resolved snapshot/checkpoint cadence in virtual seconds."""
        if self.snapshot_interval is not None:
            return self.snapshot_interval
        return max(self.virtual_seconds / 4.0, 1e-9)

    def to_json(self) -> str:
        """Canonical JSON echo of the spec (sorted keys, so equal specs
        serialize byte-identically — the resume path compares these).

        Persisted into the results store's ``fleet_meta`` table, this
        is what lets ``repro-fuzz fleet --resume <store>`` reconstruct
        the exact grid a dead dispatcher was running without the
        original command line.
        """
        payload = {
            "fuzzers": list(self.fuzzers),
            "benchmarks": list(self.benchmarks),
            "map_sizes": [int(s) for s in self.map_sizes],
            "n_trials": self.n_trials,
            "base_seed": self.base_seed,
            "scale": self.scale,
            "seed_scale": self.seed_scale,
            "virtual_seconds": self.virtual_seconds,
            "max_real_execs": self.max_real_execs,
            "metric": self.metric,
            "lafintel": self.lafintel,
            "snapshot_interval": self.snapshot_interval,
            "faults": {
                str(trial_id): {"kind": fault.kind,
                                "at_segment": fault.at_segment,
                                "on_attempt": fault.on_attempt}
                for trial_id, fault in sorted(self.faults.items())},
        }
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FleetSpec":
        """Inverse of :meth:`to_json` (round-trips exactly)."""
        try:
            payload = json.loads(text)
        except (TypeError, ValueError) as exc:
            raise FleetSpecError(
                f"unparseable persisted fleet spec: {exc}") from exc
        try:
            faults = {
                int(trial_id): TrialFault(
                    kind=fault["kind"],
                    at_segment=int(fault["at_segment"]),
                    on_attempt=int(fault["on_attempt"]))
                for trial_id, fault in payload["faults"].items()}
            return cls(
                fuzzers=tuple(payload["fuzzers"]),
                benchmarks=tuple(payload["benchmarks"]),
                map_sizes=tuple(int(s) for s in payload["map_sizes"]),
                n_trials=int(payload["n_trials"]),
                base_seed=int(payload["base_seed"]),
                scale=float(payload["scale"]),
                seed_scale=(None if payload["seed_scale"] is None
                            else float(payload["seed_scale"])),
                virtual_seconds=float(payload["virtual_seconds"]),
                max_real_execs=int(payload["max_real_execs"]),
                metric=str(payload["metric"]),
                lafintel=bool(payload["lafintel"]),
                snapshot_interval=(
                    None if payload["snapshot_interval"] is None
                    else float(payload["snapshot_interval"])),
                faults=faults)
        except KeyError as exc:
            raise FleetSpecError(
                f"persisted fleet spec missing field {exc}") from exc

    def expand(self) -> List[TrialSpec]:
        """The deterministic trial queue: benchmark-major, then map
        size, fuzzer, replica — the order reports group by."""
        trials: List[TrialSpec] = []
        for benchmark in self.benchmarks:
            for map_size in self.map_sizes:
                for fuzzer in self.fuzzers:
                    for replica in range(self.n_trials):
                        trial_id = len(trials)
                        seed = (self.base_seed +
                                replica * REPLICA_SEED_STRIDE)
                        config = CampaignConfig(
                            benchmark=benchmark, fuzzer=fuzzer,
                            map_size=map_size, metric=self.metric,
                            lafintel=self.lafintel, scale=self.scale,
                            seed_scale=self.seed_scale,
                            virtual_seconds=self.virtual_seconds,
                            max_real_execs=self.max_real_execs,
                            rng_seed=seed)
                        trials.append(TrialSpec(
                            trial_id=trial_id, fuzzer=fuzzer,
                            benchmark=benchmark, map_size=map_size,
                            replica=replica, rng_seed=seed,
                            config=config,
                            fault=self.faults.get(trial_id)))
        return trials
