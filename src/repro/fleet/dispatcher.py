"""The fleet dispatcher: spec → trial queue → workers → store.

:class:`FleetDispatcher` expands a :class:`~repro.fleet.spec.FleetSpec`
into its trial queue, keeps every backend worker slot busy, and routes
each completion:

* ``ok`` — the trial row (and its out-of-band coverage measurements)
  land in the :class:`~repro.fleet.store.ResultsStore`;
* ``crashed`` / ``stalled`` — the failure goes through the *existing*
  :class:`repro.faults.SessionSupervisor`: exponential-backoff retry
  accounting, per-trial failure logs, and ``fault`` / ``restart``
  telemetry events, exactly as parallel-session instances are
  supervised. A retried attempt resumes from the trial's persisted
  checkpoint (losing at most one segment); a trial whose retry budget
  runs out is recorded as *lost* — or *quarantined*, when the budget
  died on artifact corruption — and the fleet completes with the
  survivors.

**Crash safety.** Fleet progress lives in the store's durable trial
state machine (``pending → dispatched → running → measuring →
done/lost/quarantined``, one transaction per transition), not in
dispatcher memory: the dispatcher advances each trial's state as it
dispatches, records, and measures it, so a dispatcher that dies at any
point leaves a store from which ``FleetDispatcher.from_store`` (the
``repro-fuzz fleet --resume`` path) can reconstruct the fleet exactly.
Resume *reconciles* store state against on-disk worker artifacts:
terminal trials are skipped, a trial whose worker finished but whose
row was never recorded is completed from its (integrity-checked)
result artifact, a trial owed only measurement is re-measured, and
interrupted trials are re-queued to continue from their last good
checkpoint — yielding trial rows and statistics bit-identical to an
uninterrupted run (campaign determinism + the checkpoint contract).

Telemetry ``t`` values on fleet events are a logical dispatch clock (a
monotone per-event counter), keeping the in-process backend's event
stream byte-identical across runs; see
:mod:`repro.telemetry.events`.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from collections import deque

from ..core.errors import (ArtifactIntegrityError, FleetDispatchError,
                           FleetResumeError)
from ..faults import DEAD, RestartPolicy, SessionSupervisor
from ..telemetry.recorder import SessionTelemetry
from .artifacts import log_integrity, quarantine, read_artifact, \
    read_integrity_log
from .measurer import SnapshotMeasurer
from .spec import FleetSpec, TrialSpec
from .store import (DISPATCHED, DONE, LOST, MEASURING, PENDING,
                    QUARANTINED, RUNNING, ResultsStore)
from .workers import (CHECKPOINT_FILE, OK, RESULT_FILE, InlineBackend,
                      TrialCompletion, TrialRequest)

#: ``fleet_meta`` keys the dispatcher persists for resume.
META_SPEC = "spec"
META_WORKDIR = "workdir"


@dataclass
class FleetSummary:
    """Aggregate outcome of one dispatched fleet.

    Attributes:
        n_trials: trials the spec expanded to.
        completed: trials whose result row is in the store (after a
            resume this counts previously-finished trials too — it
            describes the fleet, not one dispatcher incarnation).
        lost: trial ids terminal without a result (lost + quarantined).
        retries: total retry dispatches across the fleet.
        attempts: per-trial attempt counts (1 = clean first run).
        measured_snapshots: coverage snapshots measured out-of-band.
        reconciled: trials completed during resume from a worker's
            result artifact (the worker finished; the old dispatcher
            died before recording it).
        remeasured: trials that only needed measurement re-run.
        requeued: trials a resume sent back to the dispatch queue.
        quarantined_artifacts: corrupt artifacts renamed aside.
        integrity_events: integrity incidents surfaced via telemetry.
        store_retries: transient store IO errors absorbed by backoff.
        resumed: whether this run reconciled an existing store.
    """

    n_trials: int
    completed: int
    lost: List[int] = field(default_factory=list)
    retries: int = 0
    attempts: Dict[int, int] = field(default_factory=dict)
    measured_snapshots: int = 0
    reconciled: int = 0
    remeasured: int = 0
    requeued: int = 0
    quarantined_artifacts: int = 0
    integrity_events: int = 0
    store_retries: int = 0
    resumed: bool = False


class FleetDispatcher:
    """Runs one fleet experiment to completion (see module docstring).

    Args:
        spec: the experiment grid.
        store: results store (defaults to in-memory).
        backend: worker backend (defaults to
            :class:`~repro.fleet.workers.InlineBackend`).
        retry_policy: supervisor retry budget/backoff (defaults to
            :class:`repro.faults.RestartPolicy`).
        telemetry: optional
            :class:`~repro.telemetry.SessionTelemetry`; trial
            lifecycle, retry, fault/restart, measurement, integrity and
            resume events are emitted session-level, tagged with the
            trial id.
        workdir: root directory for per-trial artifacts (checkpoints,
            corpus snapshots, heartbeats); a temporary directory is
            created when omitted.
        measure: measure corpus snapshots out-of-band after each trial
            completes (on by default).
        resume: reconcile an existing store instead of starting fresh
            (usually via :meth:`from_store`).
        chaos: optional chaos controller
            (:class:`repro.fleet.chaos.ChaosController`); its
            ``on_tick(dispatcher)`` runs once per dispatch-loop
            iteration and may inject faults, including killing this
            dispatcher.
    """

    def __init__(self, spec: FleetSpec, *,
                 store: Optional[ResultsStore] = None,
                 backend=None,
                 retry_policy: Optional[RestartPolicy] = None,
                 telemetry: Optional[SessionTelemetry] = None,
                 workdir: Optional[str] = None,
                 measure: bool = True,
                 resume: bool = False,
                 chaos=None) -> None:
        self.spec = spec
        self.trials = spec.expand()
        self.store = store if store is not None else ResultsStore()
        self.backend = backend if backend is not None else InlineBackend()
        self.telemetry = telemetry
        self.resume = resume
        self.chaos = chaos
        if workdir is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="fleet-")
            workdir = self._tmpdir.name
        else:
            self._tmpdir = None
        self.workdir = workdir
        self.supervisor = SessionSupervisor(
            len(self.trials), retry_policy or RestartPolicy(),
            telemetry=telemetry)
        self.measurer = SnapshotMeasurer() if measure else None
        self._attempts: Dict[int, int] = {}
        self._integrity_seen: Dict[int, int] = {}
        self._clock = 0
        self._bind_store()

    def _bind_store(self) -> None:
        """Make the store the fleet's source of truth: persist the
        spec + workdir, create state rows, wire retry telemetry."""
        spec_json = self.spec.to_json()
        persisted = self.store.get_meta(META_SPEC)
        if persisted is None:
            self.store.set_meta(META_SPEC, spec_json)
        elif persisted != spec_json:
            if self.resume:
                raise FleetResumeError(
                    "the store's persisted spec differs from the "
                    "requested one; resume with the persisted spec "
                    "(FleetDispatcher.from_store) or use a fresh store")
            raise FleetDispatchError(
                "results store already holds a different fleet's spec; "
                "use a fresh store or resume the existing fleet")
        self.store.set_meta(META_WORKDIR, os.path.abspath(self.workdir))
        self.store.init_states(
            [trial.trial_id for trial in self.trials])
        if self.telemetry is not None:
            self.store.on_retry = self._on_store_retry

    @classmethod
    def from_store(cls, store: ResultsStore, *,
                   workdir: Optional[str] = None,
                   **kwargs) -> "FleetDispatcher":
        """Reconstruct a dispatcher for ``fleet --resume``: the spec
        and work directory come from the store's ``fleet_meta``."""
        spec_json = store.get_meta(META_SPEC)
        if spec_json is None:
            raise FleetResumeError(
                f"store {store.path!r} has no persisted fleet spec; "
                f"it was not written by a fleet dispatcher")
        spec = FleetSpec.from_json(spec_json)
        if workdir is None:
            workdir = store.get_meta(META_WORKDIR)
        if workdir is None or not os.path.isdir(workdir):
            raise FleetResumeError(
                f"fleet work directory {workdir!r} is missing; worker "
                f"artifacts are required to reconcile the store")
        return cls(spec, store=store, workdir=workdir, resume=True,
                   **kwargs)

    # -- plumbing ------------------------------------------------------

    def trial_workdir(self, trial_id: int) -> str:
        return os.path.join(self.workdir, f"trial-{trial_id:04d}")

    def _tick(self) -> float:
        """Advance and return the logical event clock."""
        self._clock += 1
        return float(self._clock)

    def _emit(self, kind: str, trial_id: int, **payload) -> None:
        if self.telemetry is not None:
            self.telemetry.session.emit(kind, self._tick(),
                                        instance=trial_id, **payload)

    def _on_store_retry(self, op: str, attempt: int,
                        error: str) -> None:
        self._emit("store_retry", -1, op=op, attempt=attempt,
                   error=error)

    def _drain_integrity(self, trial_id: int, summary: FleetSummary
                         ) -> None:
        """Surface integrity incidents a worker logged on disk as
        telemetry (each incident exactly once across attempts)."""
        entries = read_integrity_log(self.trial_workdir(trial_id))
        seen = self._integrity_seen.get(trial_id, 0)
        for artifact, reason in entries[seen:]:
            summary.integrity_events += 1
            self._emit("integrity", trial_id, trial=trial_id,
                       artifact=artifact, detail=reason)
        self._integrity_seen[trial_id] = len(entries)

    # -- dispatch loop -------------------------------------------------

    def _request_for(self, trial: TrialSpec, attempt: int
                     ) -> TrialRequest:
        return TrialRequest(
            trial=trial, attempt=attempt,
            workdir=self.trial_workdir(trial.trial_id),
            snapshot_interval=self.spec.checkpoint_interval)

    def _dispatch(self, queue: Deque[TrialSpec]) -> int:
        dispatched = 0
        while queue and self.backend.in_flight < self.backend.n_workers:
            trial = queue.popleft()
            # Durable intent first: the attempt counter increments
            # before the backend sees the request, so a dispatcher
            # crash inside submit() can never under-count attempts.
            attempt = self.store.transition(
                trial.trial_id, DISPATCHED) - 1
            request = self._request_for(trial, attempt)
            self._emit("trial_dispatch", trial.trial_id,
                       trial=trial.trial_id, attempt=attempt,
                       fuzzer=trial.fuzzer, benchmark=trial.benchmark,
                       map_size=trial.map_size,
                       rng_seed=trial.rng_seed)
            self._attempts[trial.trial_id] = attempt + 1
            self.backend.submit(request)
            self.store.transition(trial.trial_id, RUNNING)
            dispatched += 1
            if self.backend.n_workers <= 1:
                # A synchronous backend completes at submit; drain
                # before dispatching more so completions interleave in
                # queue order.
                break
        return dispatched

    def _measure_and_finish(self, trial: TrialSpec,
                            summary: FleetSummary) -> None:
        """Measure a recorded trial's snapshots, then mark it done."""
        if self.measurer is not None:
            outcome = self.measurer.measure_trial(
                trial, self.trial_workdir(trial.trial_id), self.store,
                telemetry=(self.telemetry.session
                           if self.telemetry is not None else None),
                now=self._tick())
            summary.measured_snapshots += outcome.measured
            summary.quarantined_artifacts += outcome.quarantined
            summary.integrity_events += outcome.clamped_lags
        self.store.transition(trial.trial_id, DONE)

    def _complete_ok(self, completion: TrialCompletion,
                     summary: FleetSummary) -> None:
        trial = completion.request.trial
        result = completion.result
        self.store.record_trial(
            trial, result, attempts=self._attempts[trial.trial_id])
        self._emit("trial_finish", trial.trial_id,
                   trial=trial.trial_id,
                   attempt=completion.request.attempt, status=OK,
                   execs=result.execs,
                   edges=result.discovered_locations,
                   crashes=result.unique_crashes)
        self._drain_integrity(trial.trial_id, summary)
        self._measure_and_finish(trial, summary)

    def _complete_failed(self, completion: TrialCompletion,
                         queue: Deque[TrialSpec],
                         summary: FleetSummary) -> None:
        trial = completion.request.trial
        trial_id = trial.trial_id
        reason = f"{completion.status}: {completion.reason}"
        self._drain_integrity(trial_id, summary)
        status = self.supervisor.mark_failed(
            trial_id, now=self._tick(), reason=reason)
        if status == DEAD:
            self.supervisor.mark_restarted(trial_id, now=self._tick())
            attempt = completion.request.attempt + 1
            has_checkpoint = os.path.exists(os.path.join(
                self.trial_workdir(trial_id), CHECKPOINT_FILE))
            self._emit("trial_retry", trial_id, trial=trial_id,
                       attempt=attempt, reason=reason,
                       resumed_from_checkpoint=int(has_checkpoint))
            summary.retries += 1
            self.store.transition(trial_id, PENDING)
            queue.append(trial)
        else:
            self.store.record_lost(
                trial, attempts=self._attempts[trial_id],
                quarantined=completion.integrity_failure)
            self._emit("trial_finish", trial_id, trial=trial_id,
                       attempt=completion.request.attempt,
                       status=(QUARANTINED if completion.integrity_failure
                               else LOST),
                       execs=0, edges=0, crashes=0)
            summary.lost.append(trial_id)

    # -- resume reconciliation -----------------------------------------

    def _reconcile(self, queue: Deque[TrialSpec],
                   summary: FleetSummary) -> None:
        """Rebuild the dispatch queue from the store + worker artifacts
        (see module docstring for the reconciliation rules)."""
        summary.resumed = True
        states = self.store.trial_states()
        counts = {"done": 0, "lost": 0, "reconciled": 0,
                  "requeued": 0, "remeasured": 0}
        for trial in self.trials:
            trial_id = trial.trial_id
            state, attempt = states.get(trial_id, (PENDING, 0))
            self._attempts[trial_id] = attempt
            if attempt > 1:
                # Restart budgets persist across dispatcher deaths:
                # attempt N means N-1 restarts already happened.
                self.supervisor.health[trial_id].restarts = attempt - 1
            if state == DONE:
                counts["done"] += 1
                continue
            if state in (LOST, QUARANTINED):
                counts["lost"] += 1
                summary.lost.append(trial_id)
                continue
            if state == MEASURING:
                # The result row landed; only measurement is owed.
                counts["remeasured"] += 1
                summary.remeasured += 1
                self._drain_integrity(trial_id, summary)
                self._measure_and_finish(trial, summary)
                continue
            if state in (DISPATCHED, RUNNING):
                if self._reconcile_from_result(trial, attempt, summary):
                    counts["reconciled"] += 1
                    continue
                self.store.transition(trial_id, PENDING)
            counts["requeued"] += 1
            summary.requeued += 1
            queue.append(trial)
        self._emit("fleet_resume", -1, **counts)

    def _reconcile_from_result(self, trial: TrialSpec, attempt: int,
                               summary: FleetSummary) -> bool:
        """Land a trial whose worker finished but whose completion the
        dead dispatcher never processed. Returns True when recovered."""
        trial_id = trial.trial_id
        workdir = self.trial_workdir(trial_id)
        result_path = os.path.join(workdir, RESULT_FILE)
        if not os.path.exists(result_path):
            return False
        try:
            result = read_artifact(result_path)
        except ArtifactIntegrityError as exc:
            quarantine(result_path)
            log_integrity(workdir, RESULT_FILE, str(exc))
            summary.quarantined_artifacts += 1
            return False
        attempts = max(attempt, 1)
        self._attempts[trial_id] = attempts
        self.store.record_trial(trial, result, attempts=attempts)
        self._emit("trial_finish", trial_id, trial=trial_id,
                   attempt=attempts - 1, status=OK,
                   execs=result.execs,
                   edges=result.discovered_locations,
                   crashes=result.unique_crashes)
        summary.reconciled += 1
        self._drain_integrity(trial_id, summary)
        self._measure_and_finish(trial, summary)
        return True

    # -- main loop -----------------------------------------------------

    def run(self) -> FleetSummary:
        """Dispatch every trial; block until the fleet drains.

        On a clean exit the summary reflects the whole fleet's durable
        state. If the dispatcher dies mid-run (including an injected
        :class:`~repro.fleet.chaos.DispatcherKilled`), the store
        remains consistent and a later :meth:`from_store` dispatcher
        finishes the fleet; the temporary work directory, when one was
        created, is deliberately left on disk in that case so the
        resume can reconcile its artifacts.
        """
        summary = FleetSummary(n_trials=len(self.trials), completed=0)
        queue: Deque[TrialSpec] = deque()
        if self.resume:
            self._reconcile(queue, summary)
        else:
            queue.extend(self.trials)
        try:
            while queue or self.backend.in_flight:
                if self.chaos is not None:
                    self.chaos.on_tick(self)
                self._dispatch(queue)
                for completion in self.backend.poll():
                    if completion.status == OK:
                        self._complete_ok(completion, summary)
                    else:
                        self._complete_failed(completion, queue,
                                              summary)
        finally:
            self.backend.shutdown()
        if self._tmpdir is not None:
            # Reached only on a clean drain: a killed dispatcher must
            # leave artifacts behind for --resume to reconcile.
            self._tmpdir.cleanup()
        summary.attempts = dict(self._attempts)
        summary.store_retries = self.store.write_retries
        counts = self.store.state_counts()
        summary.completed = counts.get(DONE, 0)
        summary.lost = sorted(set(summary.lost))
        return summary


def run_fleet(spec: FleetSpec, **kwargs) -> FleetSummary:
    """Convenience wrapper: construct and run a dispatcher."""
    return FleetDispatcher(spec, **kwargs).run()
