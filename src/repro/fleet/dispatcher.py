"""The fleet dispatcher: spec → trial queue → workers → store.

:class:`FleetDispatcher` expands a :class:`~repro.fleet.spec.FleetSpec`
into its trial queue, keeps every backend worker slot busy, and routes
each completion:

* ``ok`` — the trial row (and its out-of-band coverage measurements)
  land in the :class:`~repro.fleet.store.ResultsStore`;
* ``crashed`` / ``stalled`` — the failure goes through the *existing*
  :class:`repro.faults.SessionSupervisor`: exponential-backoff retry
  accounting, per-trial failure logs, and ``fault`` / ``restart``
  telemetry events, exactly as parallel-session instances are
  supervised. A retried attempt resumes from the trial's persisted
  checkpoint (losing at most one segment); a trial whose retry budget
  runs out is recorded as *lost*, and the fleet completes with the
  survivors.

Telemetry ``t`` values on fleet events are a logical dispatch clock (a
monotone per-event counter), keeping the in-process backend's event
stream byte-identical across runs; see
:mod:`repro.telemetry.events`.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from collections import deque

from ..faults import DEAD, RestartPolicy, SessionSupervisor
from ..telemetry.recorder import SessionTelemetry
from .measurer import SnapshotMeasurer
from .spec import FleetSpec, TrialSpec
from .store import ResultsStore
from .workers import (CHECKPOINT_FILE, OK, InlineBackend,
                      TrialCompletion, TrialRequest)


@dataclass
class FleetSummary:
    """Aggregate outcome of one dispatched fleet.

    Attributes:
        n_trials: trials the spec expanded to.
        completed: trials that landed a result row.
        lost: trial ids whose retry budget ran out.
        retries: total retry dispatches across the fleet.
        attempts: per-trial attempt counts (1 = clean first run).
        measured_snapshots: coverage snapshots measured out-of-band.
    """

    n_trials: int
    completed: int
    lost: List[int] = field(default_factory=list)
    retries: int = 0
    attempts: Dict[int, int] = field(default_factory=dict)
    measured_snapshots: int = 0


class FleetDispatcher:
    """Runs one fleet experiment to completion (see module docstring).

    Args:
        spec: the experiment grid.
        store: results store (defaults to in-memory).
        backend: worker backend (defaults to
            :class:`~repro.fleet.workers.InlineBackend`).
        retry_policy: supervisor retry budget/backoff (defaults to
            :class:`repro.faults.RestartPolicy`).
        telemetry: optional
            :class:`~repro.telemetry.SessionTelemetry`; trial
            lifecycle, retry, fault/restart and measurement events are
            emitted session-level, tagged with the trial id.
        workdir: root directory for per-trial artifacts (checkpoints,
            corpus snapshots, heartbeats); a temporary directory is
            created when omitted.
        measure: measure corpus snapshots out-of-band after each trial
            completes (on by default).
    """

    def __init__(self, spec: FleetSpec, *,
                 store: Optional[ResultsStore] = None,
                 backend=None,
                 retry_policy: Optional[RestartPolicy] = None,
                 telemetry: Optional[SessionTelemetry] = None,
                 workdir: Optional[str] = None,
                 measure: bool = True) -> None:
        self.spec = spec
        self.trials = spec.expand()
        self.store = store if store is not None else ResultsStore()
        self.backend = backend if backend is not None else InlineBackend()
        self.telemetry = telemetry
        if workdir is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="fleet-")
            workdir = self._tmpdir.name
        else:
            self._tmpdir = None
        self.workdir = workdir
        self.supervisor = SessionSupervisor(
            len(self.trials), retry_policy or RestartPolicy(),
            telemetry=telemetry)
        self.measurer = SnapshotMeasurer() if measure else None
        self._attempts: Dict[int, int] = {}
        self._clock = 0

    # -- plumbing ------------------------------------------------------

    def trial_workdir(self, trial_id: int) -> str:
        return os.path.join(self.workdir, f"trial-{trial_id:04d}")

    def _tick(self) -> float:
        """Advance and return the logical event clock."""
        self._clock += 1
        return float(self._clock)

    def _emit(self, kind: str, trial_id: int, **payload) -> None:
        if self.telemetry is not None:
            self.telemetry.session.emit(kind, self._tick(),
                                        instance=trial_id, **payload)

    # -- dispatch loop -------------------------------------------------

    def _request_for(self, trial: TrialSpec, attempt: int
                     ) -> TrialRequest:
        return TrialRequest(
            trial=trial, attempt=attempt,
            workdir=self.trial_workdir(trial.trial_id),
            snapshot_interval=self.spec.checkpoint_interval)

    def _dispatch(self, queue: Deque[TrialRequest]) -> int:
        dispatched = 0
        while queue and self.backend.in_flight < self.backend.n_workers:
            request = queue.popleft()
            trial = request.trial
            self._emit("trial_dispatch", trial.trial_id,
                       trial=trial.trial_id, attempt=request.attempt,
                       fuzzer=trial.fuzzer, benchmark=trial.benchmark,
                       map_size=trial.map_size,
                       rng_seed=trial.rng_seed)
            self._attempts[trial.trial_id] = request.attempt + 1
            self.backend.submit(request)
            dispatched += 1
            if self.backend.n_workers <= 1:
                # A synchronous backend completes at submit; drain
                # before dispatching more so completions interleave in
                # queue order.
                break
        return dispatched

    def _complete_ok(self, completion: TrialCompletion,
                     summary: FleetSummary) -> None:
        trial = completion.request.trial
        result = completion.result
        self.store.record_trial(
            trial, result, attempts=self._attempts[trial.trial_id])
        self._emit("trial_finish", trial.trial_id,
                   trial=trial.trial_id,
                   attempt=completion.request.attempt, status=OK,
                   execs=result.execs,
                   edges=result.discovered_locations,
                   crashes=result.unique_crashes)
        summary.completed += 1
        if self.measurer is not None:
            summary.measured_snapshots += self.measurer.measure_trial(
                trial, completion.request.workdir, self.store,
                telemetry=(self.telemetry.session
                           if self.telemetry is not None else None),
                now=self._tick())

    def _complete_failed(self, completion: TrialCompletion,
                         queue: Deque[TrialRequest],
                         summary: FleetSummary) -> None:
        trial = completion.request.trial
        trial_id = trial.trial_id
        reason = f"{completion.status}: {completion.reason}"
        status = self.supervisor.mark_failed(
            trial_id, now=self._tick(), reason=reason)
        if status == DEAD:
            self.supervisor.mark_restarted(trial_id, now=self._tick())
            attempt = completion.request.attempt + 1
            has_checkpoint = os.path.exists(os.path.join(
                self.trial_workdir(trial_id), CHECKPOINT_FILE))
            self._emit("trial_retry", trial_id, trial=trial_id,
                       attempt=attempt, reason=reason,
                       resumed_from_checkpoint=int(has_checkpoint))
            summary.retries += 1
            queue.append(self._request_for(trial, attempt))
        else:
            self.store.record_lost(
                trial, attempts=self._attempts[trial_id])
            self._emit("trial_finish", trial_id, trial=trial_id,
                       attempt=completion.request.attempt,
                       status="lost", execs=0, edges=0, crashes=0)
            summary.lost.append(trial_id)

    def run(self) -> FleetSummary:
        """Dispatch every trial; block until the fleet drains."""
        summary = FleetSummary(n_trials=len(self.trials), completed=0)
        queue: Deque[TrialRequest] = deque(
            self._request_for(trial, attempt=0)
            for trial in self.trials)
        try:
            while queue or self.backend.in_flight:
                self._dispatch(queue)
                for completion in self.backend.poll():
                    if completion.status == OK:
                        self._complete_ok(completion, summary)
                    else:
                        self._complete_failed(completion, queue,
                                              summary)
        finally:
            self.backend.shutdown()
            if self._tmpdir is not None:
                self._tmpdir.cleanup()
        summary.attempts = dict(self._attempts)
        return summary


def run_fleet(spec: FleetSpec, **kwargs) -> FleetSummary:
    """Convenience wrapper: construct and run a dispatcher."""
    return FleetDispatcher(spec, **kwargs).run()
