"""Multi-trial comparison statistics for fleet experiments.

Klees et al. (*Evaluating Fuzz Testing*, CCS'18) is the contract here:
single fuzzing runs are noise, so fleet reports must carry

* **Mann–Whitney U** — a rank test for "does fuzzer A stochastically
  dominate fuzzer B?", robust to the heavy-tailed, non-normal outcome
  distributions fuzzing produces;
* **Vargha–Delaney Â₁₂** — the effect size the same paper recommends:
  the probability a random A-trial beats a random B-trial (0.5 = no
  effect, 1.0 = total dominance);
* **bootstrap confidence intervals** — percentile CIs on medians (and
  median differences) from seeded resampling, so every interval is
  reproducible bit-for-bit.

Everything is implemented on numpy alone (no scipy dependency); the
Mann–Whitney p-value uses the tie-corrected normal approximation with
continuity correction — the same ``method="asymptotic"`` formulation
scipy uses, which ``tests/fleet/test_fleet_stats.py`` pins against
precomputed scipy golden values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

import numpy as np

__all__ = [
    "rank_with_ties", "mann_whitney_u", "MannWhitneyResult",
    "vargha_delaney_a12", "bootstrap_ci", "bootstrap_diff_ci",
]

ALTERNATIVES = ("two-sided", "greater", "less")


def rank_with_ties(values: Sequence[float]) -> np.ndarray:
    """Mid-ranks (1-based); tied values share the average rank."""
    arr = np.asarray(values, dtype=np.float64)
    order = np.argsort(arr, kind="stable")
    ranks = np.empty(arr.size, dtype=np.float64)
    sorted_vals = arr[order]
    i = 0
    while i < arr.size:
        j = i
        while j + 1 < arr.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        # Ranks i+1 .. j+1 (1-based) share their mean.
        ranks[order[i:j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    return ranks


def _normal_sf(z: float) -> float:
    """Standard-normal survival function via erfc (no scipy)."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


@dataclass(frozen=True)
class MannWhitneyResult:
    """Outcome of one Mann–Whitney U test.

    Attributes:
        u1: U statistic of the first sample (concordant pairs + half
            the ties).
        u2: U statistic of the second sample (``u1 + u2 = m * n``).
        p_value: tie-corrected normal-approximation p-value with
            continuity correction; 1.0 when the variance degenerates
            (every observation tied).
        alternative: the tested alternative hypothesis.
    """

    u1: float
    u2: float
    p_value: float
    alternative: str


def mann_whitney_u(x: Sequence[float], y: Sequence[float],
                   alternative: str = "two-sided") -> MannWhitneyResult:
    """Mann–Whitney U test of ``x`` vs ``y`` (see module docstring).

    ``alternative="greater"`` tests whether ``x`` tends to exceed
    ``y``. Degenerate inputs are defined, not errors: with every
    observation tied (including identical samples) the variance is
    zero and the p-value is 1.0.
    """
    if alternative not in ALTERNATIVES:
        raise ValueError(f"unknown alternative {alternative!r}; "
                         f"known: {', '.join(ALTERNATIVES)}")
    xa = np.asarray(x, dtype=np.float64)
    ya = np.asarray(y, dtype=np.float64)
    m, n = xa.size, ya.size
    if m == 0 or n == 0:
        raise ValueError("mann_whitney_u needs non-empty samples")
    combined = np.concatenate([xa, ya])
    ranks = rank_with_ties(combined)
    r1 = float(ranks[:m].sum())
    u1 = r1 - m * (m + 1) / 2.0
    u2 = m * n - u1

    total = m + n
    mu = m * n / 2.0
    # Tie correction: sum(t^3 - t) over tie groups of the pooled sample.
    _, counts = np.unique(combined, return_counts=True)
    tie_term = float((counts.astype(np.float64) ** 3 - counts).sum())
    variance = (m * n / 12.0) * (
        (total + 1) - tie_term / (total * (total - 1))
    ) if total > 1 else 0.0
    if variance <= 0:
        return MannWhitneyResult(u1=u1, u2=u2, p_value=1.0,
                                 alternative=alternative)
    sigma = math.sqrt(variance)
    if alternative == "greater":
        p = _normal_sf((u1 - mu - 0.5) / sigma)
    elif alternative == "less":
        p = 1.0 - _normal_sf((u1 - mu + 0.5) / sigma)
    else:
        p = 2.0 * _normal_sf((abs(u1 - mu) - 0.5) / sigma)
    return MannWhitneyResult(u1=u1, u2=u2,
                             p_value=min(max(p, 0.0), 1.0),
                             alternative=alternative)


def vargha_delaney_a12(x: Sequence[float],
                       y: Sequence[float]) -> float:
    """Vargha–Delaney Â₁₂ effect size: P(X > Y) + 0.5·P(X = Y).

    0.5 means no effect; >0.71 is conventionally a large effect.
    Computed from the exact pairwise definition (fleet sample sizes
    make the O(m·n) cost irrelevant).
    """
    xa = np.asarray(x, dtype=np.float64)
    ya = np.asarray(y, dtype=np.float64)
    if xa.size == 0 or ya.size == 0:
        raise ValueError("vargha_delaney_a12 needs non-empty samples")
    diff = xa[:, None] - ya[None, :]
    greater = np.count_nonzero(diff > 0)
    ties = np.count_nonzero(diff == 0)
    return float((greater + 0.5 * ties) / (xa.size * ya.size))


def _percentile_interval(stats: np.ndarray,
                         confidence: float) -> Tuple[float, float]:
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(stats, [alpha, 1.0 - alpha])
    return float(lo), float(hi)


def bootstrap_ci(values: Sequence[float],
                 stat: Callable[[np.ndarray], float] = np.median,
                 n_resamples: int = 2000,
                 confidence: float = 0.95,
                 seed: int = 0) -> Tuple[float, float]:
    """Seeded percentile-bootstrap CI of ``stat`` over ``values``.

    The resampling stream comes from a seeded PCG64 generator, so the
    interval is a pure function of (values, stat, n_resamples,
    confidence, seed) — reports regenerate bit-identically. With a
    single observation the interval collapses to a point.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("bootstrap_ci needs a non-empty sample")
    if n_resamples < 1:
        raise ValueError(
            f"n_resamples must be >= 1, got {n_resamples} (an empty "
            f"resample set has no percentiles)")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), "
                         f"got {confidence}")
    if arr.size == 1:
        point = float(stat(arr))
        return point, point
    rng = np.random.default_rng(np.random.PCG64(seed))
    picks = rng.integers(0, arr.size, size=(n_resamples, arr.size))
    stats = np.apply_along_axis(stat, 1, arr[picks])
    return _percentile_interval(stats, confidence)


def bootstrap_diff_ci(x: Sequence[float], y: Sequence[float],
                      stat: Callable[[np.ndarray], float] = np.median,
                      n_resamples: int = 2000,
                      confidence: float = 0.95,
                      seed: int = 0) -> Tuple[float, float]:
    """Seeded bootstrap CI of ``stat(x*) - stat(y*)`` (independent
    resamples per side). An interval excluding 0 corroborates a
    significant Mann–Whitney verdict."""
    xa = np.asarray(x, dtype=np.float64)
    ya = np.asarray(y, dtype=np.float64)
    if xa.size == 0 or ya.size == 0:
        raise ValueError("bootstrap_diff_ci needs non-empty samples")
    if n_resamples < 1:
        raise ValueError(
            f"n_resamples must be >= 1, got {n_resamples} (an empty "
            f"resample set has no percentiles)")
    if xa.size == 1 and ya.size == 1:
        point = float(stat(xa)) - float(stat(ya))
        return point, point
    rng = np.random.default_rng(np.random.PCG64(seed))
    xp = rng.integers(0, xa.size, size=(n_resamples, xa.size))
    yp = rng.integers(0, ya.size, size=(n_resamples, ya.size))
    stats = (np.apply_along_axis(stat, 1, xa[xp]) -
             np.apply_along_axis(stat, 1, ya[yp]))
    return _percentile_interval(stats, confidence)
