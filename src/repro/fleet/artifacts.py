"""Fleet artifact I/O: atomic writes, checksum trailers, quarantine.

Every artifact a fleet worker persists — checkpoints, corpus
snapshots, results, heartbeats — flows through this module, which
gives the measurer and the resuming dispatcher two guarantees:

* **atomicity** — payloads are written to a temp file, fsynced, and
  renamed into place, so a reader never observes a torn file, even
  when the writer was killed mid-write (the rename either happened or
  it did not);
* **integrity** — pickled payloads carry a *sealed trailer* (SHA-256
  digest + body length + magic), so a reader can distinguish a good
  artifact from a corrupt or truncated one *before* unpickling it.
  Detection routes to :func:`quarantine` — the bad file is renamed
  aside (evidence for post-mortems, never re-read) and the caller
  falls back to its last good state instead of crashing.

The trailer rides at the *end* of the file because truncation is the
common corruption mode for killed writers: a truncated artifact loses
its trailer and is rejected by the cheap length/magic check without
hashing anything.

Heartbeats are small and latency-sensitive (the stall watchdog polls
them), so they use a one-line text format with an inline digest rather
than the pickle trailer; a torn or invalid heartbeat reads as "no beat
yet" (-1), which at worst makes the watchdog patient, never wrong.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
from typing import List, Tuple

from ..core.errors import ArtifactIntegrityError

__all__ = [
    "seal", "unseal", "atomic_write_bytes", "write_artifact",
    "read_artifact", "quarantine", "write_heartbeat", "read_heartbeat",
    "log_integrity", "read_integrity_log",
    "HEARTBEAT_FILE", "INTEGRITY_LOG", "QUARANTINE_SUFFIX",
    "MAGIC", "TRAILER_SIZE",
]

#: Trailer magic: identifies a sealed fleet artifact (version 1).
MAGIC = b"RFA1"
#: Trailer layout: 32-byte SHA-256 digest, 8-byte LE body length, magic.
_TRAILER = struct.Struct(f"<32sQ{len(MAGIC)}s")
#: Bytes the trailer adds to every sealed artifact (public: the chaos
#: harness aims its truncation faults at the trailer region).
TRAILER_SIZE = _TRAILER.size

HEARTBEAT_FILE = "heartbeat"
INTEGRITY_LOG = "integrity.log"
#: Suffix appended to quarantined (corrupt) artifacts.
QUARANTINE_SUFFIX = ".quarantined"


def seal(body: bytes) -> bytes:
    """Append the integrity trailer to ``body``."""
    digest = hashlib.sha256(body).digest()
    return body + _TRAILER.pack(digest, len(body), MAGIC)


def unseal(data: bytes) -> bytes:
    """Validate the trailer and return the body.

    Raises :class:`ArtifactIntegrityError` naming the failure mode —
    ``missing trailer`` (legacy/foreign file), ``truncated`` (length
    mismatch), or ``digest mismatch`` (bit corruption).
    """
    if len(data) < _TRAILER.size:
        raise ArtifactIntegrityError(
            f"artifact too short for an integrity trailer "
            f"({len(data)} bytes)")
    body, trailer = data[:-_TRAILER.size], data[-_TRAILER.size:]
    digest, length, magic = _TRAILER.unpack(trailer)
    if magic != MAGIC:
        raise ArtifactIntegrityError(
            "artifact has no integrity trailer (missing magic)")
    if length != len(body):
        raise ArtifactIntegrityError(
            f"artifact truncated: trailer claims {length} body bytes, "
            f"found {len(body)}")
    if hashlib.sha256(body).digest() != digest:
        raise ArtifactIntegrityError(
            "artifact digest mismatch (corrupt body)")
    return body


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` via temp file + fsync + rename."""
    tmp = path + ".tmp"
    # This IS the atomic-write helper: the non-atomic open targets the
    # temp file, and the rename below is the commit point.
    # statlint: disable=ERR002 (atomic-write implementation site)
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    # Make the rename itself durable where the platform allows it.
    try:
        dir_fd = os.open(os.path.dirname(path) or ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass  # directory fsync is best-effort (not supported everywhere)
    finally:
        os.close(dir_fd)


def write_artifact(path: str, payload: object) -> None:
    """Pickle ``payload`` and persist it sealed + atomically."""
    atomic_write_bytes(path, seal(pickle.dumps(payload)))


def read_artifact(path: str) -> object:
    """Load a sealed artifact; integrity failures raise
    :class:`ArtifactIntegrityError` (``FileNotFoundError`` passes
    through untouched — absence and corruption are different signals).
    """
    with open(path, "rb") as fh:
        data = fh.read()
    body = unseal(data)
    try:
        return pickle.loads(body)
    except Exception as exc:
        # A sealed-but-unpicklable body means the *writer* was broken,
        # not the disk; still an integrity failure from the reader's
        # point of view.
        raise ArtifactIntegrityError(
            f"artifact {os.path.basename(path)} unpicklable despite "
            f"valid seal: {exc!r}") from exc


def quarantine(path: str) -> str:
    """Move a corrupt artifact aside; returns the quarantine path.

    The original name becomes free for the next good write; the
    quarantined copy is never re-read by the fleet (post-mortem
    evidence only). Quarantining an already-missing file is a no-op.
    """
    target = path + QUARANTINE_SUFFIX
    try:
        os.replace(path, target)
    except FileNotFoundError:
        pass  # lost a race with another cleanup; nothing to preserve
    return target


# -- heartbeats --------------------------------------------------------


def _heartbeat_digest(segment: int) -> str:
    return hashlib.sha256(str(segment).encode("ascii")).hexdigest()[:12]


def write_heartbeat(workdir: str, segment: int) -> None:
    """Persist the monotone segment counter, atomically + checksummed."""
    line = f"{segment} {_heartbeat_digest(segment)}\n"
    atomic_write_bytes(os.path.join(workdir, HEARTBEAT_FILE),
                       line.encode("ascii"))


def read_heartbeat(workdir: str) -> int:
    """Last persisted segment counter (-1 before the first beat).

    A missing, torn, or checksum-invalid heartbeat reads as -1: the
    stall watchdog then simply waits for the next good beat, which is
    always safe (a stalled worker writes no further beats anyway).
    """
    path = os.path.join(workdir, HEARTBEAT_FILE)
    try:
        with open(path, "r", encoding="ascii") as fh:
            text = fh.read()
    except (FileNotFoundError, UnicodeDecodeError):
        return -1
    parts = text.split()
    if len(parts) != 2:
        return -1
    segment_text, digest = parts
    try:
        segment = int(segment_text)
    except ValueError:
        return -1
    if digest != _heartbeat_digest(segment):
        return -1
    return segment


# -- integrity log -----------------------------------------------------


def log_integrity(workdir: str, artifact: str, reason: str) -> None:
    """Append one integrity incident to the trial's durable log.

    Append-only text (one tab-separated line per incident): a crash
    mid-append loses at most the line being written, and the dispatcher
    reads the log only at trial completion, so torn tails are skipped
    rather than misread.
    """
    line = f"{artifact}\t{reason}".replace("\n", " ") + "\n"
    with open(os.path.join(workdir, INTEGRITY_LOG), "a",
              encoding="utf-8") as fh:
        fh.write(line)


def read_integrity_log(workdir: str) -> List[Tuple[str, str]]:
    """All (artifact, reason) incidents recorded for a trial."""
    path = os.path.join(workdir, INTEGRITY_LOG)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    except FileNotFoundError:
        return []
    incidents: List[Tuple[str, str]] = []
    for line in lines:
        artifact, sep, reason = line.partition("\t")
        if sep:
            incidents.append((artifact, reason))
    return incidents
