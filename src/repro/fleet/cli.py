"""``repro-fuzz fleet`` — the campaign-fleet orchestration CLI.

Runs a multi-trial fleet experiment end-to-end: expand the grid,
dispatch trials to worker processes (or the deterministic in-process
backend), retry faulted workers from checkpoints, measure coverage
out-of-band, and print the statistical comparison report::

    repro-fuzz fleet --fuzzers afl,bigmap --benchmarks zlib,libpng \\
        --trials 5 --workers 4 --budget 5 --scale 0.05
    repro-fuzz fleet --backend inline --trials 3 --store fleet.sqlite

``--inject-kill`` / ``--inject-stall`` plant a deterministic worker
fault into one trial (fault-tolerance smoke: the CI job kills a worker
mid-trial and the report must still carry every trial's row).

Crash safety (DESIGN.md §10): ``--resume STORE`` picks up a fleet whose
dispatcher died — the spec and work directory are read back from the
store's ``fleet_meta``, store state is reconciled against on-disk
worker artifacts, and only unfinished work re-runs; the final report is
bit-identical to an uninterrupted run. ``--chaos-kill-after N`` hard-
kills this dispatcher (``os._exit``) after N dispatch-loop iterations —
the CI chaos smoke runs a fleet with it, resumes, and diffs the
reports. Both require a persistent ``--store`` and ``--workdir``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from ..core.errors import FleetSpecError
from ..target import get_benchmark
from .dispatcher import FleetDispatcher
from .report import render_report
from .spec import KILL, STALL, FleetSpec, TrialFault
from .store import ResultsStore
from .workers import KILL_EXIT_CODE, InlineBackend, ProcessBackend


class _HardKillAfter:
    """``--chaos-kill-after``: die like a crashed dispatcher.

    ``os._exit`` (no cleanup, no handlers) after N dispatch-loop
    ticks — the store and worker artifacts are left exactly as a real
    dispatcher death would leave them, which is what ``--resume`` must
    recover from.
    """

    def __init__(self, ticks: int) -> None:
        self.remaining = ticks

    def on_tick(self, dispatcher) -> None:
        self.remaining -= 1
        if self.remaining < 0:
            os._exit(KILL_EXIT_CODE)


def _parse_size(text: str) -> int:
    from ..cli import parse_size
    return parse_size(text)


def _csv(text: str) -> List[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def _parse_fault(text: str, kind: str) -> "tuple":
    """``TRIAL`` or ``TRIAL:SEGMENT`` → (trial_id, TrialFault)."""
    trial_text, _, segment_text = text.partition(":")
    try:
        trial_id = int(trial_text)
        segment = int(segment_text) if segment_text else 1
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected TRIAL[:SEGMENT], got {text!r}") from None
    return trial_id, TrialFault(kind=kind, at_segment=segment)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fuzz fleet",
        description="Run a multi-trial fleet comparison with "
                    "Mann-Whitney/bootstrap statistics.")
    parser.add_argument("--fuzzers", type=_csv, default=["afl", "bigmap"],
                        help="comma-separated fuzzers (default "
                             "afl,bigmap)")
    parser.add_argument("--benchmarks", type=_csv, default=["zlib"],
                        help="comma-separated benchmark names")
    parser.add_argument("--map-sizes", type=_csv, default=["64k"],
                        help="comma-separated map sizes (64k, 2M, ...)")
    parser.add_argument("--trials", type=int, default=5,
                        help="trial replicas per cell (default 5)")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes (default 2)")
    parser.add_argument("--backend", choices=["process", "inline"],
                        default="process",
                        help="process: real OS workers; inline: "
                             "deterministic in-process (default "
                             "process)")
    parser.add_argument("--budget", type=float, default=5.0,
                        help="virtual seconds per trial (default 5)")
    parser.add_argument("--max-execs", type=int, default=20_000,
                        help="real-execution cap per trial")
    parser.add_argument("--scale", type=float, default=0.1,
                        help="benchmark scale (default 0.1)")
    parser.add_argument("--seed-scale", type=float, default=None,
                        help="seed-corpus scale (default: --scale)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base RNG seed (replica k adds k*1000)")
    parser.add_argument("--snapshot-interval", type=float, default=None,
                        help="virtual seconds between checkpoints "
                             "(default: budget/4)")
    parser.add_argument("--stall-timeout", type=float, default=10.0,
                        help="wall seconds without worker heartbeat "
                             "before a stall retry (process backend)")
    parser.add_argument("--store", default=":memory:", metavar="PATH",
                        help="SQLite results store path (default "
                             "in-memory)")
    parser.add_argument("--workdir", default=None, metavar="DIR",
                        help="trial artifact directory (default: "
                             "temporary)")
    parser.add_argument("--telemetry-dir", default=None, metavar="DIR",
                        help="flush fleet telemetry events under DIR")
    parser.add_argument("--no-measure", action="store_true",
                        help="skip out-of-band coverage measurement")
    parser.add_argument("--inject-kill", default=None,
                        metavar="TRIAL[:SEG]",
                        help="kill TRIAL's worker after checkpoint SEG "
                             "(default 1) on its first attempt")
    parser.add_argument("--inject-stall", default=None,
                        metavar="TRIAL[:SEG]",
                        help="stall TRIAL's worker after checkpoint "
                             "SEG on its first attempt")
    parser.add_argument("--resume", default=None, metavar="STORE",
                        help="resume the fleet persisted in STORE "
                             "(grid flags are ignored; the spec comes "
                             "from the store)")
    parser.add_argument("--chaos-kill-after", type=int, default=None,
                        metavar="N",
                        help="hard-kill this dispatcher (os._exit) "
                             "after N dispatch-loop iterations (chaos "
                             "testing; pair with --resume)")
    parser.add_argument("--serve", action="store_true",
                        help="serve the live dashboard while the "
                             "fleet runs (trial progress via a "
                             "read-only view of --store; event "
                             "streams via --telemetry-dir)")
    parser.add_argument("--serve-port", type=int, default=8722,
                        help="--serve listen port; 0 picks a free "
                             "one (default 8722)")
    return parser


def _maybe_serve(args, store_path: str):
    """Start the background dashboard server for ``--serve``.

    The server tails ``--telemetry-dir`` (when given) for event
    streams and exposes the results store read-only under
    ``/api/fleet/fleet/`` — the dispatcher keeps the only writable
    connection.
    """
    if not args.serve:
        return None
    root = args.telemetry_dir or args.workdir or "."
    stores = {} if store_path == ":memory:" else {"fleet": store_path}
    from ..telemetry.serve.background import BackgroundServer
    server = BackgroundServer(root, stores=stores,
                              port=args.serve_port).start()
    print(f"live dashboard: {server.url}")
    return server


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.resume is not None:
        return _main_resume(parser, args)

    for name in args.benchmarks:
        try:
            get_benchmark(name)
        except KeyError as exc:
            parser.error(str(exc))

    faults = {}
    if args.inject_kill is not None:
        trial_id, fault = _parse_fault(args.inject_kill, KILL)
        faults[trial_id] = fault
    if args.inject_stall is not None:
        trial_id, fault = _parse_fault(args.inject_stall, STALL)
        faults[trial_id] = fault

    try:
        spec = FleetSpec(
            fuzzers=tuple(args.fuzzers),
            benchmarks=tuple(args.benchmarks),
            map_sizes=tuple(_parse_size(s) for s in args.map_sizes),
            n_trials=args.trials, base_seed=args.seed,
            scale=args.scale, seed_scale=args.seed_scale,
            virtual_seconds=args.budget,
            max_real_execs=args.max_execs,
            snapshot_interval=args.snapshot_interval, faults=faults)
    except FleetSpecError as exc:
        parser.error(str(exc))

    if args.backend == "inline":
        backend = InlineBackend()
    else:
        backend = ProcessBackend(n_workers=args.workers,
                                 stall_timeout=args.stall_timeout)

    telemetry = None
    if args.telemetry_dir is not None:
        from ..telemetry.recorder import SessionTelemetry
        telemetry = SessionTelemetry()

    chaos = None
    if args.chaos_kill_after is not None:
        if args.store == ":memory:" or args.workdir is None:
            parser.error("--chaos-kill-after needs a persistent "
                         "--store and --workdir to resume from")
        chaos = _HardKillAfter(args.chaos_kill_after)

    server = _maybe_serve(args, args.store)
    try:
        with ResultsStore(args.store) as store:
            dispatcher = FleetDispatcher(
                spec, store=store, backend=backend,
                telemetry=telemetry, workdir=args.workdir,
                measure=not args.no_measure, chaos=chaos)
            summary = dispatcher.run()
            _report(args, telemetry, store, summary, spec)
    finally:
        if server is not None:
            server.stop()
    return 1 if summary.lost else 0


def _main_resume(parser: argparse.ArgumentParser,
                 args: argparse.Namespace) -> int:
    """``--resume STORE``: reconcile and finish a dead dispatcher's
    fleet. The spec (and thus the backendable work) comes from the
    store; only backend/measure/telemetry flags apply."""
    if not os.path.exists(args.resume):
        parser.error(f"--resume: store {args.resume!r} does not exist")

    if args.backend == "inline":
        backend = InlineBackend()
    else:
        backend = ProcessBackend(n_workers=args.workers,
                                 stall_timeout=args.stall_timeout)
    telemetry = None
    if args.telemetry_dir is not None:
        from ..telemetry.recorder import SessionTelemetry
        telemetry = SessionTelemetry()

    chaos = None
    if args.chaos_kill_after is not None:
        chaos = _HardKillAfter(args.chaos_kill_after)

    server = _maybe_serve(args, args.resume)
    try:
        with ResultsStore(args.resume) as store:
            dispatcher = FleetDispatcher.from_store(
                store, backend=backend, telemetry=telemetry,
                measure=not args.no_measure, chaos=chaos)
            summary = dispatcher.run()
            _report(args, telemetry, store, summary, dispatcher.spec)
    finally:
        if server is not None:
            server.stop()
    return 1 if summary.lost else 0


def _report(args, telemetry, store, summary, spec) -> None:
    if telemetry is not None:
        telemetry.flush(args.telemetry_dir)
        print(f"telemetry artifacts: {args.telemetry_dir}")

    resumed = ""
    if summary.resumed:
        resumed = (f" (resumed: {summary.reconciled} reconciled, "
                   f"{summary.requeued} requeued, "
                   f"{summary.remeasured} remeasured)")
    print(f"fleet: {summary.completed}/{summary.n_trials} trials "
          f"completed, {summary.retries} retries, "
          f"{len(summary.lost)} lost, "
          f"{summary.measured_snapshots} snapshots measured{resumed}")
    print()
    print(render_report(store, spec))


if __name__ == "__main__":
    sys.exit(main())
