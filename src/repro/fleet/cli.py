"""``repro-fuzz fleet`` — the campaign-fleet orchestration CLI.

Runs a multi-trial fleet experiment end-to-end: expand the grid,
dispatch trials to worker processes (or the deterministic in-process
backend), retry faulted workers from checkpoints, measure coverage
out-of-band, and print the statistical comparison report::

    repro-fuzz fleet --fuzzers afl,bigmap --benchmarks zlib,libpng \\
        --trials 5 --workers 4 --budget 5 --scale 0.05
    repro-fuzz fleet --backend inline --trials 3 --store fleet.sqlite

``--inject-kill`` / ``--inject-stall`` plant a deterministic worker
fault into one trial (fault-tolerance smoke: the CI job kills a worker
mid-trial and the report must still carry every trial's row).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..core.errors import FleetSpecError
from ..target import get_benchmark
from .dispatcher import FleetDispatcher
from .report import render_report
from .spec import KILL, STALL, FleetSpec, TrialFault
from .store import ResultsStore
from .workers import InlineBackend, ProcessBackend


def _parse_size(text: str) -> int:
    from ..cli import parse_size
    return parse_size(text)


def _csv(text: str) -> List[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def _parse_fault(text: str, kind: str) -> "tuple":
    """``TRIAL`` or ``TRIAL:SEGMENT`` → (trial_id, TrialFault)."""
    trial_text, _, segment_text = text.partition(":")
    try:
        trial_id = int(trial_text)
        segment = int(segment_text) if segment_text else 1
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected TRIAL[:SEGMENT], got {text!r}") from None
    return trial_id, TrialFault(kind=kind, at_segment=segment)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fuzz fleet",
        description="Run a multi-trial fleet comparison with "
                    "Mann-Whitney/bootstrap statistics.")
    parser.add_argument("--fuzzers", type=_csv, default=["afl", "bigmap"],
                        help="comma-separated fuzzers (default "
                             "afl,bigmap)")
    parser.add_argument("--benchmarks", type=_csv, default=["zlib"],
                        help="comma-separated benchmark names")
    parser.add_argument("--map-sizes", type=_csv, default=["64k"],
                        help="comma-separated map sizes (64k, 2M, ...)")
    parser.add_argument("--trials", type=int, default=5,
                        help="trial replicas per cell (default 5)")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes (default 2)")
    parser.add_argument("--backend", choices=["process", "inline"],
                        default="process",
                        help="process: real OS workers; inline: "
                             "deterministic in-process (default "
                             "process)")
    parser.add_argument("--budget", type=float, default=5.0,
                        help="virtual seconds per trial (default 5)")
    parser.add_argument("--max-execs", type=int, default=20_000,
                        help="real-execution cap per trial")
    parser.add_argument("--scale", type=float, default=0.1,
                        help="benchmark scale (default 0.1)")
    parser.add_argument("--seed-scale", type=float, default=None,
                        help="seed-corpus scale (default: --scale)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base RNG seed (replica k adds k*1000)")
    parser.add_argument("--snapshot-interval", type=float, default=None,
                        help="virtual seconds between checkpoints "
                             "(default: budget/4)")
    parser.add_argument("--stall-timeout", type=float, default=10.0,
                        help="wall seconds without worker heartbeat "
                             "before a stall retry (process backend)")
    parser.add_argument("--store", default=":memory:", metavar="PATH",
                        help="SQLite results store path (default "
                             "in-memory)")
    parser.add_argument("--workdir", default=None, metavar="DIR",
                        help="trial artifact directory (default: "
                             "temporary)")
    parser.add_argument("--telemetry-dir", default=None, metavar="DIR",
                        help="flush fleet telemetry events under DIR")
    parser.add_argument("--no-measure", action="store_true",
                        help="skip out-of-band coverage measurement")
    parser.add_argument("--inject-kill", default=None,
                        metavar="TRIAL[:SEG]",
                        help="kill TRIAL's worker after checkpoint SEG "
                             "(default 1) on its first attempt")
    parser.add_argument("--inject-stall", default=None,
                        metavar="TRIAL[:SEG]",
                        help="stall TRIAL's worker after checkpoint "
                             "SEG on its first attempt")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    for name in args.benchmarks:
        try:
            get_benchmark(name)
        except KeyError as exc:
            parser.error(str(exc))

    faults = {}
    if args.inject_kill is not None:
        trial_id, fault = _parse_fault(args.inject_kill, KILL)
        faults[trial_id] = fault
    if args.inject_stall is not None:
        trial_id, fault = _parse_fault(args.inject_stall, STALL)
        faults[trial_id] = fault

    try:
        spec = FleetSpec(
            fuzzers=tuple(args.fuzzers),
            benchmarks=tuple(args.benchmarks),
            map_sizes=tuple(_parse_size(s) for s in args.map_sizes),
            n_trials=args.trials, base_seed=args.seed,
            scale=args.scale, seed_scale=args.seed_scale,
            virtual_seconds=args.budget,
            max_real_execs=args.max_execs,
            snapshot_interval=args.snapshot_interval, faults=faults)
    except FleetSpecError as exc:
        parser.error(str(exc))

    if args.backend == "inline":
        backend = InlineBackend()
    else:
        backend = ProcessBackend(n_workers=args.workers,
                                 stall_timeout=args.stall_timeout)

    telemetry = None
    if args.telemetry_dir is not None:
        from ..telemetry.recorder import SessionTelemetry
        telemetry = SessionTelemetry()

    store = ResultsStore(args.store)
    dispatcher = FleetDispatcher(
        spec, store=store, backend=backend, telemetry=telemetry,
        workdir=args.workdir, measure=not args.no_measure)
    summary = dispatcher.run()

    if telemetry is not None:
        telemetry.flush(args.telemetry_dir)
        print(f"telemetry artifacts: {args.telemetry_dir}")

    print(f"fleet: {summary.completed}/{summary.n_trials} trials "
          f"completed, {summary.retries} retries, "
          f"{len(summary.lost)} lost, "
          f"{summary.measured_snapshots} snapshots measured")
    print()
    print(render_report(store, spec))
    store.close()
    return 1 if summary.lost else 0


if __name__ == "__main__":
    sys.exit(main())
