"""Fleet chaos harness: inject crashes everywhere, demand identity.

The crash-safety contract (DESIGN.md §10) is a determinism claim: a
fleet that loses its dispatcher, its workers, its artifacts, or its
store writes — and recovers through resume, checkpoint retry,
quarantine, and IO-retry respectively — must land **bit-identical**
trial rows and statistics to an undisturbed run. This module is the
machine that checks it:

* :class:`ChaosController` executes a seeded
  :class:`repro.faults.fleetplan.FleetFaultPlan` against a live
  :class:`~repro.fleet.dispatcher.FleetDispatcher`, one plan tick per
  dispatch-loop iteration. The tick counter is *cumulative across
  dispatcher incarnations*, so a plan's later events keep firing into
  the resumed dispatcher.
* :func:`run_fleet_with_chaos` drives the full kill/resume cycle:
  run the fleet, catch each injected :class:`DispatcherKilled`, resume
  from the store (:meth:`FleetDispatcher.from_store`) and keep going
  until the fleet drains.

``worker-kill`` / ``worker-stall`` events are *lowered* onto the
spec's per-trial :class:`~repro.fleet.spec.TrialFault` machinery
before the run, so the existing supervisor retry path handles them;
the controller itself handles the three fault families that machinery
cannot express: dispatcher death, on-disk artifact damage, and
transient store IO errors.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from ..core.errors import FleetDispatchError
from ..faults.fleetplan import (ARTIFACT_CORRUPT, ARTIFACT_TRUNCATE,
                                DISPATCHER_KILL, STORE_LOCK,
                                WORKER_KILL, WORKER_STALL,
                                FleetFaultEvent, FleetFaultPlan)
from ..telemetry.recorder import SessionTelemetry
from .dispatcher import FleetDispatcher, FleetSummary
from .spec import KILL, STALL, FleetSpec, TrialFault
from .store import ResultsStore
from .artifacts import TRAILER_SIZE
from .workers import CHECKPOINT_FILE


class DispatcherKilled(RuntimeError):
    """An injected ``dispatcher-kill`` fired: the dispatcher "died".

    Deliberately *not* part of the :class:`~repro.core.errors.ReproError`
    taxonomy — nothing may handle it as an ordinary failure; it either
    reaches :func:`run_fleet_with_chaos`'s resume loop or aborts the
    process, exactly like the real crash it simulates.
    """

    def __init__(self, tick: int) -> None:
        super().__init__(f"injected dispatcher kill at tick {tick}")
        self.tick = tick


class ChaosController:
    """Fires a :class:`FleetFaultPlan`'s events against a dispatcher.

    One controller serves every dispatcher incarnation of one fleet:
    its tick counter and fired-event set persist across the kills it
    causes. ``corruption_seed`` feeds the byte-damage RNG, keeping the
    injected corruption itself reproducible.
    """

    def __init__(self, plan: FleetFaultPlan, *,
                 corruption_seed: int = 0) -> None:
        self.plan = plan
        self.tick = 0
        self.fired: list = []
        self._pending = [
            event for event in plan
            if event.kind not in (WORKER_KILL, WORKER_STALL)]
        self._rng = np.random.default_rng(corruption_seed)

    def lower_onto(self, spec: FleetSpec) -> FleetSpec:
        """Merge the plan's worker faults into the spec's per-trial
        fault table (later plan events override earlier spec ones)."""
        worker_faults = self.plan.worker_faults()
        if not worker_faults:
            return spec
        faults = dict(spec.faults)
        for event in worker_faults:
            faults[event.trial] = TrialFault(
                kind=KILL if event.kind == WORKER_KILL else STALL,
                at_segment=event.at_segment)
        return replace(spec, faults=faults)

    # -- fault execution ----------------------------------------------

    def _damage_artifact(self, dispatcher: FleetDispatcher,
                         event: FleetFaultEvent) -> None:
        """Corrupt or truncate the targeted trial's checkpoint on disk
        (a no-op when no checkpoint exists yet — nothing to damage)."""
        path = os.path.join(dispatcher.trial_workdir(event.trial),
                            CHECKPOINT_FILE)
        try:
            size = os.path.getsize(path)
        except OSError:
            return
        if event.kind == ARTIFACT_TRUNCATE:
            # Tear off half the trailer: the seal's length check must
            # catch this without even hashing the body.
            with open(path, "r+b") as fh:
                fh.truncate(max(size - TRAILER_SIZE // 2, 0))
            return
        # Flip one body byte in place (a torn/bit-rotted write the
        # digest check must catch).
        offset = int(self._rng.integers(0, max(size - TRAILER_SIZE, 1)))
        with open(path, "r+b") as fh:
            fh.seek(offset)
            byte = fh.read(1) or b"\0"
            fh.seek(offset)
            fh.write(bytes([byte[0] ^ 0xFF]))

    def on_tick(self, dispatcher: FleetDispatcher) -> None:
        """Advance the fleet tick; fire everything scheduled on it.

        Called by the dispatcher at the top of each run-loop iteration.
        A ``dispatcher-kill`` raises :class:`DispatcherKilled` — after
        the tick's other events have fired, so same-tick damage is not
        lost in the crash.
        """
        self.tick += 1
        due = [e for e in self._pending if e.at_tick == self.tick]
        if not due:
            return
        self._pending = [e for e in self._pending if e.at_tick != self.tick]
        self.fired.extend(due)
        kill: Optional[FleetFaultEvent] = None
        for event in due:
            if event.kind == DISPATCHER_KILL:
                kill = event
            elif event.kind == STORE_LOCK:
                dispatcher.store.inject_io_faults(event.lock_count)
            elif event.kind in (ARTIFACT_CORRUPT, ARTIFACT_TRUNCATE):
                self._damage_artifact(dispatcher, event)
        if kill is not None:
            raise DispatcherKilled(self.tick)


@dataclass
class ChaosOutcome:
    """What surviving a chaos plan looked like.

    Attributes:
        summary: the final (fully drained) fleet summary.
        dispatcher_restarts: injected dispatcher kills survived via
            ``--resume``-style reconciliation.
        ticks: total dispatch-loop ticks across all incarnations.
        events_fired: chaos events actually executed (worker faults
            are lowered onto the spec and not counted here).
    """

    summary: FleetSummary
    dispatcher_restarts: int
    ticks: int
    events_fired: int


def run_fleet_with_chaos(spec: FleetSpec, plan: FleetFaultPlan, *,
                         store: Optional[ResultsStore] = None,
                         workdir: Optional[str] = None,
                         telemetry: Optional[SessionTelemetry] = None,
                         measure: bool = True,
                         max_dispatcher_restarts: int = 10
                         ) -> ChaosOutcome:
    """Run ``spec`` under ``plan``, resuming through every injected
    dispatcher kill; returns once the fleet fully drains.

    The store must be a real one if the caller wants to inspect it
    afterwards (an implicit in-memory store is created otherwise —
    note this *also* exercises resume: the in-memory store object
    survives the simulated dispatcher death just as a store file
    survives a real one). ``workdir`` defaults to a temporary
    directory removed on return.
    """
    plan.validate_for(spec.n_expanded)
    controller = ChaosController(plan)
    spec = controller.lower_onto(spec)
    if store is None:
        store = ResultsStore()
    own_workdir = workdir is None
    if own_workdir:
        workdir = tempfile.mkdtemp(prefix="fleet-chaos-")
    try:
        dispatcher = FleetDispatcher(
            spec, store=store, workdir=workdir, telemetry=telemetry,
            measure=measure, chaos=controller)
        restarts = 0
        while True:
            try:
                summary = dispatcher.run()
                break
            except DispatcherKilled:
                restarts += 1
                if restarts > max_dispatcher_restarts:
                    raise FleetDispatchError(
                        f"chaos plan killed the dispatcher more than "
                        f"{max_dispatcher_restarts} times; giving up")
                dispatcher = FleetDispatcher.from_store(
                    store, workdir=workdir, telemetry=telemetry,
                    measure=measure, chaos=controller)
    finally:
        if own_workdir:
            shutil.rmtree(workdir, ignore_errors=True)
    return ChaosOutcome(summary=summary, dispatcher_restarts=restarts,
                        ticks=controller.tick,
                        events_fired=len(controller.fired))
