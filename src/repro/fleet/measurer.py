"""Out-of-band coverage measurement of trial corpus snapshots.

Fuzzbench separates *running* fuzzers from *measuring* them: trial
runners archive their corpora, and a measurer process replays each
archive against an independent coverage build. The same split here
keeps the comparison fair (the paper's §V-A3 argument: a fuzzer's own
map under-counts at high collision rates, and differently per map
size) and keeps measurement cost out of the trial's virtual clock.

:class:`SnapshotMeasurer` walks the ``snap-NNN.pkl`` files a worker
left in its trial directory, re-executes each corpus through the
collision-free evaluator (:func:`repro.analysis.coverage_eval.
evaluate_corpus` — true program edges, no hashing, no map), and lands
one measurement row per snapshot in the results store. The wall-clock
delay between a worker producing a snapshot and the measurer consuming
it is reported as *measurement lag* telemetry — the fleet's analogue of
fuzzbench's measurer falling behind its runners.
"""

from __future__ import annotations

import os
import pickle
import re
from typing import Dict, List, Optional, Tuple

from ..analysis.coverage_eval import evaluate_corpus
from ..core.walltime import wall_now
from ..target import Executor, get_benchmark
from .spec import TrialSpec
from .store import ResultsStore

_SNAP_PATTERN = re.compile(r"snap-(\d+)\.pkl$")


class SnapshotMeasurer:
    """Measures corpus snapshots against independent coverage builds.

    One measurer serves a whole fleet: programs (and their executors)
    are cached per (benchmark, scale, seed_scale), so measuring N
    trials of one cell builds the benchmark once.
    """

    def __init__(self) -> None:
        self._programs: Dict[Tuple[str, float, Optional[float]],
                             Executor] = {}

    def _executor_for(self, trial: TrialSpec) -> Executor:
        key = (trial.benchmark, trial.config.scale,
               trial.config.seed_scale)
        executor = self._programs.get(key)
        if executor is None:
            built = get_benchmark(trial.benchmark).build(
                trial.config.scale, seed_scale=trial.config.seed_scale)
            executor = Executor(built.program)
            self._programs[key] = executor
        return executor

    def snapshot_files(self, workdir: str) -> List[Tuple[int, str]]:
        """(snapshot index, path) pairs present in ``workdir``, sorted."""
        found: List[Tuple[int, str]] = []
        try:
            names = os.listdir(workdir)
        except FileNotFoundError:
            return []
        for name in names:
            match = _SNAP_PATTERN.match(name)
            if match:
                found.append((int(match.group(1)),
                              os.path.join(workdir, name)))
        return sorted(found)

    def measure_trial(self, trial: TrialSpec, workdir: str,
                      store: ResultsStore,
                      telemetry=None, now: float = 0.0) -> int:
        """Measure every snapshot of one trial; returns the count.

        ``telemetry`` is an optional
        :class:`~repro.telemetry.TelemetryRecorder`-like object whose
        ``emit`` receives one ``measurement`` event per snapshot
        (logical time ``now``); measurement lag rides in the event and
        the store row.
        """
        executor = self._executor_for(trial)
        measured = 0
        for snapshot, path in self.snapshot_files(workdir):
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            lag = max(wall_now() - payload["produced_at"], 0.0)
            true_edges = evaluate_corpus(
                executor.program, payload["corpus"], executor=executor)
            store.record_measurement(
                trial.trial_id, snapshot,
                virtual_seconds=payload["virtual_seconds"],
                corpus_size=len(payload["corpus"]),
                true_edges=true_edges, lag_seconds=lag)
            if telemetry is not None:
                telemetry.emit(
                    "measurement", now, instance=trial.trial_id,
                    trial=trial.trial_id, snapshot=snapshot,
                    corpus_size=len(payload["corpus"]),
                    true_edges=true_edges, lag_seconds=lag)
            measured += 1
        return measured
