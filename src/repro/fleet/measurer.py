"""Out-of-band coverage measurement of trial corpus snapshots.

Fuzzbench separates *running* fuzzers from *measuring* them: trial
runners archive their corpora, and a measurer process replays each
archive against an independent coverage build. The same split here
keeps the comparison fair (the paper's §V-A3 argument: a fuzzer's own
map under-counts at high collision rates, and differently per map
size) and keeps measurement cost out of the trial's virtual clock.

:class:`SnapshotMeasurer` walks the ``snap-NNN.pkl`` files a worker
left in its trial directory, re-executes each corpus through the
collision-free evaluator (:func:`repro.analysis.coverage_eval.
evaluate_corpus` — true program edges, no hashing, no map), and lands
one measurement row per snapshot in the results store. The wall-clock
delay between a worker producing a snapshot and the measurer consuming
it is reported as *measurement lag* telemetry — the fleet's analogue of
fuzzbench's measurer falling behind its runners.

Robustness contract (DESIGN.md §10): a corrupt or truncated snapshot
must never crash the measurer or silently poison a measurement row.
Snapshots carry the :mod:`repro.fleet.artifacts` integrity seal; one
that fails validation is quarantined (renamed aside) and reported as an
``artifact_quarantine`` event, and measurement falls back to the
remaining good snapshots. A *negative* measurement lag — a snapshot
claiming to have been produced in the future, i.e. clock skew or a
corrupt-but-sealed timestamp — is clamped to zero **and flagged** as an
``integrity`` event rather than silently maxed away.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..analysis.coverage_eval import evaluate_corpus
from ..core.errors import ArtifactIntegrityError
from ..core.walltime import wall_now
from ..target import Executor, get_benchmark
from .artifacts import quarantine, read_artifact
from .spec import TrialSpec
from .store import ResultsStore

_SNAP_PATTERN = re.compile(r"snap-(\d+)\.pkl$")


@dataclass
class MeasureOutcome:
    """What measuring one trial's snapshots produced.

    Attributes:
        measured: measurement rows landed in the store.
        quarantined: corrupt snapshots renamed aside and skipped.
        clamped_lags: negative measurement lags clamped to zero (each
            also emitted as an ``integrity`` event).
    """

    measured: int = 0
    quarantined: int = 0
    clamped_lags: int = 0


class SnapshotMeasurer:
    """Measures corpus snapshots against independent coverage builds.

    One measurer serves a whole fleet: programs (and their executors)
    are cached per (benchmark, scale, seed_scale), so measuring N
    trials of one cell builds the benchmark once.
    """

    def __init__(self) -> None:
        self._programs: Dict[Tuple[str, float, Optional[float]],
                             Executor] = {}

    def _executor_for(self, trial: TrialSpec) -> Executor:
        key = (trial.benchmark, trial.config.scale,
               trial.config.seed_scale)
        executor = self._programs.get(key)
        if executor is None:
            built = get_benchmark(trial.benchmark).build(
                trial.config.scale, seed_scale=trial.config.seed_scale)
            executor = Executor(built.program)
            self._programs[key] = executor
        return executor

    def snapshot_files(self, workdir: str) -> List[Tuple[int, str]]:
        """(snapshot index, path) pairs present in ``workdir``, sorted."""
        found: List[Tuple[int, str]] = []
        try:
            names = os.listdir(workdir)
        except FileNotFoundError:
            return []
        for name in names:
            match = _SNAP_PATTERN.match(name)
            if match:
                found.append((int(match.group(1)),
                              os.path.join(workdir, name)))
        return sorted(found)

    def measure_trial(self, trial: TrialSpec, workdir: str,
                      store: ResultsStore,
                      telemetry=None,
                      now: float = 0.0) -> MeasureOutcome:
        """Measure every readable snapshot of one trial.

        ``telemetry`` is an optional
        :class:`~repro.telemetry.TelemetryRecorder`-like object whose
        ``emit`` receives one ``measurement`` event per snapshot
        (logical time ``now``), an ``artifact_quarantine`` event per
        corrupt snapshot, and an ``integrity`` event per clamped
        negative lag.
        """
        executor = self._executor_for(trial)
        outcome = MeasureOutcome()
        for snapshot, path in self.snapshot_files(workdir):
            artifact = os.path.basename(path)
            try:
                payload = read_artifact(path)
            except ArtifactIntegrityError as exc:
                quarantine(path)
                outcome.quarantined += 1
                if telemetry is not None:
                    telemetry.emit(
                        "artifact_quarantine", now,
                        instance=trial.trial_id, trial=trial.trial_id,
                        artifact=artifact, reason=str(exc))
                continue
            lag = wall_now() - payload["produced_at"]
            if lag < 0.0:
                outcome.clamped_lags += 1
                if telemetry is not None:
                    telemetry.emit(
                        "integrity", now, instance=trial.trial_id,
                        trial=trial.trial_id, artifact=artifact,
                        detail=f"negative measurement lag "
                               f"{lag:.6f}s clamped to 0 (clock skew "
                               f"or corrupt timestamp)")
                lag = 0.0
            true_edges = evaluate_corpus(
                executor.program, payload["corpus"], executor=executor)
            store.record_measurement(
                trial.trial_id, snapshot,
                virtual_seconds=payload["virtual_seconds"],
                corpus_size=len(payload["corpus"]),
                true_edges=true_edges, lag_seconds=lag)
            if telemetry is not None:
                telemetry.emit(
                    "measurement", now, instance=trial.trial_id,
                    trial=trial.trial_id, snapshot=snapshot,
                    corpus_size=len(payload["corpus"]),
                    true_edges=true_edges, lag_seconds=lag)
            outcome.measured += 1
        return outcome
