"""Fleet report rendering: multi-trial comparisons with significance.

Klees et al.'s complaint about fuzzing evaluations is that they report
point estimates; this renderer refuses to. For every (benchmark,
map-size) group and metric it reports, per fuzzer, the median over
trials with a seeded bootstrap CI — and for every fuzzer pair, the
Mann–Whitney p-value, the Vargha–Delaney Â₁₂ effect size, and a
bootstrap CI on the median difference. Output is deterministic: groups
and fuzzers render in sorted order, and every interval comes from the
seeded resampler in :mod:`repro.fleet.stats`.

The computation and the text rendering are split so every consumer of
fleet statistics reports the *same numbers*: :func:`metric_stats` /
:func:`group_stats` produce plain data, and the text report here, the
``/api/fleet/{store}/stats`` endpoint, and the static HTML comparison
report (:mod:`repro.telemetry.serve.reportgen`) all render from it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .spec import FleetSpec
from .stats import (bootstrap_ci, bootstrap_diff_ci, mann_whitney_u,
                    vargha_delaney_a12)
from .store import ResultsStore

#: Metrics every fleet report compares, in render order.
REPORT_METRICS: Tuple[str, ...] = ("edges", "throughput",
                                   "unique_crashes")

#: Two-sided Mann–Whitney significance threshold flagged in reports.
ALPHA = 0.05


def _size_label(map_size: int) -> str:
    if map_size >= 1 << 20 and map_size % (1 << 20) == 0:
        return f"{map_size >> 20}M"
    if map_size >= 1 << 10 and map_size % (1 << 10) == 0:
        return f"{map_size >> 10}k"
    return str(map_size)


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _fmt(value: float) -> str:
    return f"{value:,.1f}" if abs(value) < 1e6 else f"{value:,.3g}"


def metric_stats(store: ResultsStore, benchmark: str, map_size: int,
                 fuzzers: Sequence[str], metric: str,
                 seed: int = 0) -> dict:
    """One group × metric comparison, as plain data.

    Per fuzzer: sample size, median, seeded bootstrap CI. Per fuzzer
    pair (in the given fuzzer order): Mann–Whitney U and p-value,
    Vargha–Delaney Â₁₂, and a seeded bootstrap CI on the median
    difference. Every number comes straight out of
    :mod:`repro.fleet.stats` — this function is the parity point the
    HTML report and the live API are tested against.
    """
    samples: Dict[str, List[float]] = {}
    summary: List[dict] = []
    for fuzzer in fuzzers:
        values = store.sample(metric, benchmark=benchmark,
                              fuzzer=fuzzer, map_size=map_size)
        samples[fuzzer] = values
        if not values:
            summary.append({"fuzzer": fuzzer, "n": 0})
            continue
        lo, hi = bootstrap_ci(values, seed=seed)
        summary.append({"fuzzer": fuzzer, "n": len(values),
                        "median": _median(values), "ci": [lo, hi]})
    pairs: List[dict] = []
    for i, first in enumerate(fuzzers):
        for second in fuzzers[i + 1:]:
            x, y = samples[first], samples[second]
            if not x or not y:
                continue
            test = mann_whitney_u(x, y)
            a12 = vargha_delaney_a12(x, y)
            dlo, dhi = bootstrap_diff_ci(x, y, seed=seed)
            pairs.append({
                "first": first, "second": second,
                "u1": test.u1, "u2": test.u2,
                "p_value": test.p_value,
                "significant": bool(test.p_value < ALPHA),
                "a12": a12, "diff_ci": [dlo, dhi]})
    return {"metric": metric, "fuzzers": summary, "pairs": pairs}


def group_stats(store: ResultsStore,
                fuzzers: Optional[Sequence[str]] = None,
                metrics: Sequence[str] = REPORT_METRICS,
                seed: int = 0) -> List[dict]:
    """Every (benchmark, map-size) group's comparisons, sorted."""
    order = list(fuzzers) if fuzzers is not None else store.fuzzers()
    groups: List[dict] = []
    for benchmark, map_size in store.groups():
        groups.append({
            "benchmark": benchmark, "map_size": map_size,
            "label": f"{benchmark} @ {_size_label(map_size)} map",
            "metrics": [metric_stats(store, benchmark, map_size,
                                     order, metric, seed)
                        for metric in metrics]})
    return groups


def _metric_section(stats: dict) -> List[str]:
    lines = [f"  metric: {stats['metric']}"]
    for entry in stats["fuzzers"]:
        if entry["n"] == 0:
            lines.append(f"    {entry['fuzzer']:<8} no completed trials")
            continue
        lo, hi = entry["ci"]
        lines.append(
            f"    {entry['fuzzer']:<8} n={entry['n']:<3d} "
            f"median={_fmt(entry['median']):>12} "
            f"95% CI [{_fmt(lo)}, {_fmt(hi)}]")
    for pair in stats["pairs"]:
        dlo, dhi = pair["diff_ci"]
        marker = " *" if pair["significant"] else ""
        lines.append(
            f"    {pair['first']} vs {pair['second']}: "
            f"U={pair['u1']:.1f} "
            f"p={pair['p_value']:.4f}{marker} A12={pair['a12']:.3f} "
            f"dmedian 95% CI [{_fmt(dlo)}, {_fmt(dhi)}]")
    return lines


def render_report(store: ResultsStore,
                  spec: Optional[FleetSpec] = None,
                  metrics: Sequence[str] = REPORT_METRICS,
                  seed: int = 0) -> str:
    """Render the fleet comparison report over a results store.

    ``spec``, when given, pins fuzzer order to the spec's axis order
    (otherwise sorted) and adds the experiment header. ``seed`` feeds
    every bootstrap resampler.
    """
    fuzzers = (list(spec.fuzzers) if spec is not None
               else store.fuzzers())
    lines: List[str] = ["Fleet comparison (multi-trial, "
                        "Mann-Whitney + bootstrap CIs)"]
    if spec is not None:
        lines.append(
            f"grid: {len(spec.fuzzers)} fuzzers x "
            f"{len(spec.benchmarks)} benchmarks x "
            f"{len(spec.map_sizes)} map sizes x "
            f"{spec.n_trials} trials "
            f"(budget {spec.virtual_seconds:g}s virtual)")
    lost = store.lost_trials()
    if lost:
        lines.append(f"lost trials (retry budget exhausted): "
                     f"{', '.join(str(t) for t in lost)}")
    lines.append(f"significance: two-sided Mann-Whitney, "
                 f"* marks p < {ALPHA}")
    for group in group_stats(store, fuzzers, metrics, seed):
        lines.append("")
        lines.append(group["label"])
        for stats in group["metrics"]:
            lines.extend(_metric_section(stats))
    return "\n".join(lines)
