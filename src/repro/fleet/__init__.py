"""Campaign-fleet orchestration: multi-trial experiments on real
worker processes, with statistics worth believing.

The paper's headline claims rest on *comparisons* — bigmap vs afl,
across benchmarks and map sizes — and Klees et al. (*Evaluating Fuzz
Testing*) showed such comparisons are noise without many trials and
rank statistics over them. This package is the layer that produces
those trials and those statistics:

* :class:`FleetSpec` expands a (fuzzer × benchmark × map-size × trial)
  grid into a deterministic queue of :class:`TrialSpec` rows;
* :class:`FleetDispatcher` drives the queue through a worker backend —
  :class:`ProcessBackend` (real OS processes, heartbeat stall
  watchdog) or :class:`InlineBackend` (deterministic, in-process) —
  retrying failed or stalled workers from persisted campaign
  checkpoints via the :class:`repro.faults.SessionSupervisor`;
* :class:`SnapshotMeasurer` measures corpus snapshots out-of-band with
  the collision-free coverage evaluator (fuzzbench's runner/measurer
  split);
* :class:`ResultsStore` lands per-trial rows in SQLite — and, since
  the crash-safety work, owns the durable per-trial state machine that
  makes a fleet resumable after a dispatcher death
  (``repro-fuzz fleet --resume``); artifacts carry integrity seals
  (:mod:`repro.fleet.artifacts`) and the chaos harness
  (:mod:`repro.fleet.chaos`) injects dispatcher/worker/artifact/store
  faults and asserts bit-identical recovery;
* :mod:`repro.fleet.stats` supplies Mann–Whitney U, Vargha–Delaney
  Â₁₂ and seeded bootstrap CIs, and :func:`render_report` refuses to
  print a comparison without them.

Entry point: ``repro-fuzz fleet`` (see :mod:`repro.fleet.cli`).
"""

from .artifacts import (ArtifactIntegrityError, quarantine,
                        read_artifact, write_artifact)
from .chaos import (ChaosController, ChaosOutcome, DispatcherKilled,
                    run_fleet_with_chaos)
from .dispatcher import FleetDispatcher, FleetSummary, run_fleet
from .measurer import MeasureOutcome, SnapshotMeasurer
from .report import render_report
from .spec import (KILL, STALL, FleetSpec, TrialFault, TrialSpec)
from .stats import (MannWhitneyResult, bootstrap_ci, bootstrap_diff_ci,
                    mann_whitney_u, vargha_delaney_a12)
from .store import (DONE, LOST, MEASURING, PENDING, QUARANTINED,
                    TERMINAL_STATES, TRIAL_STATES, ResultsStore)
from .workers import (InlineBackend, ProcessBackend, TrialCompletion,
                      TrialRequest, execute_trial)

__all__ = [
    "FleetSpec", "TrialSpec", "TrialFault", "KILL", "STALL",
    "FleetDispatcher", "FleetSummary", "run_fleet",
    "InlineBackend", "ProcessBackend", "TrialRequest",
    "TrialCompletion", "execute_trial",
    "SnapshotMeasurer", "MeasureOutcome", "ResultsStore",
    "PENDING", "MEASURING", "DONE", "LOST", "QUARANTINED",
    "TRIAL_STATES", "TERMINAL_STATES",
    "ArtifactIntegrityError", "write_artifact", "read_artifact",
    "quarantine",
    "ChaosController", "ChaosOutcome", "DispatcherKilled",
    "run_fleet_with_chaos",
    "mann_whitney_u", "MannWhitneyResult", "vargha_delaney_a12",
    "bootstrap_ci", "bootstrap_diff_ci",
    "render_report",
]
