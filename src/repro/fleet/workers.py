"""Trial execution: the worker loop and the two dispatch backends.

One code path (:func:`execute_trial`) runs a trial on both backends:
the campaign is stepped in *checkpoint segments* (``snapshot_interval``
virtual seconds each); after every segment the worker persists, into
the trial's work directory,

* ``checkpoint.pkl`` — the pickled
  :class:`~repro.fuzzer.checkpoint.CampaignCheckpoint` (plus the
  segment counter), written atomically. A retried attempt restores it
  and continues — bit-identically, per the checkpoint contract — so a
  worker killed mid-trial loses at most one segment of work;
* ``snap-NNN.pkl`` — the corpus snapshot (queue inputs + virtual time
  + a wall timestamp) the out-of-band measurer consumes, fuzzbench's
  runner→measurer handoff shape;
* ``heartbeat`` — a monotone segment counter the dispatcher's stall
  watchdog reads.

Backends:

* :class:`InlineBackend` — runs trials synchronously in-process, in
  deterministic queue order. Injected faults surface as exceptions.
  This is the backend tests and the ``fleet`` experiment harness use:
  every run of the same spec produces byte-identical results.
* :class:`ProcessBackend` — real OS worker processes
  (:mod:`multiprocessing`), one per in-flight trial, bounded by
  ``n_workers``. Injected ``kill`` faults call ``os._exit`` (the
  process dies exactly as an OOM-killed fuzzer would); ``stall``
  faults spin without progress until the dispatcher's heartbeat
  watchdog terminates the process. Campaign determinism makes the two
  backends agree: a trial's result is a pure function of its config,
  whichever process computed it.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.errors import (ArtifactIntegrityError, FleetDispatchError,
                           InstanceFaultError)
from ..core.walltime import Stopwatch, wall_now
from ..fuzzer.campaign import Campaign
from ..fuzzer.stats import CampaignResult
from ..target import BuiltBenchmark, get_benchmark
from .artifacts import (log_integrity, quarantine, read_artifact,
                        read_heartbeat, write_artifact, write_heartbeat)
from .spec import KILL, STALL, TrialSpec

#: Completion statuses a backend reports to the dispatcher.
OK = "ok"
CRASHED = "crashed"
STALLED = "stalled"

CHECKPOINT_FILE = "checkpoint.pkl"
HEARTBEAT_FILE = "heartbeat"   # format/IO owned by repro.fleet.artifacts
RESULT_FILE = "result.pkl"
ERROR_FILE = "error.txt"

#: Exit code of a worker killed by an injected ``kill`` fault
#: (distinguishable from real crashes in worker logs).
KILL_EXIT_CODE = 173


class _InjectedFault(Exception):
    """Raised by the inline fault hook to simulate a worker death."""

    def __init__(self, kind: str) -> None:
        super().__init__(f"injected worker fault: {kind}")
        self.kind = kind


@dataclass(frozen=True)
class TrialRequest:
    """One dispatch of one trial attempt to a backend.

    Attributes:
        trial: the trial spec (config, fault schedule).
        attempt: 0-based attempt counter (drives fault ``on_attempt``
            matching and retry accounting).
        workdir: this trial's private artifact directory.
        snapshot_interval: checkpoint segment length, virtual seconds.
    """

    trial: TrialSpec
    attempt: int
    workdir: str
    snapshot_interval: float


@dataclass
class TrialCompletion:
    """A backend's verdict on one dispatched attempt.

    ``result`` is present only for ``status == OK``; ``reason`` carries
    the failure description otherwise. ``resumed_from_checkpoint``
    reports whether the attempt continued a persisted checkpoint (retry
    telemetry labels depend on it); ``integrity_failure`` marks
    failures caused by a corrupt/truncated artifact (the dispatcher
    quarantines such trials — rather than recording them lost — when
    the retry budget runs out on corruption).
    """

    request: TrialRequest
    status: str
    result: Optional[CampaignResult] = None
    reason: str = ""
    resumed_from_checkpoint: bool = False
    integrity_failure: bool = False


def _snapshot_corpus(workdir: str, segment: int,
                     campaign: Campaign) -> None:
    write_artifact(
        os.path.join(workdir, f"snap-{segment:03d}.pkl"),
        {"snapshot": segment,
         "virtual_seconds": campaign.clock.seconds,
         "corpus": [seed.data for seed in campaign.pool.seeds],
         "produced_at": wall_now()})


def execute_trial(request: TrialRequest,
                  fault_hook: Optional[Callable[[str], None]] = None,
                  built: Optional[BuiltBenchmark] = None
                  ) -> TrialCompletion:
    """Run one trial attempt to completion (see module docstring).

    ``fault_hook(kind)`` fires when the trial's injected fault matches
    this attempt and segment; it is expected not to return normally
    (``os._exit``, an endless stall, or an exception). ``built`` lets
    in-process callers share a benchmark build; results are identical
    either way, builds being deterministic.
    """
    trial = request.trial
    config = trial.config
    os.makedirs(request.workdir, exist_ok=True)
    campaign = Campaign(config, built=built)
    campaign.start()

    segment = 0
    resumed = False
    checkpoint_path = os.path.join(request.workdir, CHECKPOINT_FILE)
    if os.path.exists(checkpoint_path):
        try:
            segment, checkpoint = read_artifact(checkpoint_path)
        except ArtifactIntegrityError as exc:
            # Corrupt checkpoint: quarantine it and rerun from scratch
            # — determinism makes the from-scratch result identical to
            # a resumed one, so correctness survives at the cost of the
            # lost segments.
            quarantine(checkpoint_path)
            log_integrity(request.workdir, CHECKPOINT_FILE, str(exc))
        else:
            campaign.restore(checkpoint)
            resumed = True

    fault = trial.fault
    armed = (fault is not None and fault_hook is not None and
             request.attempt == fault.on_attempt)
    if armed and fault.at_segment <= segment:
        # Fires before any further checkpoint exists: segment 0 means
        # a from-scratch retry, a resumed segment means losing only
        # the tail.
        fault_hook(fault.kind)

    budget = config.virtual_seconds
    interval = request.snapshot_interval
    while (campaign.clock.before(budget) and
           campaign.execs < config.max_real_execs):
        boundary = min((segment + 1) * interval, budget)
        campaign.step_until(boundary)
        segment += 1
        write_artifact(checkpoint_path, (segment, campaign.snapshot()))
        _snapshot_corpus(request.workdir, segment, campaign)
        write_heartbeat(request.workdir, segment)
        if armed and fault.at_segment == segment:
            fault_hook(fault.kind)

    result = campaign.finish()
    write_artifact(os.path.join(request.workdir, RESULT_FILE), result)
    return TrialCompletion(request=request, status=OK, result=result,
                           resumed_from_checkpoint=resumed)


# -- inline backend ----------------------------------------------------


class InlineBackend:
    """Deterministic in-process backend (tests, experiment harnesses).

    Trials run synchronously at :meth:`submit`; :meth:`poll` drains
    completions in submission order. A per-(benchmark, scale,
    seed_scale) build cache keeps repeated cells cheap — semantics are
    unchanged, benchmark builds being pure functions of their
    arguments.
    """

    n_workers = 1

    def __init__(self) -> None:
        self._completions: List[TrialCompletion] = []
        self._builds: Dict[tuple, BuiltBenchmark] = {}

    @property
    def in_flight(self) -> int:
        return 0

    def _built_for(self, trial: TrialSpec) -> BuiltBenchmark:
        key = (trial.benchmark, trial.config.scale,
               trial.config.seed_scale)
        built = self._builds.get(key)
        if built is None:
            built = get_benchmark(trial.benchmark).build(
                trial.config.scale, seed_scale=trial.config.seed_scale)
            self._builds[key] = built
        return built

    def submit(self, request: TrialRequest) -> None:
        def fault_hook(kind: str) -> None:
            raise _InjectedFault(kind)

        try:
            completion = execute_trial(
                request, fault_hook=fault_hook,
                built=self._built_for(request.trial))
        except _InjectedFault as exc:
            status = CRASHED if exc.kind == KILL else STALLED
            completion = TrialCompletion(
                request=request, status=status, reason=str(exc))
        except Exception as exc:
            fault = InstanceFaultError.wrap(
                request.trial.trial_id, exc, during="trial")
            completion = TrialCompletion(
                request=request, status=CRASHED, reason=repr(fault))
        self._completions.append(completion)

    def poll(self) -> List[TrialCompletion]:
        done, self._completions = self._completions, []
        return done

    def shutdown(self) -> None:
        self._completions.clear()


# -- process backend ---------------------------------------------------


def _process_fault_hook(kind: str) -> None:
    """Die like a real worker: hard exit or a progress-free spin."""
    if kind == KILL:
        os._exit(KILL_EXIT_CODE)
    if kind == STALL:
        while True:
            time.sleep(0.05)
    raise FleetDispatchError(f"unknown injected fault kind {kind!r}")


def _process_trial_main(request: TrialRequest) -> None:
    """Worker-process entry point: run the trial, artifacts to disk."""
    try:
        execute_trial(request, fault_hook=_process_fault_hook)
    except Exception as exc:
        fault = InstanceFaultError.wrap(
            request.trial.trial_id, exc, during="trial")
        path = os.path.join(request.workdir, ERROR_FILE)
        # Dying breath of a crashing worker: the reader treats a torn
        # error file as diagnostics, never as state.
        # statlint: disable=ERR002 (crash-path diagnostics write)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(repr(fault) + "\n")
        os._exit(1)


@dataclass
class _WorkerSlot:
    request: TrialRequest
    process: "object"
    watch: Stopwatch = field(default_factory=Stopwatch)
    last_beat: int = -1
    had_checkpoint: bool = False


class ProcessBackend:
    """Real OS worker processes with a heartbeat stall watchdog.

    Args:
        n_workers: concurrent worker processes.
        stall_timeout: wall seconds without heartbeat progress before a
            live worker is declared stalled and terminated.
        poll_interval: wall seconds :meth:`poll` sleeps when nothing
            completed (keeps the dispatcher loop from busy-spinning).
    """

    def __init__(self, n_workers: int = 2, stall_timeout: float = 10.0,
                 poll_interval: float = 0.02) -> None:
        if n_workers < 1:
            raise FleetDispatchError(
                f"n_workers must be >= 1, got {n_workers}")
        import multiprocessing
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:
            self._ctx = multiprocessing.get_context("spawn")
        self.n_workers = n_workers
        self.stall_timeout = stall_timeout
        self.poll_interval = poll_interval
        self._slots: List[_WorkerSlot] = []

    @property
    def in_flight(self) -> int:
        return len(self._slots)

    def submit(self, request: TrialRequest) -> None:
        if len(self._slots) >= self.n_workers:
            raise FleetDispatchError(
                "submit() with no free worker slot (dispatcher bug)")
        os.makedirs(request.workdir, exist_ok=True)
        had_checkpoint = os.path.exists(
            os.path.join(request.workdir, CHECKPOINT_FILE))
        process = self._ctx.Process(
            target=_process_trial_main, args=(request,), daemon=True)
        process.start()
        self._slots.append(_WorkerSlot(
            request=request, process=process,
            last_beat=read_heartbeat(request.workdir),
            had_checkpoint=had_checkpoint))

    def _finish_slot(self, slot: _WorkerSlot) -> TrialCompletion:
        request = slot.request
        trial_id = request.trial.trial_id
        result_path = os.path.join(request.workdir, RESULT_FILE)
        if os.path.exists(result_path):
            try:
                result = read_artifact(result_path)
            except ArtifactIntegrityError as exc:
                # A corrupt result is a *recoverable* failure, not a
                # dispatcher crash: quarantine the artifact and let the
                # normal retry path recompute it from the checkpoint.
                quarantine(result_path)
                log_integrity(request.workdir, RESULT_FILE, str(exc))
                return TrialCompletion(
                    request=request, status=CRASHED,
                    reason=f"trial {trial_id}: result artifact failed "
                           f"integrity check: {exc}",
                    integrity_failure=True)
            return TrialCompletion(
                request=request, status=OK, result=result,
                resumed_from_checkpoint=slot.had_checkpoint)
        reason = f"worker exited {slot.process.exitcode} without result"
        error_path = os.path.join(request.workdir, ERROR_FILE)
        if os.path.exists(error_path):
            with open(error_path, "r", encoding="utf-8") as fh:
                reason = fh.read().strip()
        return TrialCompletion(request=request, status=CRASHED,
                               reason=reason)

    def _check_stall(self, slot: _WorkerSlot
                     ) -> Optional[TrialCompletion]:
        beat = read_heartbeat(slot.request.workdir)
        if beat != slot.last_beat:
            slot.last_beat = beat
            slot.watch.restart()
            return None
        if slot.watch.elapsed() < self.stall_timeout:
            return None
        slot.process.terminate()
        slot.process.join()
        return TrialCompletion(
            request=slot.request, status=STALLED,
            reason=f"no heartbeat progress for "
                   f"{self.stall_timeout:.1f}s (last segment {beat})")

    def poll(self) -> List[TrialCompletion]:
        """Collect finished / dead / stalled workers (non-blocking
        apart from one ``poll_interval`` sleep when idle)."""
        done: List[TrialCompletion] = []
        keep: List[_WorkerSlot] = []
        for slot in self._slots:
            if not slot.process.is_alive():
                slot.process.join()
                done.append(self._finish_slot(slot))
                continue
            stalled = self._check_stall(slot)
            if stalled is not None:
                done.append(stalled)
                continue
            keep.append(slot)
        self._slots = keep
        if not done and self._slots:
            time.sleep(self.poll_interval)
        return done

    def shutdown(self) -> None:
        """Terminate any still-running workers (abandoned dispatch)."""
        for slot in self._slots:
            if slot.process.is_alive():
                slot.process.terminate()
                slot.process.join()
        self._slots = []
