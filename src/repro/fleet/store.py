"""SQLite-backed per-trial results store for fleet experiments.

One row per trial (configuration echo, attempt count, terminal status,
headline campaign metrics) plus one row per out-of-band coverage
measurement (fuzzbench's ``measurer`` shape: corpus snapshots measured
independently of the trial runner). The store is the query surface the
stats layer and the report renderer sit on — nothing downstream touches
:class:`~repro.fuzzer.stats.CampaignResult` objects, so a report can be
regenerated from a store file long after the campaigns are gone.

Paths: a filesystem path persists across processes (the dispatcher and
CLI default to ``fleet.sqlite`` in the fleet work directory);
``":memory:"`` keeps everything in-process for tests.
"""

from __future__ import annotations

import json
import os
import sqlite3
from typing import Dict, List, Optional, Sequence, Tuple

from ..fuzzer.stats import CampaignResult
from .spec import TrialSpec

#: Terminal trial statuses.
DONE = "done"          # result recorded
LOST = "lost"          # retry budget exhausted, no result

_SCHEMA = """
CREATE TABLE IF NOT EXISTS trials (
    trial_id     INTEGER PRIMARY KEY,
    benchmark    TEXT    NOT NULL,
    fuzzer       TEXT    NOT NULL,
    map_size     INTEGER NOT NULL,
    replica      INTEGER NOT NULL,
    rng_seed     INTEGER NOT NULL,
    status       TEXT    NOT NULL,
    attempts     INTEGER NOT NULL,
    execs        INTEGER,
    virtual_seconds REAL,
    throughput   REAL,
    edges        INTEGER,
    unique_crashes INTEGER,
    unique_hangs INTEGER,
    corpus_size  INTEGER,
    stopped_by   TEXT,
    coverage_curve TEXT
);
CREATE TABLE IF NOT EXISTS measurements (
    trial_id     INTEGER NOT NULL,
    snapshot     INTEGER NOT NULL,
    virtual_seconds REAL NOT NULL,
    corpus_size  INTEGER NOT NULL,
    true_edges   INTEGER NOT NULL,
    lag_seconds  REAL    NOT NULL,
    PRIMARY KEY (trial_id, snapshot)
);
"""

#: trials columns holding per-trial outcome metrics that
#: :meth:`ResultsStore.sample` may select, mapped to a short
#: description (kept explicit: ``sample`` interpolates the column name
#: into SQL, so only names from this table are accepted).
METRIC_COLUMNS: Dict[str, str] = {
    "execs": "test cases executed",
    "virtual_seconds": "virtual campaign duration",
    "throughput": "executions per virtual second",
    "edges": "distinct map locations discovered",
    "unique_crashes": "crashwalk-deduplicated crashes",
    "unique_hangs": "deduplicated hangs",
    "corpus_size": "final queue length",
}


class ResultsStore:
    """Queryable fleet results (see module docstring).

    Args:
        path: SQLite database path, or ``":memory:"``.
    """

    def __init__(self, path: str = ":memory:") -> None:
        self.path = path
        if path != ":memory:":
            parent = os.path.dirname(os.path.abspath(path))
            os.makedirs(parent, exist_ok=True)
        self._conn = sqlite3.connect(path)
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultsStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- writing -------------------------------------------------------

    def record_trial(self, trial: TrialSpec, result: CampaignResult,
                     attempts: int) -> None:
        """Land one completed trial's row (idempotent per trial id)."""
        curve = json.dumps(
            [[t, int(edges)] for t, edges in result.coverage_curve])
        self._conn.execute(
            "INSERT OR REPLACE INTO trials VALUES "
            "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (trial.trial_id, trial.benchmark, trial.fuzzer,
             trial.map_size, trial.replica, trial.rng_seed, DONE,
             attempts, result.execs, result.virtual_seconds,
             result.throughput, result.discovered_locations,
             result.unique_crashes, result.unique_hangs,
             result.corpus_size, result.stopped_by, curve))
        self._conn.commit()

    def record_lost(self, trial: TrialSpec, attempts: int) -> None:
        """Land a trial whose retry budget ran out without a result."""
        self._conn.execute(
            "INSERT OR REPLACE INTO trials (trial_id, benchmark, "
            "fuzzer, map_size, replica, rng_seed, status, attempts) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (trial.trial_id, trial.benchmark, trial.fuzzer,
             trial.map_size, trial.replica, trial.rng_seed, LOST,
             attempts))
        self._conn.commit()

    def record_measurement(self, trial_id: int, snapshot: int,
                           virtual_seconds: float, corpus_size: int,
                           true_edges: int, lag_seconds: float) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO measurements VALUES "
            "(?, ?, ?, ?, ?, ?)",
            (trial_id, snapshot, virtual_seconds, corpus_size,
             true_edges, lag_seconds))
        self._conn.commit()

    # -- querying ------------------------------------------------------

    def trial_rows(self, *, benchmark: Optional[str] = None,
                   fuzzer: Optional[str] = None,
                   map_size: Optional[int] = None,
                   status: Optional[str] = None) -> List[sqlite3.Row]:
        """Trial rows matching the filters, ordered by trial id."""
        clauses, params = [], []
        for column, value in (("benchmark", benchmark),
                              ("fuzzer", fuzzer),
                              ("map_size", map_size),
                              ("status", status)):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        where = (" WHERE " + " AND ".join(clauses)) if clauses else ""
        self._conn.row_factory = sqlite3.Row
        rows = self._conn.execute(
            f"SELECT * FROM trials{where} ORDER BY trial_id",
            params).fetchall()
        self._conn.row_factory = None
        return rows

    def sample(self, metric: str, *, benchmark: str, fuzzer: str,
               map_size: int) -> List[float]:
        """One cell's per-trial values of ``metric``, replica-ordered —
        the shape the stats layer consumes."""
        if metric not in METRIC_COLUMNS:
            raise ValueError(
                f"unknown metric {metric!r}; known: "
                f"{', '.join(sorted(METRIC_COLUMNS))}")
        rows = self._conn.execute(
            f"SELECT {metric} FROM trials WHERE benchmark = ? AND "
            f"fuzzer = ? AND map_size = ? AND status = ? "
            f"ORDER BY replica",
            (benchmark, fuzzer, map_size, DONE)).fetchall()
        return [float(value) for (value,) in rows]

    def groups(self) -> List[Tuple[str, int]]:
        """Distinct (benchmark, map_size) comparison groups, sorted."""
        rows = self._conn.execute(
            "SELECT DISTINCT benchmark, map_size FROM trials "
            "ORDER BY benchmark, map_size").fetchall()
        return [(benchmark, int(size)) for benchmark, size in rows]

    def fuzzers(self) -> List[str]:
        """Distinct fuzzers present, sorted."""
        rows = self._conn.execute(
            "SELECT DISTINCT fuzzer FROM trials ORDER BY fuzzer"
        ).fetchall()
        return [fuzzer for (fuzzer,) in rows]

    def attempts(self, trial_id: int) -> int:
        row = self._conn.execute(
            "SELECT attempts FROM trials WHERE trial_id = ?",
            (trial_id,)).fetchone()
        return 0 if row is None else int(row[0])

    def lost_trials(self) -> List[int]:
        rows = self._conn.execute(
            "SELECT trial_id FROM trials WHERE status = ? "
            "ORDER BY trial_id", (LOST,)).fetchall()
        return [int(trial_id) for (trial_id,) in rows]

    def coverage_curve(self, trial_id: int) -> List[Tuple[float, int]]:
        row = self._conn.execute(
            "SELECT coverage_curve FROM trials WHERE trial_id = ?",
            (trial_id,)).fetchone()
        if row is None or row[0] is None:
            return []
        return [(float(t), int(edges)) for t, edges in json.loads(row[0])]

    def measurements(self, trial_id: int) -> List[sqlite3.Row]:
        self._conn.row_factory = sqlite3.Row
        rows = self._conn.execute(
            "SELECT * FROM measurements WHERE trial_id = ? "
            "ORDER BY snapshot", (trial_id,)).fetchall()
        self._conn.row_factory = None
        return rows

    def n_trials(self) -> int:
        (count,) = self._conn.execute(
            "SELECT COUNT(*) FROM trials").fetchone()
        return int(count)
