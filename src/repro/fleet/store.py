"""SQLite-backed per-trial results store for fleet experiments.

One row per trial (configuration echo, attempt count, terminal status,
headline campaign metrics) plus one row per out-of-band coverage
measurement (fuzzbench's ``measurer`` shape: corpus snapshots measured
independently of the trial runner). The store is the query surface the
stats layer and the report renderer sit on — nothing downstream touches
:class:`~repro.fuzzer.stats.CampaignResult` objects, so a report can be
regenerated from a store file long after the campaigns are gone.

Since the crash-safety work the store is also the fleet's **source of
truth for progress**: a durable per-trial state machine
(``pending → dispatched → running → measuring → done/lost/quarantined``)
advanced one transaction per transition, with a monotonic attempt
counter that survives dispatcher crashes. ``repro-fuzz fleet --resume``
reads nothing but this store (plus on-disk worker artifacts) to pick a
fleet up exactly where a dead dispatcher left it; see
:mod:`repro.fleet.dispatcher`.

Durability posture: connections run in WAL mode with a busy timeout
(applied on *every* connection, pragmas being per-connection), writes
are transactional, and transient ``database is locked`` / IO errors are
retried a bounded number of times with seeded-jitter backoff — the
jitter stream is a pure function of the store's ``retry_seed``, so two
contending writers deterministically de-synchronize.

Paths: a filesystem path persists across processes (the dispatcher and
CLI default to ``fleet.sqlite`` in the fleet work directory);
``":memory:"`` keeps everything in-process for tests.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import FleetDispatchError, FleetStateError
from ..fuzzer.stats import CampaignResult
from .spec import TrialSpec

#: Trial state-machine states (see module docstring). ``DONE`` and
#: ``LOST`` double as the terminal ``status`` column values of result
#: rows, which predate the state machine.
PENDING = "pending"
DISPATCHED = "dispatched"
RUNNING = "running"
MEASURING = "measuring"
DONE = "done"          # result + measurements recorded
LOST = "lost"          # retry budget exhausted, no result
QUARANTINED = "quarantined"   # budget exhausted on artifact corruption

TRIAL_STATES: Tuple[str, ...] = (
    PENDING, DISPATCHED, RUNNING, MEASURING, DONE, LOST, QUARANTINED)

#: Terminal states: a resumed fleet never re-dispatches these.
TERMINAL_STATES: Tuple[str, ...] = (DONE, LOST, QUARANTINED)

#: The legal transition graph. A transition to the current state is a
#: no-op only where listed (idempotent re-records during resume
#: reconciliation); everything else raises :class:`FleetStateError`.
_ALLOWED: Dict[str, Tuple[str, ...]] = {
    PENDING: (DISPATCHED,),
    DISPATCHED: (RUNNING, MEASURING, PENDING, LOST, QUARANTINED),
    RUNNING: (MEASURING, PENDING, LOST, QUARANTINED),
    MEASURING: (MEASURING, DONE, QUARANTINED),
    DONE: (),
    LOST: (),
    QUARANTINED: (),
}

_SCHEMA = """
CREATE TABLE IF NOT EXISTS trials (
    trial_id     INTEGER PRIMARY KEY,
    benchmark    TEXT    NOT NULL,
    fuzzer       TEXT    NOT NULL,
    map_size     INTEGER NOT NULL,
    replica      INTEGER NOT NULL,
    rng_seed     INTEGER NOT NULL,
    status       TEXT    NOT NULL,
    attempts     INTEGER NOT NULL,
    execs        INTEGER,
    virtual_seconds REAL,
    throughput   REAL,
    edges        INTEGER,
    unique_crashes INTEGER,
    unique_hangs INTEGER,
    corpus_size  INTEGER,
    stopped_by   TEXT,
    coverage_curve TEXT
);
CREATE TABLE IF NOT EXISTS measurements (
    trial_id     INTEGER NOT NULL,
    snapshot     INTEGER NOT NULL,
    virtual_seconds REAL NOT NULL,
    corpus_size  INTEGER NOT NULL,
    true_edges   INTEGER NOT NULL,
    lag_seconds  REAL    NOT NULL,
    PRIMARY KEY (trial_id, snapshot)
);
CREATE TABLE IF NOT EXISTS trial_state (
    trial_id     INTEGER PRIMARY KEY,
    state        TEXT    NOT NULL,
    attempt      INTEGER NOT NULL,
    seq          INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS fleet_meta (
    key          TEXT PRIMARY KEY,
    value        TEXT NOT NULL
);
"""

#: trials columns holding per-trial outcome metrics that
#: :meth:`ResultsStore.sample` may select, mapped to a short
#: description (kept explicit: ``sample`` interpolates the column name
#: into SQL, so only names from this table are accepted).
METRIC_COLUMNS: Dict[str, str] = {
    "execs": "test cases executed",
    "virtual_seconds": "virtual campaign duration",
    "throughput": "executions per virtual second",
    "edges": "distinct map locations discovered",
    "unique_crashes": "crashwalk-deduplicated crashes",
    "unique_hangs": "deduplicated hangs",
    "corpus_size": "final queue length",
}


class ResultsStore:
    """Queryable fleet results + durable trial state machine.

    Args:
        path: SQLite database path, or ``":memory:"``.
        busy_timeout: milliseconds SQLite itself blocks on a locked
            database before surfacing ``database is locked`` (per
            connection; WAL keeps readers and one writer concurrent).
        max_io_attempts: bounded retry budget per store operation for
            transient lock/IO errors.
        retry_seed: seed of the jitter stream backing those retries
            (the backoff schedule is a pure function of it).
        mode: ``"rw"`` (default) or ``"ro"``. Read-only stores open
            the database with a ``file:...?mode=ro`` URI plus
            ``PRAGMA query_only = ON``, never run the schema script,
            and refuse every write API up front — so a live API
            server can poll a store a dispatcher is writing without
            ever competing for the WAL write lock.
    """

    #: Connection modes.
    RW = "rw"
    RO = "ro"

    #: Base / cap of the retry backoff, seconds (exponential + jitter).
    RETRY_BASE = 0.01
    RETRY_CAP = 0.25

    def __init__(self, path: str = ":memory:", *,
                 busy_timeout: int = 5000,
                 max_io_attempts: int = 5,
                 retry_seed: int = 0,
                 mode: str = RW) -> None:
        if mode not in (self.RW, self.RO):
            raise ValueError(f"unknown store mode {mode!r}; "
                             f"use {self.RW!r} or {self.RO!r}")
        if mode == self.RO and path == ":memory:":
            raise ValueError("a read-only store needs a database file "
                             "(an in-memory store would always be "
                             "empty)")
        self.path = path
        self.mode = mode
        self.busy_timeout = busy_timeout
        self.max_io_attempts = max_io_attempts
        self.write_retries = 0
        #: Optional ``fn(op, attempt, error)`` called before each retry
        #: (the dispatcher wires this to ``store_retry`` telemetry).
        self.on_retry: Optional[Callable[[str, int, str], None]] = None
        self._injected_io_faults = 0
        self._retry_rng = np.random.default_rng(retry_seed)
        if path != ":memory:" and mode == self.RW:
            parent = os.path.dirname(os.path.abspath(path))
            os.makedirs(parent, exist_ok=True)
        self._conn: Optional[sqlite3.Connection] = self._connect()
        if mode == self.RW:
            self._transact(
                "schema", lambda conn: conn.executescript(_SCHEMA))

    # -- connection lifecycle ------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        """Open a connection with the durability pragmas applied.

        Pragmas are per-connection state in SQLite (``journal_mode``
        persists in the file for WAL, but ``busy_timeout`` and
        ``synchronous`` do not), so every connection — creation,
        reconnect, concurrent process — must come through here.
        A read-only store connects through a ``mode=ro`` URI and pins
        ``query_only`` so even a stray write statement cannot take
        the WAL write lock.
        """
        if self.mode == self.RO:
            uri = f"file:{os.path.abspath(self.path)}?mode=ro"
            conn = sqlite3.connect(uri, uri=True,
                                   timeout=self.busy_timeout / 1000.0)
            conn.execute(
                f"PRAGMA busy_timeout = {int(self.busy_timeout)}")
            conn.execute("PRAGMA query_only = ON")
            return conn
        conn = sqlite3.connect(self.path,
                               timeout=self.busy_timeout / 1000.0)
        conn.execute(f"PRAGMA busy_timeout = {int(self.busy_timeout)}")
        conn.execute("PRAGMA journal_mode = WAL")
        conn.execute("PRAGMA synchronous = NORMAL")
        return conn

    def _require_writable(self, op: str) -> None:
        if self.mode == self.RO:
            raise FleetStateError(
                f"store operation {op!r} on a read-only "
                f"(mode='ro') store {self.path!r}")

    @property
    def closed(self) -> bool:
        return self._conn is None

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def reconnect(self) -> None:
        """Drop and reopen the connection (pragmas reapplied)."""
        self.close()
        self._conn = self._connect()

    def __enter__(self) -> "ResultsStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- transactional execution with bounded retry --------------------

    def inject_io_faults(self, count: int) -> None:
        """Arm ``count`` injected transient IO failures (chaos/testing):
        the next ``count`` store operations raise ``database is
        locked`` once each before executing, exercising the seeded
        retry path deterministically."""
        self._injected_io_faults = count

    def _transact(self, op: str, fn):
        """Run ``fn(conn)`` as one transaction, retrying transient
        ``sqlite3.OperationalError`` with seeded-jitter backoff."""
        if self._conn is None:
            raise FleetDispatchError(
                f"results store used after close() (operation {op!r})")
        last: Optional[BaseException] = None
        for attempt in range(self.max_io_attempts):
            if attempt:
                self.write_retries += 1
                if self.on_retry is not None:
                    self.on_retry(op, attempt, repr(last))
                jitter = 0.5 + float(self._retry_rng.random())
                delay = self.RETRY_BASE * (2.0 ** (attempt - 1)) * jitter
                time.sleep(min(delay, self.RETRY_CAP))
            try:
                if self._injected_io_faults > 0:
                    self._injected_io_faults -= 1
                    raise sqlite3.OperationalError(
                        "database is locked (injected)")
                with self._conn:  # one transaction per operation
                    return fn(self._conn)
            except sqlite3.OperationalError as exc:
                last = exc
        raise FleetDispatchError(
            f"results-store operation {op!r} failed after "
            f"{self.max_io_attempts} attempts: {last!r}") from last

    # -- trial state machine -------------------------------------------

    def init_states(self, trial_ids: Sequence[int]) -> None:
        """Ensure every trial has a state row (``pending``, attempt 0).

        Idempotent: existing rows — a resumed fleet's progress — are
        left untouched.
        """
        self._require_writable("init_states")
        rows = [(int(trial_id), PENDING, 0, 0) for trial_id in trial_ids]
        self._transact("init_states", lambda conn: conn.executemany(
            "INSERT OR IGNORE INTO trial_state VALUES (?, ?, ?, ?)",
            rows))

    def trial_state(self, trial_id: int) -> Tuple[str, int]:
        """(state, attempt) of one trial; a trial without a state row
        reads as ``(pending, 0)``."""
        row = self._transact("trial_state", lambda conn: conn.execute(
            "SELECT state, attempt FROM trial_state WHERE trial_id = ?",
            (trial_id,)).fetchone())
        if row is None:
            return PENDING, 0
        return str(row[0]), int(row[1])

    def trial_states(self) -> Dict[int, Tuple[str, int]]:
        """All trial states, keyed by trial id."""
        rows = self._transact("trial_states", lambda conn: conn.execute(
            "SELECT trial_id, state, attempt FROM trial_state "
            "ORDER BY trial_id").fetchall())
        return {int(tid): (str(state), int(attempt))
                for tid, state, attempt in rows}

    def state_counts(self) -> Dict[str, int]:
        """How many trials sit in each state (states present only)."""
        rows = self._transact("state_counts", lambda conn: conn.execute(
            "SELECT state, COUNT(*) FROM trial_state GROUP BY state "
            "ORDER BY state").fetchall())
        return {str(state): int(count) for state, count in rows}

    def _transition_in(self, conn: sqlite3.Connection, trial_id: int,
                       to_state: str) -> Tuple[str, int]:
        """Advance one trial's state inside an open transaction."""
        row = conn.execute(
            "SELECT state, attempt, seq FROM trial_state "
            "WHERE trial_id = ?", (trial_id,)).fetchone()
        if row is None:
            raise FleetStateError(
                f"trial {trial_id} has no state row; call "
                f"init_states() before transitioning")
        current, attempt, seq = str(row[0]), int(row[1]), int(row[2])
        if to_state not in _ALLOWED.get(current, ()):
            raise FleetStateError(
                f"illegal trial {trial_id} transition "
                f"{current!r} -> {to_state!r}")
        if to_state == current:   # idempotent re-record
            return current, attempt
        if to_state == DISPATCHED:
            attempt += 1          # monotonic, survives crashes
        conn.execute(
            "UPDATE trial_state SET state = ?, attempt = ?, seq = ? "
            "WHERE trial_id = ?",
            (to_state, attempt, seq + 1, trial_id))
        return to_state, attempt

    def transition(self, trial_id: int, to_state: str) -> int:
        """Advance one trial's state (one transaction); returns the
        trial's monotonic attempt counter.

        ``pending → dispatched`` increments the attempt counter — it is
        the durable record that a dispatch *was intended*, written
        before the backend sees the request, so a dispatcher crash
        between bookkeeping and submit can never under-count attempts.
        """
        self._require_writable(f"transition:{to_state}")
        if to_state not in TRIAL_STATES:
            raise FleetStateError(f"unknown trial state {to_state!r}")
        _, attempt = self._transact(
            f"transition:{to_state}",
            lambda conn: self._transition_in(conn, trial_id, to_state))
        return attempt

    def force_state(self, trial_id: int, to_state: str) -> None:
        """Force one trial's state row to ``to_state``, graph be damned.

        The escape hatch for out-of-band store users (manual repair,
        reconciliation tooling): validates the state *name* but not the
        edge, and still bumps ``seq`` so readers observe a change.
        Normal code paths must use :meth:`transition`; statlint's
        FSM001 checks the state argument at every call site of both.
        """
        self._require_writable(f"force_state:{to_state}")
        if to_state not in TRIAL_STATES:
            raise FleetStateError(f"unknown trial state {to_state!r}")
        self._transact(
            f"force_state:{to_state}",
            lambda conn: self._force_in(conn, trial_id, to_state))

    def _force_in(self, conn: sqlite3.Connection, trial_id: int,
                  to_state: str) -> None:
        row = conn.execute(
            "SELECT seq FROM trial_state WHERE trial_id = ?",
            (trial_id,)).fetchone()
        if row is None:
            return   # pre-state-machine caller: nothing to keep in sync
        conn.execute(
            "UPDATE trial_state SET state = ?, seq = ? "
            "WHERE trial_id = ?", (to_state, int(row[0]) + 1, trial_id))

    def _record_state(self, conn: sqlite3.Connection, trial_id: int,
                      to_state: str) -> None:
        """State-row update for the ``record_*`` writers.

        ``record_trial`` / ``record_lost`` overwrite the authoritative
        trials row unconditionally (``INSERT OR REPLACE`` — they are
        the idempotent landing APIs), so the state row must follow even
        when the strict transition graph would refuse: a direct-API
        re-record force-sets the state rather than leave the two
        disagreeing. Dispatcher code paths always arrive here via legal
        transitions; only out-of-band store users hit the force path.
        """
        row = conn.execute(
            "SELECT state FROM trial_state "
            "WHERE trial_id = ?", (trial_id,)).fetchone()
        if row is None:
            return   # pre-state-machine caller: nothing to keep in sync
        current = str(row[0])
        if to_state == current or to_state in _ALLOWED.get(current, ()):
            self._transition_in(conn, trial_id, to_state)
        else:
            self._force_in(conn, trial_id, to_state)

    # -- fleet metadata ------------------------------------------------

    def set_meta(self, key: str, value: str) -> None:
        self._require_writable("set_meta")
        self._transact("set_meta", lambda conn: conn.execute(
            "INSERT OR REPLACE INTO fleet_meta VALUES (?, ?)",
            (key, str(value))))

    def get_meta(self, key: str) -> Optional[str]:
        row = self._transact("get_meta", lambda conn: conn.execute(
            "SELECT value FROM fleet_meta WHERE key = ?",
            (key,)).fetchone())
        return None if row is None else str(row[0])

    # -- writing -------------------------------------------------------

    def record_trial(self, trial: TrialSpec, result: CampaignResult,
                     attempts: int) -> None:
        """Land one completed trial's row (idempotent per trial id).

        When the trial has a state row, the same transaction advances
        it to ``measuring`` — the row and the state can never disagree
        on whether a result landed.
        """
        self._require_writable("record_trial")
        curve = json.dumps(
            [[t, int(edges)] for t, edges in result.coverage_curve])

        def write(conn: sqlite3.Connection) -> None:
            conn.execute(
                "INSERT OR REPLACE INTO trials VALUES "
                "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (trial.trial_id, trial.benchmark, trial.fuzzer,
                 trial.map_size, trial.replica, trial.rng_seed, DONE,
                 attempts, result.execs, result.virtual_seconds,
                 result.throughput, result.discovered_locations,
                 result.unique_crashes, result.unique_hangs,
                 result.corpus_size, result.stopped_by, curve))
            self._record_state(conn, trial.trial_id, MEASURING)

        self._transact("record_trial", write)

    def record_lost(self, trial: TrialSpec, attempts: int,
                    quarantined: bool = False) -> None:
        """Land a trial whose retry budget ran out without a result.

        ``quarantined=True`` marks budgets exhausted *on artifact
        corruption* — the trial is terminal either way, but reports
        distinguish "never finished" from "finished but untrustworthy".
        """
        self._require_writable("record_lost")
        state = QUARANTINED if quarantined else LOST

        def write(conn: sqlite3.Connection) -> None:
            conn.execute(
                "INSERT OR REPLACE INTO trials (trial_id, benchmark, "
                "fuzzer, map_size, replica, rng_seed, status, attempts) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (trial.trial_id, trial.benchmark, trial.fuzzer,
                 trial.map_size, trial.replica, trial.rng_seed, state,
                 attempts))
            self._record_state(conn, trial.trial_id, state)

        self._transact("record_lost", write)

    def record_measurement(self, trial_id: int, snapshot: int,
                           virtual_seconds: float, corpus_size: int,
                           true_edges: int, lag_seconds: float) -> None:
        self._require_writable("record_measurement")
        self._transact("record_measurement", lambda conn: conn.execute(
            "INSERT OR REPLACE INTO measurements VALUES "
            "(?, ?, ?, ?, ?, ?)",
            (trial_id, snapshot, virtual_seconds, corpus_size,
             true_edges, lag_seconds)))

    # -- querying ------------------------------------------------------

    def trial_rows(self, *, benchmark: Optional[str] = None,
                   fuzzer: Optional[str] = None,
                   map_size: Optional[int] = None,
                   status: Optional[str] = None) -> List[sqlite3.Row]:
        """Trial rows matching the filters, ordered by trial id."""
        clauses, params = [], []
        for column, value in (("benchmark", benchmark),
                              ("fuzzer", fuzzer),
                              ("map_size", map_size),
                              ("status", status)):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        where = (" WHERE " + " AND ".join(clauses)) if clauses else ""

        def read(conn: sqlite3.Connection) -> List[sqlite3.Row]:
            conn.row_factory = sqlite3.Row
            try:
                return conn.execute(
                    f"SELECT * FROM trials{where} ORDER BY trial_id",
                    params).fetchall()
            finally:
                conn.row_factory = None

        return self._transact("trial_rows", read)

    def sample(self, metric: str, *, benchmark: str, fuzzer: str,
               map_size: int) -> List[float]:
        """One cell's per-trial values of ``metric``, replica-ordered —
        the shape the stats layer consumes."""
        if metric not in METRIC_COLUMNS:
            raise ValueError(
                f"unknown metric {metric!r}; known: "
                f"{', '.join(sorted(METRIC_COLUMNS))}")
        rows = self._transact("sample", lambda conn: conn.execute(
            f"SELECT {metric} FROM trials WHERE benchmark = ? AND "
            f"fuzzer = ? AND map_size = ? AND status = ? "
            f"ORDER BY replica",
            (benchmark, fuzzer, map_size, DONE)).fetchall())
        return [float(value) for (value,) in rows]

    def groups(self) -> List[Tuple[str, int]]:
        """Distinct (benchmark, map_size) comparison groups, sorted."""
        rows = self._transact("groups", lambda conn: conn.execute(
            "SELECT DISTINCT benchmark, map_size FROM trials "
            "ORDER BY benchmark, map_size").fetchall())
        return [(benchmark, int(size)) for benchmark, size in rows]

    def fuzzers(self) -> List[str]:
        """Distinct fuzzers present, sorted."""
        rows = self._transact("fuzzers", lambda conn: conn.execute(
            "SELECT DISTINCT fuzzer FROM trials ORDER BY fuzzer"
        ).fetchall())
        return [fuzzer for (fuzzer,) in rows]

    def attempts(self, trial_id: int) -> int:
        row = self._transact("attempts", lambda conn: conn.execute(
            "SELECT attempts FROM trials WHERE trial_id = ?",
            (trial_id,)).fetchone())
        return 0 if row is None else int(row[0])

    def lost_trials(self) -> List[int]:
        """Terminal trials without a result (lost + quarantined)."""
        rows = self._transact("lost_trials", lambda conn: conn.execute(
            "SELECT trial_id FROM trials WHERE status IN (?, ?) "
            "ORDER BY trial_id", (LOST, QUARANTINED)).fetchall())
        return [int(trial_id) for (trial_id,) in rows]

    def coverage_curve(self, trial_id: int) -> List[Tuple[float, int]]:
        row = self._transact("coverage_curve", lambda conn: conn.execute(
            "SELECT coverage_curve FROM trials WHERE trial_id = ?",
            (trial_id,)).fetchone())
        if row is None or row[0] is None:
            return []
        return [(float(t), int(edges)) for t, edges in json.loads(row[0])]

    def measurements(self, trial_id: int) -> List[sqlite3.Row]:
        def read(conn: sqlite3.Connection) -> List[sqlite3.Row]:
            conn.row_factory = sqlite3.Row
            try:
                return conn.execute(
                    "SELECT * FROM measurements WHERE trial_id = ? "
                    "ORDER BY snapshot", (trial_id,)).fetchall()
            finally:
                conn.row_factory = None

        return self._transact("measurements", read)

    def n_trials(self) -> int:
        (count,) = self._transact("n_trials", lambda conn: conn.execute(
            "SELECT COUNT(*) FROM trials").fetchone())
        return int(count)
