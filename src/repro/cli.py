"""Command-line fuzzing driver (installed as ``repro-fuzz``).

Runs a single campaign or a parallel session against any registered
benchmark and prints an AFL-status-screen-style summary. Useful for
poking at configurations without writing a script::

    repro-fuzz sqlite3 --fuzzer bigmap --map-size 2M --budget 30
    repro-fuzz gvn --lafintel --metric ngram3 --scale 0.1
    repro-fuzz libpng --instances 4 --map-size 2M

With ``--telemetry-dir DIR`` the campaign also flushes structured
telemetry (events.jsonl, fuzzer_stats, plot_data, metrics.json) into
DIR — per-instance subdirectories for parallel sessions. The pseudo
benchmark ``telemetry`` renders a status view over a previously
flushed directory::

    repro-fuzz zlib --telemetry-dir /tmp/t
    repro-fuzz telemetry --telemetry-dir /tmp/t

The ``fleet`` subcommand dispatches multi-trial comparison experiments
to worker processes and reports Mann-Whitney/bootstrap statistics over
the trials (see :mod:`repro.fleet.cli`)::

    repro-fuzz fleet --fuzzers afl,bigmap --benchmarks zlib,libpng \\
        --trials 5 --workers 4

The ``serve`` subcommand runs the live telemetry dashboard (HTTP API +
websocket) over a telemetry directory, and ``report`` renders a static
HTML comparison report from fleet results stores (see
:mod:`repro.telemetry.serve.cli`)::

    repro-fuzz serve /tmp/t --store fleet=results.sqlite
    repro-fuzz report --store run=results.sqlite --out compare.html
"""

from __future__ import annotations

import argparse
import sys

from .fuzzer import CampaignConfig, ParallelSession, run_campaign
from .instrumentation import metric_names
from .target import benchmark_names, get_benchmark

_SIZE_SUFFIXES = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}


def parse_size(text: str) -> int:
    """Parse ``64k`` / ``2M`` / ``8388608`` into bytes."""
    text = text.strip().lower()
    factor = 1
    if text and text[-1] in _SIZE_SUFFIXES:
        factor = _SIZE_SUFFIXES[text[-1]]
        text = text[:-1]
    try:
        value = int(text) * factor
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"cannot parse size {text!r}") from None
    if value <= 0 or value & (value - 1):
        raise argparse.ArgumentTypeError(
            f"map size must be a positive power of two, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fuzz",
        description="Run a BigMap/AFL fuzzing campaign on a synthetic "
                    "benchmark.")
    parser.add_argument("benchmark",
                        help="benchmark name (see --list-benchmarks)")
    parser.add_argument("--fuzzer", choices=["afl", "bigmap"],
                        default="bigmap")
    parser.add_argument("--map-size", type=parse_size, default=1 << 16,
                        help="coverage map size, e.g. 64k, 2M (default "
                             "64k)")
    parser.add_argument("--metric", default="afl-edge",
                        choices=metric_names())
    parser.add_argument("--lafintel", action="store_true",
                        help="apply the laf-intel transform first")
    parser.add_argument("--budget", type=float, default=30.0,
                        help="virtual seconds on the modeled Xeon "
                             "(default 30)")
    parser.add_argument("--max-execs", type=int, default=50_000,
                        help="real-execution cap (default 50000)")
    parser.add_argument("--scale", type=float, default=0.25,
                        help="benchmark scale, 1.0 = paper size "
                             "(default 0.25)")
    parser.add_argument("--seed-scale", type=float, default=None,
                        help="seed-corpus scale (default: --scale)")
    parser.add_argument("--seed", type=int, default=0,
                        help="random seed (campaign replica)")
    parser.add_argument("--trim", action="store_true",
                        help="enable AFL-style seed trimming")
    parser.add_argument("--fork-mode", action="store_true",
                        help="disable persistent mode (charge fork "
                             "overhead)")
    parser.add_argument("--instances", type=int, default=1,
                        help="parallel instances (master-secondary)")
    parser.add_argument("--telemetry-dir", default=None, metavar="DIR",
                        help="flush telemetry artifacts into DIR; with "
                             "the pseudo benchmark 'telemetry', render "
                             "a status view over DIR instead")
    parser.add_argument("--follow", action="store_true",
                        help="with the 'telemetry' status view: keep "
                             "refreshing (incremental tail reads)")
    parser.add_argument("--interval", type=float, default=2.0,
                        help="--follow refresh interval in seconds "
                             "(default 2)")
    parser.add_argument("--refreshes", type=int, default=0,
                        help="with --follow: stop after N refreshes "
                             "(0 = until interrupted)")
    parser.add_argument("--list-benchmarks", action="store_true",
                        help="list benchmark names and exit")
    return parser


def _follow_telemetry(root: str, interval: float,
                      refreshes: int) -> int:
    """Refreshing status view over a (possibly growing) telemetry
    tree. Uses :class:`repro.telemetry.introspect.StatusTracker`, so
    each tick reads only the event-log bytes appended since the last
    one — cheap enough to leave running next to a live campaign."""
    import time

    from .telemetry.introspect import StatusTracker
    tracker = StatusTracker(root)
    count = 0
    try:
        while True:
            print(tracker.refresh())
            count += 1
            if refreshes and count >= refreshes:
                break
            print()
            time.sleep(interval)
    except KeyboardInterrupt:
        pass
    return 0


def _print_summary(title: str, rows) -> None:
    print(f"\n{title}")
    print("-" * len(title))
    for label, value in rows:
        print(f"  {label:<28} {value}")


def main(argv=None) -> int:
    parser = build_parser()
    raw = sys.argv[1:] if argv is None else list(argv)
    if raw and raw[0] == "fleet":
        from .fleet.cli import main as fleet_main
        return fleet_main(raw[1:])
    if raw and raw[0] == "serve":
        from .telemetry.serve.cli import main as serve_main
        return serve_main(raw[1:])
    if raw and raw[0] == "report":
        from .telemetry.serve.cli import report_main
        return report_main(raw[1:])
    if argv and "--list-benchmarks" in argv or \
            (argv is None and "--list-benchmarks" in sys.argv):
        for name in benchmark_names("all"):
            print(name)
        return 0
    args = parser.parse_args(argv)

    if args.benchmark == "telemetry":
        if args.telemetry_dir is None:
            parser.error("the 'telemetry' status view requires "
                         "--telemetry-dir DIR")
        if args.follow:
            return _follow_telemetry(args.telemetry_dir,
                                     args.interval, args.refreshes)
        from .telemetry.introspect import render_tree
        print(render_tree(args.telemetry_dir))
        return 0

    try:
        get_benchmark(args.benchmark)
    except KeyError as exc:
        parser.error(str(exc))

    config = CampaignConfig(
        benchmark=args.benchmark, fuzzer=args.fuzzer,
        map_size=args.map_size, metric=args.metric,
        lafintel=args.lafintel, scale=args.scale,
        seed_scale=args.seed_scale, virtual_seconds=args.budget,
        max_real_execs=args.max_execs, rng_seed=args.seed,
        trim_seeds=args.trim, persistent_mode=not args.fork_mode)

    if args.instances > 1:
        session_telemetry = None
        if args.telemetry_dir is not None:
            from .telemetry.recorder import SessionTelemetry
            session_telemetry = SessionTelemetry()
        summary = ParallelSession(config, args.instances,
                                  telemetry=session_telemetry).run()
        if session_telemetry is not None:
            session_telemetry.flush(args.telemetry_dir)
            print(f"telemetry artifacts: {args.telemetry_dir}")
        _print_summary(
            f"{args.benchmark} x{args.instances} ({args.fuzzer}, "
            f"{args.map_size:,} B map)",
            [("total executions", f"{summary.total_execs:,}"),
             ("total throughput", f"{summary.total_throughput:,.0f}/s"),
             ("unique crashes", summary.unique_crashes),
             ("map locations lit", f"{summary.discovered_locations:,}"),
             ("mean contention slowdown",
              f"{summary.mean_slowdown:.2f}x")])
        return 0

    recorder = None
    if args.telemetry_dir is not None:
        from .telemetry.recorder import TelemetryRecorder
        recorder = TelemetryRecorder(instance=0)
    result = run_campaign(config, telemetry=recorder)
    if recorder is not None:
        recorder.flush(args.telemetry_dir)
        print(f"telemetry artifacts: {args.telemetry_dir}")
    rows = [
        ("executions", f"{result.execs:,}"),
        ("virtual time", f"{result.virtual_seconds:.1f}s "
                         f"(stopped by {result.stopped_by})"),
        ("throughput", f"{result.throughput:,.0f}/s"),
        ("map locations lit", f"{result.discovered_locations:,}"),
        ("corpus size", f"{result.corpus_size:,}"),
        ("unique crashes (crashwalk)", result.unique_crashes),
        ("interesting execs", f"{result.interesting_execs:,}"),
    ]
    if result.used_key is not None:
        rows.append(("BigMap used_key",
                     f"{result.used_key:,} / {args.map_size:,}"))
    share = result.op_time_share()
    rows.append(("time in map ops",
                 f"{100 * (1 - share['execution'] - share['others']):.1f}%"))
    _print_summary(
        f"{args.benchmark} ({args.fuzzer}, {args.map_size:,} B map, "
        f"{args.metric}{'+laf' if args.lafintel else ''})", rows)
    return 0


if __name__ == "__main__":
    sys.exit(main())
