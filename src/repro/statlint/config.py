"""Lint configuration: defaults plus the ``[tool.statlint]`` table.

Every knob has a working default so ``python -m repro.statlint`` runs
without any configuration; the pyproject table overrides individual
fields (kebab-case or snake_case keys, interchangeably). Path-shaped
options are glob patterns matched against ``/``-normalized paths
relative to the lint root — a pattern without a leading ``*`` also
matches at any directory depth, so ``repro/core/walltime.py`` matches
``src/repro/core/walltime.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from fnmatch import fnmatch
from pathlib import Path
from typing import Optional, Sequence, Tuple

try:  # Python 3.11+
    import tomllib as _toml
except ImportError:  # pragma: no cover - older interpreters
    _toml = None


def path_matches(relpath: str, patterns: Sequence[str]) -> bool:
    """Whether a ``/``-normalized relative path matches any pattern."""
    normalized = relpath.replace("\\", "/")
    for pattern in patterns:
        if (fnmatch(normalized, pattern) or
                fnmatch(normalized, f"*/{pattern}") or
                fnmatch(normalized, f"{pattern}/*") or
                fnmatch(normalized, f"*/{pattern}/*")):
            return True
    return False


@dataclass(frozen=True)
class LintConfig:
    """Effective statlint configuration (see module docstring).

    Attributes:
        enable: rule ids to run; empty means every registered rule.
        exclude: path patterns never linted.
        wallclock_allow: files allowed to read the host clock (DET001);
            everything else must route timing through this shim.
        det003_paths: files whose iteration order feeds rendered or
            serialized output (DET003 applies only there).
        err002_paths: fleet artifact-handling code (ERR002 applies
            only there): writes must be atomic, failures routed.
        telemetry_paths: the telemetry subsystem (TEL001): no host
            clock, no unseeded randomness, canonical JSON encoding,
            no unordered iteration anywhere in these files.
        snapshot_exempt: ``Campaign`` attributes deliberately absent
            from ``snapshot_campaign`` (immutable identity or lifetime
            counters); SNAP001 flags drift in either direction.
        snapshot_methods: methods whose ``self.<attr>`` assignments
            define the campaign's mutable state for SNAP001.
        campaign_path / checkpoint_path / runner_path /
            store_path / events_path / dispatcher_path / workers_path /
            aggregator_path:
            project-relative locations of the cross-checked modules.
        num_hot_paths: kernel files the NUM1xx dtype-stability rules
            police (everywhere else, float math is presumed deliberate).
        conc_exempt: modules whose module-level mutable state is the
            *sanctioned* cross-process layer (the store and the
            artifact directory); CONC001 skips globals they define.
        conc_worker_roots: function names in ``workers_path`` (and any
            ``conc_worker_paths`` module) that run on the worker side
            of the process boundary (spawn targets and the shared
            trial path).
        conc_worker_paths: additional files, beyond ``workers_path``,
            searched for ``conc_worker_roots`` — e.g. the shared-memory
            campaign backend's forked worker loop.
        conc_dispatch_paths: additional files, beyond
            ``dispatcher_path``, whose callables all count as
            dispatcher-side roots (the parent side of a fork boundary
            that lives outside the fleet dispatcher).
        fsm_state_funcs: public state-writer names whose call sites
            FSM001 checks against the transition graph.
    """

    enable: Tuple[str, ...] = ()
    exclude: Tuple[str, ...] = ()
    wallclock_allow: Tuple[str, ...] = ("repro/core/walltime.py",)
    det003_paths: Tuple[str, ...] = (
        "*/analysis/*", "*/experiments/*", "*serialize*", "*report*")
    err002_paths: Tuple[str, ...] = ("*/fleet/*", "*/faults/*")
    telemetry_paths: Tuple[str, ...] = ("repro/telemetry/*",)
    snapshot_exempt: Tuple[str, ...] = ()
    snapshot_methods: Tuple[str, ...] = (
        "__init__", "start", "_dry_run_and_calibrate")
    campaign_path: str = "repro/fuzzer/campaign.py"
    checkpoint_path: str = "repro/fuzzer/checkpoint.py"
    runner_path: str = "repro/experiments/runner.py"
    store_path: str = "repro/fleet/store.py"
    events_path: str = "repro/telemetry/events.py"
    dispatcher_path: str = "repro/fleet/dispatcher.py"
    workers_path: str = "repro/fleet/workers.py"
    aggregator_path: str = "repro/telemetry/serve/aggregator.py"
    num_hot_paths: Tuple[str, ...] = ("repro/core/*", "repro/fuzzer/*")
    conc_exempt: Tuple[str, ...] = (
        "repro/fleet/store.py", "repro/fleet/artifacts.py")
    conc_worker_roots: Tuple[str, ...] = ("execute_trial", "_worker_main")
    conc_worker_paths: Tuple[str, ...] = ()
    conc_dispatch_paths: Tuple[str, ...] = ()
    fsm_state_funcs: Tuple[str, ...] = ("transition", "force_state")

    def rule_enabled(self, rule_id: str) -> bool:
        return not self.enable or rule_id in self.enable

    def is_excluded(self, relpath: str) -> bool:
        return path_matches(relpath, self.exclude)


def _coerce(value, target_type):
    if target_type is Tuple[str, ...]:
        if isinstance(value, str):
            return (value,)
        return tuple(str(v) for v in value)
    return str(value)


def config_from_table(table: dict) -> LintConfig:
    """Build a config from a ``[tool.statlint]``-shaped mapping."""
    config = LintConfig()
    known = {f.name: f.type for f in fields(LintConfig)}
    overrides = {}
    for key, value in table.items():
        name = key.replace("-", "_")
        if name not in known:
            raise ValueError(f"unknown [tool.statlint] key {key!r}")
        # Every scalar field is a ``*_path`` anchor; the rest are
        # pattern/name tuples.
        field_type = str if name.endswith("_path") else Tuple[str, ...]
        overrides[name] = _coerce(value, field_type)
    return replace(config, **overrides)


def load_config(pyproject: Optional[Path]) -> LintConfig:
    """Load config from a pyproject.toml (defaults if absent/unreadable).

    A missing file or an interpreter without ``tomllib`` degrades to
    the built-in defaults rather than failing the lint run.
    """
    if pyproject is None or _toml is None:
        return LintConfig()
    pyproject = Path(pyproject)
    if not pyproject.is_file():
        return LintConfig()
    with pyproject.open("rb") as handle:
        data = _toml.load(handle)
    table = data.get("tool", {}).get("statlint", {})
    return config_from_table(table)


def find_pyproject(start: Path) -> Optional[Path]:
    """Nearest pyproject.toml at or above ``start``."""
    for directory in [start, *start.parents]:
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None
