"""Static import resolution for rule matching.

Rules match calls by *fully qualified* name (``time.time``,
``numpy.random.default_rng``), so aliasing must be undone first:
``import numpy as np`` makes ``np.random.rand`` resolve to
``numpy.random.rand``, and ``from time import time as now`` makes
``now()`` resolve to ``time.time``. Resolution is deliberately
conservative: a name that was never imported resolves to ``None``, so
a local variable that happens to be called ``random`` cannot trip a
determinism rule.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional


class ImportMap:
    """Alias → fully-qualified-name table for one module."""

    def __init__(self, tree: ast.AST) -> None:
        self._aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    full = alias.asname and alias.name or local
                    # `import a.b.c` binds `a`; `import a.b.c as x`
                    # binds `x` to the full dotted path.
                    self._aliases[local] = full
            elif isinstance(node, ast.ImportFrom):
                # Relative imports keep their dots; suffix-based
                # matching below still works (`..core.errors` ends in
                # `core.errors`).
                module = "." * node.level + (node.module or "")
                for alias in node.names:
                    local = alias.asname or alias.name
                    self._aliases[local] = f"{module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Fully qualified dotted name of an expression, if importable.

        Returns ``None`` for expressions whose root name was not
        imported (locals, builtins, call results).
        """
        parts = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self._aliases.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))

    def resolve_call(self, call: ast.Call) -> Optional[str]:
        return self.resolve(call.func)
