"""statlint command line: ``python -m repro.statlint <paths>``.

Exit codes: 0 — clean (no unsuppressed findings); 1 — findings; 2 —
usage or configuration error. Configuration comes from the nearest
``pyproject.toml``'s ``[tool.statlint]`` table (or ``--config``); the
lint root (against which configured path patterns match) is that
file's directory.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from . import rules  # noqa: F401 — ensure the rule set is registered
from .config import find_pyproject, load_config
from .engine import lint_paths
from .report import render_human, render_json, render_rules


def _default_paths(root: Path) -> List[str]:
    candidates = [p for p in ("src", "benchmarks", "examples")
                  if (root / p).is_dir()]
    return candidates or ["."]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.statlint",
        description="Repo-specific determinism & consistency linter.")
    parser.add_argument("paths", nargs="*", metavar="path",
                        help="files or directories to lint (default: "
                             "src benchmarks examples under the root)")
    parser.add_argument("--config", type=Path, default=None,
                        help="pyproject.toml to read [tool.statlint] "
                             "from (default: nearest above cwd)")
    parser.add_argument("--format", choices=["human", "json"],
                        default="human", help="report format")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="also print suppressed findings")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_rules())
        return 0

    pyproject = args.config or find_pyproject(Path.cwd())
    try:
        config = load_config(pyproject)
    except ValueError as exc:
        print(f"statlint: bad configuration: {exc}", file=sys.stderr)
        return 2
    root = pyproject.parent if pyproject is not None else Path.cwd()

    paths = args.paths or _default_paths(root)
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(f"statlint: no such path(s): {', '.join(missing)}",
              file=sys.stderr)
        return 2

    result = lint_paths([Path(p) for p in paths], config, root=root)
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_human(result, show_suppressed=args.show_suppressed))
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
