"""statlint command line: ``python -m repro.statlint <paths>``.

Exit codes:

* **0** — clean: no active findings, or (with ``--baseline``) none
  beyond the baseline;
* **1** — findings, no baseline in play;
* **2** — *new* findings versus the baseline (the ratchet tripped);
* **3** — usage or configuration error.

Configuration comes from the nearest ``pyproject.toml``'s
``[tool.statlint]`` table (or ``--config``); the lint root (against
which configured path patterns match) is that file's directory.
``--changed-only`` keeps a content-hash cache next to the root so
unchanged files skip their file rules entirely.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from . import rules  # noqa: F401 — ensure the rule set is registered
from .baseline import Baseline, BaselineError
from .cache import CACHE_FILENAME, LintCache
from .config import find_pyproject, load_config
from .engine import lint_paths
from .report import render_human, render_json, render_rules
from .sarif import render_sarif

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_NEW_FINDINGS = 2
EXIT_USAGE = 3


class _Parser(argparse.ArgumentParser):
    """Argparse, but usage errors use the reserved usage exit code."""

    def error(self, message: str) -> None:  # pragma: no cover - argparse
        self.print_usage(sys.stderr)
        self.exit(EXIT_USAGE, f"{self.prog}: error: {message}\n")


def _default_paths(root: Path) -> List[str]:
    candidates = [p for p in ("src", "benchmarks", "examples")
                  if (root / p).is_dir()]
    return candidates or ["."]


def main(argv: Optional[List[str]] = None) -> int:
    parser = _Parser(
        prog="repro.statlint",
        description="Repo-specific determinism & consistency linter.")
    parser.add_argument("paths", nargs="*", metavar="path",
                        help="files or directories to lint (default: "
                             "src benchmarks examples under the root)")
    parser.add_argument("--config", type=Path, default=None,
                        help="pyproject.toml to read [tool.statlint] "
                             "from (default: nearest above cwd)")
    parser.add_argument("--format", choices=["human", "json", "sarif"],
                        default="human", help="report format")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline file: grandfather its findings; "
                             "exit 2 only on findings beyond it")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite --baseline from this run's "
                             "active findings and exit 0")
    parser.add_argument("--changed-only", action="store_true",
                        help="incremental run: reuse per-file results "
                             "for content-unchanged files "
                             f"(cache: {CACHE_FILENAME} at the root)")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="also print suppressed findings")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_rules())
        return EXIT_CLEAN
    if args.update_baseline and args.baseline is None:
        print("statlint: --update-baseline requires --baseline",
              file=sys.stderr)
        return EXIT_USAGE

    pyproject = args.config or find_pyproject(Path.cwd())
    try:
        config = load_config(pyproject)
    except ValueError as exc:
        print(f"statlint: bad configuration: {exc}", file=sys.stderr)
        return EXIT_USAGE
    root = pyproject.parent if pyproject is not None else Path.cwd()

    paths = args.paths or _default_paths(root)
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(f"statlint: no such path(s): {', '.join(missing)}",
              file=sys.stderr)
        return EXIT_USAGE

    try:
        baseline = (Baseline.load(args.baseline)
                    if args.baseline is not None else None)
    except BaselineError as exc:
        print(f"statlint: {exc}", file=sys.stderr)
        return EXIT_USAGE

    cache = None
    cache_path = root / CACHE_FILENAME
    if args.changed_only:
        cache = LintCache.load(cache_path)

    result = lint_paths([Path(p) for p in paths], config, root=root,
                        cache=cache)
    if cache is not None:
        cache.save(cache_path)

    if args.update_baseline:
        Baseline.from_findings(result.findings).save(args.baseline)
        print(f"statlint: baseline {args.baseline} updated with "
              f"{len(result.active)} finding(s)", file=sys.stderr)
        return EXIT_CLEAN

    baseline_used = baseline is not None
    if baseline_used:
        result.findings = baseline.apply(result.findings)

    if args.format == "json":
        print(render_json(result, baseline_used=baseline_used))
    elif args.format == "sarif":
        print(render_sarif(result, baseline_used=baseline_used))
    else:
        print(render_human(result,
                           show_suppressed=args.show_suppressed,
                           baseline_used=baseline_used))

    if baseline_used:
        return EXIT_NEW_FINDINGS if result.new else EXIT_CLEAN
    return EXIT_CLEAN if result.ok else EXIT_FINDINGS


if __name__ == "__main__":
    sys.exit(main())
