"""The lint engine: file collection, rule dispatch, suppression.

One :func:`lint_paths` call collects every ``.py`` file under the
given paths, parses each once, runs all enabled file rules per module
and all enabled project rules over the whole set, then applies
suppression comments. A file that fails to parse yields a ``SYNTAX``
finding (unsuppressible — a broken file can't declare suppressions
reliably) instead of aborting the run.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Tuple

from .config import LintConfig
from .findings import Finding, LintResult
from .imports import ImportMap
from .registry import RULES, FileRule, ProjectRule
from .suppressions import SuppressionIndex

#: Pseudo-rule id for unparsable files.
SYNTAX = "SYNTAX"


@dataclass
class SourceFile:
    """One parsed module under lint."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    suppressions: SuppressionIndex
    imports: ImportMap


class Project:
    """The collected file set handed to project rules."""

    def __init__(self, files: List[SourceFile]) -> None:
        self.files = files

    def find(self, suffix: str) -> Optional[SourceFile]:
        """The file whose ``/``-normalized path ends with ``suffix``."""
        suffix = suffix.replace("\\", "/")
        for source in self.files:
            normalized = source.relpath.replace("\\", "/")
            if normalized == suffix or normalized.endswith("/" + suffix):
                return source
        return None


def _iter_python_files(paths: Iterable[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
        elif path.is_dir():
            for found in sorted(path.rglob("*.py")):
                yield found


def collect_files(paths: Iterable[Path], config: LintConfig,
                  root: Path) -> Tuple[List[SourceFile], List[Finding]]:
    """Parse every lintable file; syntax errors become findings."""
    files: List[SourceFile] = []
    errors: List[Finding] = []
    seen = set()
    for path in _iter_python_files(Path(p) for p in paths):
        resolved = path.resolve()
        if resolved in seen:
            continue
        seen.add(resolved)
        relpath = os.path.relpath(resolved, root).replace(os.sep, "/")
        if config.is_excluded(relpath):
            continue
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            errors.append(Finding(
                path=relpath, line=exc.lineno or 0, col=exc.offset or 0,
                rule=SYNTAX, message=f"file does not parse: {exc.msg}"))
            continue
        files.append(SourceFile(
            path=resolved, relpath=relpath, source=source, tree=tree,
            suppressions=SuppressionIndex(source),
            imports=ImportMap(tree)))
    return files, errors


def _apply_suppressions(findings: Iterable[Finding],
                        project: Project) -> List[Finding]:
    by_path = {f.relpath: f for f in project.files}
    out = []
    for finding in findings:
        source = by_path.get(finding.path)
        if (source is not None and finding.rule != SYNTAX and
                source.suppressions.is_suppressed(finding.rule,
                                                  finding.line)):
            finding = finding.suppress()
        out.append(finding)
    return out


def lint_paths(paths: Iterable[Path], config: LintConfig = None,
               root: Path = None) -> LintResult:
    """Lint ``paths`` and return every (possibly suppressed) finding."""
    config = config or LintConfig()
    root = Path(root) if root is not None else Path.cwd()
    files, findings = collect_files(paths, config, root)
    project = Project(files)

    rules = [cls() for rule_id, cls in sorted(RULES.items())
             if config.rule_enabled(rule_id)]
    for rule in rules:
        if isinstance(rule, FileRule):
            for source in files:
                findings.extend(rule.check_file(source, config))
        elif isinstance(rule, ProjectRule):
            findings.extend(rule.check_project(project, config))

    findings = _apply_suppressions(findings, project)
    return LintResult(findings=sorted(set(findings)), n_files=len(files))
