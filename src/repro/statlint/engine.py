"""The lint engine: file collection, rule dispatch, suppression.

One :func:`lint_paths` call collects every ``.py`` file under the
given paths, parses each once, runs all enabled file rules per module
and all enabled project rules over the whole set, then applies
suppression comments. A file that fails to parse yields a ``SYNTAX``
finding (unsuppressible — a broken file can't declare suppressions
reliably) instead of aborting the run.
"""

from __future__ import annotations

import ast
import hashlib
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from .cache import config_fingerprint
from .config import LintConfig
from .findings import Finding, LintResult
from .imports import ImportMap
from .registry import RULES, FileRule, ProjectRule
from .suppressions import SuppressionIndex

#: Pseudo-rule id for unparsable files.
SYNTAX = "SYNTAX"


@dataclass
class SourceFile:
    """One parsed module under lint."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    suppressions: SuppressionIndex
    imports: ImportMap
    content_hash: str = ""


class Project:
    """The collected file set handed to project rules.

    Whole-program context — the symbol table, the call graph, and
    per-function dataflow — is built lazily on first access and shared
    by every rule in the run, so a run that enables none of the
    cross-file rules pays nothing for them.
    """

    def __init__(self, files: List[SourceFile]) -> None:
        self.files = files
        self._symbols = None
        self._callgraph = None
        self._dataflow: Dict[int, object] = {}

    def find(self, suffix: str) -> Optional[SourceFile]:
        """The file whose ``/``-normalized path ends with ``suffix``."""
        suffix = suffix.replace("\\", "/")
        for source in self.files:
            normalized = source.relpath.replace("\\", "/")
            if normalized == suffix or normalized.endswith("/" + suffix):
                return source
        return None

    @property
    def symbols(self):
        """Project-wide :class:`~repro.statlint.symbols.SymbolTable`."""
        if self._symbols is None:
            from .symbols import SymbolTable
            self._symbols = SymbolTable.build(self.files)
        return self._symbols

    @property
    def callgraph(self):
        """Approximate :class:`~repro.statlint.callgraph.CallGraph`."""
        if self._callgraph is None:
            from .callgraph import CallGraph
            self._callgraph = CallGraph(self.files, self.symbols)
        return self._callgraph

    def dataflow_for(self, source: SourceFile, func: Optional[ast.AST]):
        """Shared per-function dataflow (``None`` func → module body)."""
        from .dataflow import analyze_function
        key = id(func) if func is not None else id(source.tree)
        cached = self._dataflow.get(key)
        if cached is None:
            module = self.symbols.by_relpath.get(source.relpath)
            target = func if func is not None else source.tree
            cached = analyze_function(
                target, source.imports, symbols=self.symbols,
                module=module)
            self._dataflow[key] = cached
        return cached


def _iter_python_files(paths: Iterable[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
        elif path.is_dir():
            for found in sorted(path.rglob("*.py")):
                yield found


def collect_files(paths: Iterable[Path], config: LintConfig,
                  root: Path) -> Tuple[List[SourceFile], List[Finding]]:
    """Parse every lintable file; syntax errors become findings."""
    files: List[SourceFile] = []
    errors: List[Finding] = []
    seen = set()
    for path in _iter_python_files(Path(p) for p in paths):
        resolved = path.resolve()
        if resolved in seen:
            continue
        seen.add(resolved)
        relpath = os.path.relpath(resolved, root).replace(os.sep, "/")
        if config.is_excluded(relpath):
            continue
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            errors.append(Finding(
                path=relpath, line=exc.lineno or 0, col=exc.offset or 0,
                rule=SYNTAX, message=f"file does not parse: {exc.msg}"))
            continue
        files.append(SourceFile(
            path=resolved, relpath=relpath, source=source, tree=tree,
            suppressions=SuppressionIndex(source),
            imports=ImportMap(tree),
            content_hash=hashlib.sha256(
                source.encode("utf-8")).hexdigest()))
    return files, errors


def _apply_suppressions(findings: Iterable[Finding],
                        project: Project) -> List[Finding]:
    by_path = {f.relpath: f for f in project.files}
    out = []
    for finding in findings:
        source = by_path.get(finding.path)
        if (source is not None and finding.rule != SYNTAX and
                source.suppressions.is_suppressed(finding.rule,
                                                  finding.line)):
            finding = finding.suppress()
        out.append(finding)
    return out


def lint_paths(paths: Iterable[Path], config: LintConfig = None,
               root: Path = None, *, cache=None) -> LintResult:
    """Lint ``paths`` and return every (possibly suppressed) finding.

    Deduplication happens *before* suppression, so equal findings from
    overlapping rules can never disagree on their status flags (the
    old order made the surviving copy's ``suppressed`` flag depend on
    set iteration order).

    With ``cache`` (a :class:`~repro.statlint.cache.LintCache`), runs
    are incremental: file rules re-run only for files whose content
    hash changed, project rules re-run unless *nothing* changed, and
    the cache object is updated in place (the caller persists it).
    File-rule findings are cached per checked file — valid because
    every file rule anchors its findings to the file it is checking.
    """
    config = config or LintConfig()
    root = Path(root) if root is not None else Path.cwd()
    files, errors = collect_files(paths, config, root)
    project = Project(files)

    rules = [cls() for rule_id, cls in sorted(RULES.items())
             if config.rule_enabled(rule_id)]
    file_rules = [r for r in rules if isinstance(r, FileRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]

    use_cache = cache is not None and cache.valid_for(config)
    per_file: List[Finding] = []
    any_changed = bool(errors)
    collected = {source.relpath for source in files}
    if cache is not None and set(cache.files) != collected:
        any_changed = True

    for source in files:
        cached = (cache.cached_findings(source.relpath,
                                        source.content_hash)
                  if use_cache else None)
        if cached is not None:
            per_file.extend(cached)
            continue
        any_changed = True
        found: List[Finding] = []
        for rule in file_rules:
            found.extend(rule.check_file(source, config))
        found = _apply_suppressions(sorted(set(found)), project)
        if cache is not None:
            cache.record_file(source.relpath, source.content_hash,
                              found)
        per_file.extend(found)

    if use_cache and not any_changed:
        project_findings = cache.cached_project_findings()
    else:
        found = []
        for rule in project_rules:
            found.extend(rule.check_project(project, config))
        project_findings = _apply_suppressions(sorted(set(found)),
                                               project)
        if cache is not None:
            cache.record_project(project_findings)

    if cache is not None:
        cache.prune_to(collected)
        cache.config_key = config_fingerprint(config)

    findings = sorted(errors + per_file + project_findings)
    return LintResult(findings=findings, n_files=len(files))
