"""Finding reporters: human-readable lines and machine-readable JSON.

The human format is the classic compiler shape (``path:line:col: RULE
message``) so editors and CI annotations pick locations up for free;
JSON carries the same records plus run totals for tooling. SARIF lives
in :mod:`repro.statlint.sarif`.

The summary line accounts for every finding exactly once: new +
grandfathered (baseline mode) or active (no baseline), plus the
suppressed count — nothing is silently absorbed into "clean".
"""

from __future__ import annotations

import json

from .findings import LintResult
from .registry import RULES


def render_human(result: LintResult, *, show_suppressed: bool = False,
                 baseline_used: bool = False) -> str:
    lines = []
    for finding in result.findings:
        if finding.suppressed and not show_suppressed:
            continue
        marker = ""
        if finding.suppressed:
            marker = " (suppressed)"
        elif baseline_used and finding.baselined:
            marker = " (baseline)"
        lines.append(f"{finding.path}:{finding.line}:{finding.col}: "
                     f"{finding.rule} {finding.message}{marker}")
    if baseline_used:
        summary = (f"{len(result.new)} new finding(s), "
                   f"{len(result.grandfathered)} grandfathered")
    else:
        summary = f"{len(result.active)} finding(s)"
    lines.append(f"{summary}, {len(result.suppressed)} suppressed, "
                 f"{result.n_files} file(s) checked")
    return "\n".join(lines)


def render_json(result: LintResult, *,
                baseline_used: bool = False) -> str:
    return json.dumps({
        "findings": [f.as_dict() for f in result.findings],
        "n_active": len(result.active),
        "n_new": len(result.new),
        "n_grandfathered": len(result.grandfathered),
        "n_suppressed": len(result.suppressed),
        "n_files": result.n_files,
        "baseline_used": baseline_used,
        "ok": result.ok,
    }, indent=2, sort_keys=True)


def render_rules() -> str:
    """The registered rule catalog (``--list-rules``)."""
    lines = []
    for rule_id in sorted(RULES):
        cls = RULES[rule_id]
        lines.append(f"{rule_id}  {cls.title}")
        lines.append(f"        {cls.rationale}")
    return "\n".join(lines)
