"""Baseline ratchet: grandfather known findings, block new ones.

A committed baseline file lets a rule ship before the codebase is
clean under it: existing violations are *grandfathered* (reported, but
not failing), while anything not in the baseline is *new* and fails CI
with its own exit code. Shrinking the file is always legal; growing it
requires a deliberate ``--update-baseline``. That is the ratchet.

Fingerprints are ``(path, rule, message)`` — deliberately **not** line
numbers, so unrelated edits shifting a finding up or down the file do
not resurrect it as "new". Multiple identical violations in one file
are handled by *counting* fingerprints: a baseline entry of 2 covers
at most two matching findings, and the excess (in location order)
surfaces as new.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List

from .findings import Finding

#: Format marker for forward compatibility.
BASELINE_VERSION = 1


class BaselineError(ValueError):
    """The baseline file exists but cannot be used."""


def fingerprint(finding: Finding) -> str:
    return f"{finding.path}::{finding.rule}::{finding.message}"


@dataclass
class Baseline:
    """Fingerprint counts of grandfathered findings."""

    counts: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.is_file():
            return cls()
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise BaselineError(
                f"unreadable baseline {path}: {exc}") from exc
        if not isinstance(data, dict) or "fingerprints" not in data:
            raise BaselineError(
                f"baseline {path} has no 'fingerprints' table")
        counts = {}
        for key, count in data["fingerprints"].items():
            if not isinstance(count, int) or count < 1:
                raise BaselineError(
                    f"baseline {path}: bad count for {key!r}")
            counts[str(key)] = count
        return cls(counts=counts)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        """Baseline covering every *active* finding passed in."""
        counts: Dict[str, int] = {}
        for finding in findings:
            if finding.suppressed:
                continue
            key = fingerprint(finding)
            counts[key] = counts.get(key, 0) + 1
        return cls(counts=counts)

    def save(self, path: Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "fingerprints": dict(sorted(self.counts.items())),
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")

    def apply(self, findings: Iterable[Finding]) -> List[Finding]:
        """Mark grandfathered findings, in stable location order.

        Each fingerprint's budget covers at most ``counts[key]``
        findings; matching findings beyond the budget stay new. Input
        order is preserved; callers pass the engine's sorted list so
        budget allocation is deterministic.
        """
        remaining = dict(self.counts)
        out: List[Finding] = []
        for finding in findings:
            if not finding.suppressed:
                key = fingerprint(finding)
                if remaining.get(key, 0) > 0:
                    remaining[key] -= 1
                    finding = finding.grandfather()
            out.append(finding)
        return out
