"""Per-line lint suppressions.

A finding is silenced by a suppression comment naming its rule::

    start = time.time()  # statlint: disable=DET001 (host-side timing)

The directive applies to its own physical line; a comment-only line
additionally covers the line below it, so multi-line statements can be
suppressed without trailing-comment gymnastics::

    # statlint: disable=NUM001 (counts are bounded by the batch size)
    total = counters[slots] + summed

``disable=all`` silences every rule on the covered line, and
``disable-file=RULE`` (on a comment-only line) silences a rule for the
whole file. The parenthesized justification is optional but encouraged;
CI reviews read the suppression, not the commit message.
"""

from __future__ import annotations

import re
from typing import Dict, Set

_DIRECTIVE = re.compile(
    r"#\s*statlint:\s*disable(?P<scope>-file)?\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_*]+(?:\s*,\s*[A-Za-z0-9_*]+)*)")

#: Wildcard accepted in place of a rule list.
ALL = "all"


class SuppressionIndex:
    """Maps source lines to the rule ids suppressed on them."""

    def __init__(self, source: str) -> None:
        self._by_line: Dict[int, Set[str]] = {}
        self._file_wide: Set[str] = set()
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _DIRECTIVE.search(text)
            if match is None:
                continue
            rules = {r.strip().upper() if r.strip() != ALL else ALL
                     for r in match.group("rules").split(",")}
            if match.group("scope"):
                self._file_wide |= rules
                continue
            self._by_line.setdefault(lineno, set()).update(rules)
            if text.lstrip().startswith("#"):
                # Comment-only line: also covers the statement below.
                self._by_line.setdefault(lineno + 1, set()).update(rules)

    def is_suppressed(self, rule: str, line: int) -> bool:
        rule = rule.upper()
        for scope in (self._file_wide, self._by_line.get(line, ())):
            if rule in scope or ALL in scope:
                return True
        return False
