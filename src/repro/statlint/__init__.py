"""repro.statlint — AST-based determinism & consistency linter.

This reproduction's results rest on conventions: all randomness flows
through seeded generators, all time through :class:`VirtualClock` (and
host timing through :mod:`repro.core.walltime`), the campaign
checkpoint covers every mutable field, every experiment is registered
with the runner. statlint turns those conventions into machine-checked
CI gates — see DESIGN.md §"Determinism invariants" for the rule
catalog and rationale.

Public surface::

    python -m repro.statlint src benchmarks examples   # CLI
    from repro.statlint import lint_paths, LintConfig  # library

Suppress a deliberate violation on its line (justification in
parentheses)::

    # statlint: disable=RULE (why this is intentional)
"""

from .config import LintConfig, load_config
from .engine import Project, SourceFile, lint_paths
from .findings import Finding, LintResult
from .registry import RULES, FileRule, ProjectRule, Rule, register
from . import rules  # noqa: F401 — register the built-in rule set

__all__ = [
    "Finding", "LintResult", "LintConfig", "load_config",
    "lint_paths", "Project", "SourceFile",
    "RULES", "Rule", "FileRule", "ProjectRule", "register",
]
