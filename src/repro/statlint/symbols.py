"""Project-wide symbol table and import graph.

Whole-program rules need to answer questions a single module cannot:
*what value does the name ``DISPATCHED`` that ``fleet/dispatcher.py``
imports actually hold?* and *which module defines the ``transition``
method this call site resolves to?* The :class:`SymbolTable` indexes
every collected module — top-level constants (evaluated statically,
including tuples/dicts built from already-bound names, which is how
``fleet/store.py`` declares its transition graph), functions, classes
with their methods — and absolutizes each module's import aliases so a
dotted name at any use site resolves to the defining module's symbol.

Resolution is deliberately conservative: anything not statically
evaluable is simply absent, and rules treat absence as "unknown", never
as a violation.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Symbol kinds.
CONSTANT = "constant"
FUNCTION = "function"
CLASS = "class"


@dataclass
class Symbol:
    """One top-level (or class-level) definition in a module.

    Attributes:
        name: qualified name within the module (``func`` or
            ``Class.method``).
        module: dotted module name that defines it.
        kind: one of :data:`CONSTANT`, :data:`FUNCTION`, :data:`CLASS`.
        node: the defining AST node (``FunctionDef``/``ClassDef``/the
            assignment for constants).
        value: the statically evaluated value (constants only).
        lineno: definition line.
    """

    name: str
    module: str
    kind: str
    node: ast.AST
    value: object = None
    lineno: int = 0

    @property
    def qualified(self) -> str:
        return f"{self.module}.{self.name}"


def module_name(relpath: str) -> str:
    """Dotted module name for a ``/``-normalized repo-relative path.

    ``src/repro/fleet/store.py`` → ``repro.fleet.store``; a package
    ``__init__.py`` names the package itself. Files outside any
    recognizable package root fall back to their dotted path, which
    keeps names unique (all the table requires).
    """
    parts = relpath.replace("\\", "/").split("/")
    if parts and parts[0] in ("src", "lib"):
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p)


def _eval_literal(node: ast.AST, env: Dict[str, object]) -> Tuple[bool, object]:
    """Statically evaluate a literal-ish expression.

    Supports constants, tuples/lists/dicts/sets of evaluable parts,
    unary ``-``/``+``, and ``Name`` references to already-evaluated
    bindings in ``env`` — enough to read state constants, transition
    graphs, and event schemas straight out of the AST. Returns
    ``(ok, value)``.
    """
    if isinstance(node, ast.Constant):
        return True, node.value
    if isinstance(node, ast.Name):
        if node.id in env:
            return True, env[node.id]
        return False, None
    if isinstance(node, (ast.Tuple, ast.List)):
        out = []
        for elt in node.elts:
            ok, value = _eval_literal(elt, env)
            if not ok:
                return False, None
            out.append(value)
        return True, tuple(out) if isinstance(node, ast.Tuple) else out
    if isinstance(node, ast.Set):
        out = []
        for elt in node.elts:
            ok, value = _eval_literal(elt, env)
            if not ok:
                return False, None
            out.append(value)
        try:
            return True, frozenset(out)
        except TypeError:
            return False, None
    if isinstance(node, ast.Dict):
        mapping = {}
        for key, value in zip(node.keys, node.values):
            if key is None:  # ``**spread`` — not evaluable
                return False, None
            k_ok, k = _eval_literal(key, env)
            v_ok, v = _eval_literal(value, env)
            if not (k_ok and v_ok):
                return False, None
            try:
                mapping[k] = v
            except TypeError:
                return False, None
        return True, mapping
    if isinstance(node, ast.UnaryOp) and isinstance(
            node.op, (ast.USub, ast.UAdd)):
        ok, value = _eval_literal(node.operand, env)
        if ok and isinstance(value, (int, float)) and not isinstance(
                value, bool):
            return True, -value if isinstance(node.op, ast.USub) else value
        return False, None
    return False, None


#: Callables producing mutable containers when assigned at module level.
_MUTABLE_FACTORIES = frozenset({
    "dict", "list", "set", "defaultdict", "deque", "Counter",
    "OrderedDict",
})


def _is_mutable_container(node: ast.AST) -> bool:
    """Whether a module-level assignment value is a mutable container."""
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                         ast.SetComp, ast.DictComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = (func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute)
                else None)
        return name in _MUTABLE_FACTORIES
    return False


class ModuleSymbols:
    """Symbols of one module: constants, functions, classes, aliases."""

    def __init__(self, module: str, tree: ast.Module, relpath: str) -> None:
        self.module = module
        self.relpath = relpath
        self.constants: Dict[str, Symbol] = {}
        self.functions: Dict[str, Symbol] = {}
        self.classes: Dict[str, Symbol] = {}
        self.methods: Dict[str, Dict[str, Symbol]] = {}
        #: local alias → absolute dotted target (imports, absolutized).
        self.aliases: Dict[str, str] = {}
        #: module-level mutable containers: name → definition line.
        self.mutable_globals: Dict[str, int] = {}
        self._index(tree)

    # -- construction --------------------------------------------------

    def _package(self) -> List[str]:
        """Package path the module lives in (for relative imports)."""
        parts = self.module.split(".")
        if self.relpath.replace("\\", "/").endswith("__init__.py"):
            return parts  # the module *is* the package
        return parts[:-1]

    def _absolutize(self, target: str) -> str:
        """Resolve a possibly-relative dotted import target."""
        if not target.startswith("."):
            return target
        level = len(target) - len(target.lstrip("."))
        remainder = target.lstrip(".")
        package = self._package()
        base = package[:len(package) - (level - 1)] if level > 1 else package
        return ".".join([p for p in base if p] +
                        ([remainder] if remainder else []))

    def _index(self, tree: ast.Module) -> None:
        env: Dict[str, object] = {}
        for node in tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.aliases[local] = (alias.name if alias.asname
                                           else local)
            elif isinstance(node, ast.ImportFrom):
                target = "." * node.level + (node.module or "")
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.aliases[local] = self._absolutize(
                        f"{target}.{alias.name}" if target else alias.name)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                value = node.value
                if value is None:
                    continue
                ok, evaluated = _eval_literal(value, env)
                mutable = _is_mutable_container(value)
                for target in targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if ok:
                        env[target.id] = evaluated
                        self.constants[target.id] = Symbol(
                            name=target.id, module=self.module,
                            kind=CONSTANT, node=node, value=evaluated,
                            lineno=node.lineno)
                    if mutable:
                        self.mutable_globals[target.id] = node.lineno
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = Symbol(
                    name=node.name, module=self.module, kind=FUNCTION,
                    node=node, lineno=node.lineno)
            elif isinstance(node, ast.ClassDef):
                self.classes[node.name] = Symbol(
                    name=node.name, module=self.module, kind=CLASS,
                    node=node, lineno=node.lineno)
                methods = {}
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        methods[item.name] = Symbol(
                            name=f"{node.name}.{item.name}",
                            module=self.module, kind=FUNCTION,
                            node=item, lineno=item.lineno)
                self.methods[node.name] = methods

    # -- queries -------------------------------------------------------

    def lookup(self, name: str) -> Optional[Symbol]:
        """A top-level symbol defined *in this module* by bare name."""
        for table in (self.constants, self.functions, self.classes):
            if name in table:
                return table[name]
        return None


@dataclass
class ImportEdge:
    """One module-level import dependency."""

    importer: str
    imported: str
    lineno: int = 0


class SymbolTable:
    """All collected modules' symbols plus the import graph."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleSymbols] = {}
        #: relpath → module name, for rules that start from a file.
        self.by_relpath: Dict[str, str] = {}
        self.import_edges: List[ImportEdge] = []

    @classmethod
    def build(cls, files) -> "SymbolTable":
        """Index every :class:`~repro.statlint.engine.SourceFile`."""
        table = cls()
        for source in files:
            module = module_name(source.relpath)
            table.modules[module] = ModuleSymbols(
                module, source.tree, source.relpath)
            table.by_relpath[source.relpath] = module
        table._build_import_graph()
        return table

    def _build_import_graph(self) -> None:
        known = set(self.modules)
        for module, syms in sorted(self.modules.items()):
            for target in sorted(set(syms.aliases.values())):
                # An alias may point at a symbol *inside* a module;
                # walk up the dotted path until a known module matches.
                probe = target
                while probe and probe not in known:
                    probe = probe.rpartition(".")[0]
                if probe and probe != module:
                    self.import_edges.append(
                        ImportEdge(importer=module, imported=probe))

    # -- queries -------------------------------------------------------

    def module(self, name: str) -> Optional[ModuleSymbols]:
        return self.modules.get(name)

    def module_for(self, source) -> Optional[ModuleSymbols]:
        module = self.by_relpath.get(source.relpath)
        return self.modules.get(module) if module else None

    def imports_of(self, module: str) -> List[str]:
        return sorted({e.imported for e in self.import_edges
                       if e.importer == module})

    def resolve(self, module: str, name: str) -> Optional[Symbol]:
        """Resolve a (possibly dotted) name used inside ``module``.

        Follows the module's import aliases to the defining module and
        returns its symbol: ``DISPATCHED`` used in
        ``repro.fleet.dispatcher`` resolves to the constant defined in
        ``repro.fleet.store``. Chains through re-exports up to a small
        bound to avoid alias cycles.
        """
        syms = self.modules.get(module)
        if syms is None:
            return None
        head, _, rest = name.partition(".")
        local = syms.lookup(head)
        if local is not None and not rest:
            return local
        target = syms.aliases.get(head)
        if target is None:
            return None
        dotted = f"{target}.{rest}" if rest else target
        for _ in range(8):  # re-export chains are short
            owner, _, leaf = dotted.rpartition(".")
            owner_syms = self.modules.get(owner)
            if owner_syms is None:
                # Maybe ``dotted`` itself is a module (import module).
                if dotted in self.modules:
                    return None
                return None
            symbol = owner_syms.lookup(leaf)
            if symbol is not None:
                return symbol
            forwarded = owner_syms.aliases.get(leaf)
            if forwarded is None:
                return None
            dotted = forwarded
        return None

    def constant_value(self, module: str, name: str) -> Tuple[bool, object]:
        """``(known, value)`` of a constant name used inside ``module``."""
        symbol = self.resolve(module, name)
        if symbol is not None and symbol.kind == CONSTANT:
            return True, symbol.value
        return False, None

    def find_module_by_suffix(self, suffix: str) -> Optional[ModuleSymbols]:
        """The module whose relpath ends with ``suffix`` (rule anchors)."""
        suffix = suffix.replace("\\", "/")
        for relpath, module in sorted(self.by_relpath.items()):
            normalized = relpath.replace("\\", "/")
            if normalized == suffix or normalized.endswith("/" + suffix):
                return self.modules[module]
        return None
