"""Kernel dtype-stability rules (NUM101–NUM104).

The whole point of a BigMap-style fuzzer is that the hit-count map
stays narrow (uint8/uint16) so the hot loop stays cache-resident.
Numpy quietly works against that: python-float scalars promote a
uint8 array to float64 (8× the memory traffic), ``np.bincount`` with
``weights=`` accumulates in float64 regardless of the weights' dtype,
small-int reductions widen to the *platform* word (``intp``) unless
told otherwise, and a redundant ``.astype`` copies megabytes for
nothing. These rules run intraprocedural dtype inference (see
:mod:`repro.statlint.dataflow`) over the configured hot paths
(``num_hot_paths``; ``repro/core/*`` and ``repro/fuzzer/*`` by
default) and flag each hazard where it happens. Everywhere else,
float math is presumed deliberate and the rules stay silent.

* **NUM101** — silent upcast to float64: a narrow-int array meeting a
  python-float scalar, or ``np.bincount(..., weights=...)`` (which
  always accumulates float64).
* **NUM102** — ``sum``/``cumsum``/``prod`` over a small-int operand
  without an explicit ``dtype=``: the accumulator dtype then depends
  on the platform word, so results (and overflow behavior) differ
  between 32- and 64-bit hosts.
* **NUM103** — arithmetic whose *result* stays narrow-int: each
  ``+``/``-``/``*`` on uint8/int16-class operands wraps silently on
  overflow; widen one operand first (the dtype-inference upgrade of
  the name-based NUM001).
* **NUM104** — ``.astype(dt)`` where the operand is already ``dt``:
  a full copy per call on a hot path; drop the cast or pass
  ``copy=False``.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from ..config import LintConfig, path_matches
from ..dataflow import (NARROW_INT_DTYPES, SMALL_SUM_DTYPES,
                        analyze_function, _dtype_name)
from ..registry import FileRule, register

#: Dtypes a python-float scalar silently explodes to float64.
_UPCAST_PRONE = NARROW_INT_DTYPES + ("int32", "uint32")

_REDUCTIONS = ("sum", "cumsum", "prod")


def _callables(tree: ast.Module):
    """Every analyzable callable: the module body, then each def."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a callable's body without descending into nested defs."""
    stack: List[ast.AST] = list(getattr(func, "body", []))
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda, ast.ClassDef)):
                continue
            stack.append(child)


def _keyword(call: ast.Call, name: str) -> Optional[ast.AST]:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


class _HotPathRule(FileRule):
    """Base: run dtype inference over every callable in a hot-path file."""

    def check_file(self, source, config: LintConfig) -> Iterator:
        if not path_matches(source.relpath, config.num_hot_paths):
            return
        for func in _callables(source.tree):
            flow = analyze_function(func, source.imports)
            for node in _own_nodes(func):
                yield from self.check_node(node, flow, source)

    def check_node(self, node, flow, source) -> Iterator:
        raise NotImplementedError


@register
class SilentUpcastRule(_HotPathRule):
    id = "NUM101"
    title = "silent upcast of a narrow-int kernel array to float64"
    rationale = ("A python-float scalar promotes a narrow-int array to "
                 "float64 (8x the memory traffic of uint8), and "
                 "np.bincount with weights= always accumulates float64; "
                 "hot-path kernels must widen deliberately, with an "
                 "explicit integer accumulator or cast.")

    def check_node(self, node, flow, source) -> Iterator:
        if isinstance(node, ast.Call):
            full = source.imports.resolve_call(node)
            if (full and full.startswith("numpy") and
                    full.rsplit(".", 1)[-1] == "bincount" and
                    (_keyword(node, "weights") is not None or
                     len(node.args) >= 2)):
                yield self.finding(
                    source.relpath, node.lineno, node.col_offset,
                    "np.bincount with weights= accumulates in float64 "
                    "regardless of the weights' dtype; use an integer "
                    "accumulator (np.add.at on an int64 buffer) or "
                    "cast the result deliberately")
        if isinstance(node, ast.BinOp) and not isinstance(
                node.op, ast.Div):
            result = flow.value_of(node)
            if result.dtype != "float64":
                return
            left = flow.value_of(node.left)
            right = flow.value_of(node.right)
            for array, scalar in ((left, right), (right, left)):
                if (array.is_array and array.dtype in _UPCAST_PRONE and
                        isinstance(scalar.const, float)):
                    yield self.finding(
                        source.relpath, node.lineno, node.col_offset,
                        f"{array.dtype} array silently upcast to "
                        f"float64 by a python-float operand; widen "
                        f"explicitly or keep the math integral")
                    return


@register
class ImplicitAccumulatorRule(_HotPathRule):
    id = "NUM102"
    title = "small-int reduction without an explicit dtype"
    rationale = ("np.sum/np.cumsum/np.prod widen small-int operands to "
                 "the platform word (intp), so accumulator width — and "
                 "overflow behavior — differs between 32- and 64-bit "
                 "hosts; hot-path reductions must pin dtype= "
                 "explicitly.")

    def check_node(self, node, flow, source) -> Iterator:
        if not isinstance(node, ast.Call):
            return
        operand = None
        name = None
        if isinstance(node.func, ast.Attribute) and \
                node.func.attr in _REDUCTIONS:
            full = source.imports.resolve_call(node)
            if full and full.startswith("numpy"):
                operand = node.args[0] if node.args else None
            else:
                operand = node.func.value
            name = node.func.attr
        if operand is None or name is None:
            return
        if _keyword(node, "dtype") is not None:
            return
        value = flow.value_of(operand)
        if value.dtype in SMALL_SUM_DTYPES:
            yield self.finding(
                source.relpath, node.lineno, node.col_offset,
                f"{name}() over a {value.dtype} operand without "
                f"dtype= accumulates in the platform word; pass an "
                f"explicit dtype (e.g. dtype=np.int64)")


@register
class NarrowArithmeticRule(_HotPathRule):
    id = "NUM103"
    title = "overflow-prone arithmetic on narrow-int arrays"
    rationale = ("+/-/* on uint8/int16-class arrays wraps silently at "
                 "the dtype boundary — exactly the saturation bug the "
                 "classify kernels exist to avoid; widen one operand "
                 "(or use a widening ufunc) before arithmetic.")

    def check_node(self, node, flow, source) -> Iterator:
        if not isinstance(node, ast.BinOp) or not isinstance(
                node.op, (ast.Add, ast.Sub, ast.Mult)):
            return
        result = flow.value_of(node)
        if result.dtype not in NARROW_INT_DTYPES or not result.is_array:
            return
        yield self.finding(
            source.relpath, node.lineno, node.col_offset,
            f"arithmetic result stays {result.dtype}; wraps silently "
            f"on overflow — widen an operand (e.g. "
            f".astype(np.int64)) before the operation")


@register
class RedundantCastRule(_HotPathRule):
    id = "NUM104"
    title = "astype to the dtype the operand already has"
    severity = "warning"
    rationale = ("astype copies unconditionally by default; casting an "
                 "array to its own dtype on a hot path is a full "
                 "redundant copy per call — drop the cast or pass "
                 "copy=False.")

    def check_node(self, node, flow, source) -> Iterator:
        if not (isinstance(node, ast.Call) and
                isinstance(node.func, ast.Attribute) and
                node.func.attr == "astype"):
            return
        if _keyword(node, "copy") is not None:
            return
        target_node = (node.args[0] if node.args
                       else _keyword(node, "dtype"))
        if target_node is None:
            return
        target = _dtype_name(target_node, source.imports)
        owner = flow.value_of(node.func.value)
        if target is not None and owner.dtype == target:
            yield self.finding(
                source.relpath, node.lineno, node.col_offset,
                f"operand is already {target}; this astype makes a "
                f"redundant copy — drop it or pass copy=False")
