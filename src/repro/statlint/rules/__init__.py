"""Rule set: importing this package registers every built-in rule.

Determinism family (per-file): DET001 wall clocks, DET002 unseeded
randomness, DET003 unordered iteration in output paths, TEL001
telemetry-subsystem determinism. Robustness family (per-file): ERR001
swallowed broad excepts, NUM001 narrow-int array arithmetic.
Consistency family (whole-project): SNAP001 checkpoint coverage,
EXP001 experiment registry.
"""

from . import (determinism, project, robustness,  # noqa: F401 (registers)
               telemetry)
