"""Rule set: importing this package registers every built-in rule.

Determinism family (per-file): DET001 wall clocks, DET002 unseeded
randomness, DET003 unordered iteration in output paths, TEL001
telemetry-subsystem determinism. Robustness family (per-file): ERR001
swallowed broad excepts, NUM001 narrow-int array arithmetic.
Consistency family (whole-project): SNAP001 checkpoint coverage,
EXP001 experiment registry.

Whole-program families (built on the symbol table / call graph /
dataflow layers): FSM001/FSM002 trial state-machine contract,
NUM101–NUM104 kernel dtype stability, TEL101–TEL103 telemetry schema
at emit sites, CONC001 fork-boundary shared state.
"""

from . import (concurrency, determinism, fsm,  # noqa: F401 (registers)
               numeric, project, robustness, telemetry,
               telemetry_schema)
