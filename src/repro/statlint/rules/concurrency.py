"""Process-boundary shared-state rule (CONC001).

The fleet runs trials in separate OS processes (``ProcessBackend``
spawns ``_worker_main``; the inline backend runs the same
``execute_trial`` path in-process). A module-level mutable container
written on both sides of that boundary is a trap: under the process
backend each side mutates its *own copy* after fork/spawn, so the code
appears to work inline and silently diverges under real workers. The
sanctioned cross-process channels are the results store (SQLite) and
the artifact directory — both are append/transactional by design.

CONC001 computes reachability over the approximate call graph (which
deliberately follows function references like ``Process(target=f)``
and ``functools.partial(f, ...)``) from two root sets:

* **dispatcher side** — every callable defined in ``dispatcher_path``;
* **worker side** — the configured ``conc_worker_roots`` in
  ``workers_path`` (spawn entry points and the shared trial path).

Any module-level mutable global written by reachable code on *both*
sides — and not defined in a ``conc_exempt`` module (the store and
artifact layers themselves) — is flagged at its definition, naming a
writer from each side.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..config import LintConfig, path_matches
from ..registry import ProjectRule, register

#: Container methods that mutate the receiver in place.
_MUTATORS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "appendleft",
    "extendleft",
})


def _local_names(func: ast.AST) -> Set[str]:
    """Names bound locally in a callable (params and assignments)."""
    args = func.args
    names = {a.arg for a in args.posonlyargs + args.args +
             args.kwonlyargs}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    hoisted_globals: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            hoisted_globals.update(node.names)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                names.update(_bound_names(target))
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            names.update(_bound_names(node.target))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            names.update(_bound_names(node.target))
        elif isinstance(node, ast.comprehension):
            names.update(_bound_names(node.target))
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    names.update(_bound_names(item.optional_vars))
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
    return names - hoisted_globals


def _bound_names(target: ast.AST) -> Set[str]:
    """Names a target *binds* — ``g[k] = v`` and ``obj.f = v`` store
    through an existing object and bind nothing, so subscript and
    attribute targets (and their subexpressions) must not count."""
    out: Set[str] = set()
    if isinstance(target, ast.Name):
        out.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            out |= _bound_names(elt)
    elif isinstance(target, ast.Starred):
        out |= _bound_names(target.value)
    return out


def _written_bases(func: ast.AST) -> Iterator[Tuple[ast.AST, int]]:
    """Expressions a callable writes *through* (container mutation).

    Yields ``(base_expr, lineno)`` for subscript stores
    (``g[k] = v``), deletions, augmented subscript stores, in-place
    mutator calls (``g.append(...)``), and plain rebinding of a
    ``global``-declared name.
    """
    declared_global: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    yield target.value, node.lineno
                elif (isinstance(target, ast.Name) and
                      target.id in declared_global):
                    yield target, node.lineno
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Subscript):
                yield node.target.value, node.lineno
            elif (isinstance(node.target, ast.Name) and
                  node.target.id in declared_global):
                yield node.target, node.lineno
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    yield target.value, node.lineno
        elif (isinstance(node, ast.Call) and
              isinstance(node.func, ast.Attribute) and
              node.func.attr in _MUTATORS):
            yield node.func.value, node.lineno


@register
class ForkBoundaryRule(ProjectRule):
    id = "CONC001"
    title = "mutable global written on both sides of the fork boundary"
    rationale = ("Under the process backend each side mutates its own "
                 "post-spawn copy, so state shared this way works "
                 "inline and silently diverges under real workers; "
                 "route cross-process state through the results store "
                 "or the artifact directory.")

    def check_project(self, project, config: LintConfig) -> Iterator:
        graph = project.callgraph
        symbols = project.symbols

        dispatch_roots: List[str] = []
        for relpath in (config.dispatcher_path,
                        *config.conc_dispatch_paths):
            source = project.find(relpath)
            if source is not None:
                dispatch_roots.extend(graph.nodes_in_file(source.relpath))
        worker_roots: List[str] = []
        for relpath in (config.workers_path, *config.conc_worker_paths):
            source = project.find(relpath)
            if source is None:
                continue
            syms = symbols.module_for(source)
            if syms is None:
                continue
            worker_roots.extend(
                syms.functions[name].qualified
                for name in config.conc_worker_roots
                if name in syms.functions)
        if not dispatch_roots or not worker_roots:
            return
        dispatch_reach = graph.reachable(dispatch_roots)
        worker_reach = graph.reachable(worker_roots)

        # global key -> {"dispatch": [writer...], "worker": [writer...]}
        writers: Dict[Tuple[str, str], Dict[str, List[str]]] = {}
        for node_id, (source, func) in sorted(graph.functions.items()):
            on_dispatch = node_id in dispatch_reach
            on_worker = node_id in worker_reach
            if func is None or not (on_dispatch or on_worker):
                continue
            module = symbols.by_relpath.get(source.relpath)
            syms = symbols.module(module) if module else None
            if syms is None:
                continue
            local = _local_names(func)
            for base, _lineno in _written_bases(func):
                key = self._resolve_global(base, syms, symbols, local)
                if key is None:
                    continue
                sides = writers.setdefault(
                    key, {"dispatch": [], "worker": []})
                if on_dispatch:
                    sides["dispatch"].append(node_id)
                if on_worker:
                    sides["worker"].append(node_id)

        for (module, name), sides in sorted(writers.items()):
            if not (sides["dispatch"] and sides["worker"]):
                continue
            syms = symbols.module(module)
            if syms is None or path_matches(syms.relpath,
                                            config.conc_exempt):
                continue
            lineno = syms.mutable_globals.get(name, 1)
            d_writer = sorted(set(sides["dispatch"]))[0]
            w_writer = sorted(set(sides["worker"]))[0]
            yield self.finding(
                syms.relpath, lineno, 0,
                f"module-level mutable {name!r} is written from "
                f"dispatcher-side code ({d_writer}) and worker-side "
                f"code ({w_writer}); each process mutates its own "
                f"copy — route shared state through the results "
                f"store or artifact directory")

    @staticmethod
    def _resolve_global(base: ast.AST, syms, symbols,
                        local: Set[str]) -> Optional[Tuple[str, str]]:
        """Resolve a written-through base to a module-level global."""
        if isinstance(base, ast.Name):
            if base.id in local:
                return None
            if base.id in syms.mutable_globals:
                return syms.module, base.id
            target = syms.aliases.get(base.id)
        elif (isinstance(base, ast.Attribute) and
              isinstance(base.value, ast.Name)):
            # ``mod.g[...] = v`` through an import alias.
            if base.value.id in local:
                return None
            prefix = syms.aliases.get(base.value.id)
            target = f"{prefix}.{base.attr}" if prefix else None
        else:
            return None
        if target is None:
            return None
        owner, _, leaf = target.rpartition(".")
        owner_syms = symbols.module(owner)
        if owner_syms is not None and leaf in owner_syms.mutable_globals:
            return owner, leaf
        return None
