"""Fleet trial state-machine rules (FSM001/FSM002).

The fleet's crash-safety story (DESIGN.md §10) rests on every trial
moving only along the transition graph ``fleet/store.py`` declares.
The graph and the state constants are plain module-level literals, so
the whole contract is statically readable: these rules lift it out of
the store module and check *every call site in the project* against it.

* **FSM001** — each ``ResultsStore.transition()`` / ``force_state()``
  call site's state argument (resolved through constant propagation:
  literals, named constants, conditional joins) must name a declared
  state; a ``transition()`` target must moreover have at least one
  incoming edge in the graph (a never-legal target always raises at
  runtime); and call sites outside the store module must use the named
  constants the store exports, not raw string literals.
* **FSM002** — graph-level checks anchored at the store module: every
  declared state needs a transition-graph entry, every state must be
  reachable from the initial state (the first entry of the declared
  state tuple), and every non-initial state must be *entered* by some
  call site somewhere in the project — a state no code ever moves a
  trial into is dead weight that reports and resume reconciliation
  still have to handle.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from ..config import LintConfig
from ..registry import ProjectRule, register

#: Store-module symbol names the rules read.
GRAPH_NAME = "_ALLOWED"
STATES_NAME = "TRIAL_STATES"

#: Store-internal writers that also move the state machine; their
#: state arguments count as "entering" a state for FSM002.
_INTERNAL_FUNCS = ("_transition_in", "_record_state")


def _is_forwarded_param(expr: ast.AST, func: Optional[ast.AST]) -> bool:
    """Whether a state argument just forwards an enclosing parameter.

    ``transition()`` calling ``self._transition_in(conn, tid,
    to_state)`` contributes nothing new — every *caller's* site is
    checked and counted separately — so such sites are transparent
    rather than "unknown".
    """
    if not isinstance(expr, ast.Name) or func is None:
        return False
    args = getattr(func, "args", None)
    if args is None:
        return False
    names = {a.arg for a in args.posonlyargs + args.args +
             args.kwonlyargs}
    return expr.id in names


def _state_argument(site) -> Optional[ast.AST]:
    """The state-argument expression of one transition-ish call site.

    Public ``transition(trial_id, state)`` takes the state second;
    the store-internal writers (``_transition_in(conn, trial_id,
    state)``) take it third. A ``to_state=``/``state=`` keyword wins
    either way.
    """
    for keyword in site.call.keywords:
        if keyword.arg in ("to_state", "state"):
            return keyword.value
    index = 2 if site.name in _INTERNAL_FUNCS else 1
    if len(site.call.args) > index:
        return site.call.args[index]
    return None


class _StoreModel:
    """The state machine as declared by the store module."""

    def __init__(self, syms) -> None:
        self.syms = syms
        states = syms.constants.get(STATES_NAME)
        graph = syms.constants.get(GRAPH_NAME)
        self.states: Tuple[str, ...] = tuple(
            states.value) if states is not None and isinstance(
            states.value, tuple) else ()
        self.graph: Dict[str, Tuple[str, ...]] = dict(
            graph.value) if graph is not None and isinstance(
            graph.value, dict) else {}
        self.states_line = states.lineno if states is not None else 1
        self.graph_line = graph.lineno if graph is not None else 1

    @property
    def complete(self) -> bool:
        return bool(self.states) and bool(self.graph)

    @property
    def initial(self) -> Optional[str]:
        return self.states[0] if self.states else None

    def incoming(self) -> Set[str]:
        out: Set[str] = set()
        for targets in self.graph.values():
            out.update(targets)
        return out

    def reachable(self) -> Set[str]:
        seen: Set[str] = set()
        stack = [self.initial] if self.initial else []
        while stack:
            state = stack.pop()
            if state is None or state in seen:
                continue
            seen.add(state)
            stack.extend(t for t in self.graph.get(state, ())
                         if t != state)
        return seen


def _store_sites(project, config: LintConfig, model: _StoreModel,
                 names) -> Iterator:
    """Call sites resolving to the store module's state writers."""
    wanted: Set[str] = set()
    for cls, methods in model.syms.methods.items():
        for method_name, symbol in methods.items():
            if method_name in names:
                wanted.add(symbol.qualified)
    for func_name, symbol in model.syms.functions.items():
        if func_name in names:
            wanted.add(symbol.qualified)
    for site in project.callgraph.sites_named(set(names)):
        if any(target in wanted for target in site.targets):
            yield site


@register
class FsmCallSiteRule(ProjectRule):
    id = "FSM001"
    title = "illegal or raw state argument at a state-machine call site"
    rationale = ("Trial states may only move along the transition graph "
                 "fleet/store.py declares; a call site passing an "
                 "unknown state (or a never-legal target) raises at "
                 "runtime, and raw string literals outside the store "
                 "module bypass the named constants the store exports.")

    def check_project(self, project, config: LintConfig) -> Iterator:
        store = project.find(config.store_path)
        if store is None:
            return
        syms = project.symbols.module_for(store)
        if syms is None:
            return
        model = _StoreModel(syms)
        if not model.complete:
            return
        entered = model.incoming()
        names = tuple(config.fsm_state_funcs) + _INTERNAL_FUNCS
        for site in _store_sites(project, config, model, names):
            expr = _state_argument(site)
            if expr is None:
                continue
            flow = project.dataflow_for(site.source, site.func)
            value = flow.value_of(expr)
            outside_store = site.source.relpath != store.relpath
            if (outside_store and isinstance(expr, ast.Constant) and
                    isinstance(expr.value, str)):
                yield self.finding(
                    site.source.relpath, expr.lineno, expr.col_offset,
                    f"raw state string {expr.value!r} passed to "
                    f"{site.name}(); use the named constant exported "
                    f"by the store module")
            if value.consts is None:
                continue
            for state in sorted(
                    (v for v in value.consts if isinstance(v, str)),
                    key=str):
                if state not in model.states:
                    yield self.finding(
                        site.source.relpath, expr.lineno,
                        expr.col_offset,
                        f"{site.name}() is passed {state!r}, which is "
                        f"not a declared trial state "
                        f"({', '.join(model.states)})")
                elif (site.name in config.fsm_state_funcs and
                        site.name == "transition" and
                        state not in entered):
                    yield self.finding(
                        site.source.relpath, expr.lineno,
                        expr.col_offset,
                        f"transition() to {state!r} can never succeed: "
                        f"no transition-graph edge enters that state")


@register
class FsmGraphRule(ProjectRule):
    id = "FSM002"
    title = "trial state machine declares unreachable or dead states"
    rationale = ("A declared state no edge reaches (or no call site "
                 "ever enters) is dead weight every consumer of the "
                 "state machine — resume reconciliation, reports, "
                 "state_counts — still has to handle; prune it or wire "
                 "it in.")

    def check_project(self, project, config: LintConfig) -> Iterator:
        store = project.find(config.store_path)
        if store is None:
            return
        syms = project.symbols.module_for(store)
        if syms is None:
            return
        model = _StoreModel(syms)
        if not model.complete:
            return

        for state in model.states:
            if state not in model.graph:
                yield self.finding(
                    store.relpath, model.graph_line, 0,
                    f"declared state {state!r} has no entry in the "
                    f"transition graph ({GRAPH_NAME})")
        reachable = model.reachable()
        for state in model.states:
            if state in model.graph and state not in reachable:
                yield self.finding(
                    store.relpath, model.graph_line, 0,
                    f"state {state!r} is unreachable from the initial "
                    f"state {model.initial!r} in the transition graph")

        # States actually entered somewhere in the project.
        names = tuple(config.fsm_state_funcs) + _INTERNAL_FUNCS
        entered: Set[str] = set()
        for site in _store_sites(project, config, model, names):
            expr = _state_argument(site)
            if expr is None:
                continue
            flow = project.dataflow_for(site.source, site.func)
            value = flow.value_of(expr)
            if value.consts is not None:
                entered.update(v for v in value.consts
                               if isinstance(v, str))
            elif not (site.source.relpath == store.relpath and
                      _is_forwarded_param(expr, site.func)):
                # Parameter forwarding is transparent only *inside*
                # the store (every external caller's site is checked
                # and counted separately). Anywhere else an
                # unresolvable state argument may enter anything, so
                # never-entered reporting would be guesswork.
                return
        for state in model.states:
            if state != model.initial and state not in entered:
                yield self.finding(
                    store.relpath, model.states_line, 0,
                    f"state {state!r} is declared but no call site in "
                    f"the project ever enters it")
