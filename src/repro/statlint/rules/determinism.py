"""Determinism rules: wall clocks, unseeded randomness, unordered
iteration.

Every headline number this reproduction regenerates — throughput
tables, coverage curves, bit-identical checkpoint resume — depends on
campaigns being pure functions of their configuration. These rules
turn that convention into a machine check:

* **DET001** — wall-clock reads (``time.time`` and friends) outside
  the one allowlisted measurement shim (``repro.core.walltime``). Host
  time leaking into simulated state makes runs unreproducible.
* **DET002** — unseeded randomness: the stdlib ``random`` module, the
  legacy ``np.random.*`` module-level API (one hidden global stream),
  or ``default_rng()`` called without a seed.
* **DET003** — iterating a ``set`` or ``dict.keys()`` view in modules
  that render or serialize output. Set order depends on
  ``PYTHONHASHSEED`` for str/bytes elements, so reports diff across
  runs; wrap the iterable in ``sorted(...)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..config import LintConfig, path_matches
from ..registry import FileRule, register

#: Wall-clock entry points (DET001). perf_counter/monotonic are also
#: listed: *all* host timing must flow through the shim so there is
#: exactly one place to audit.
WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "datetime.datetime.now",
    "datetime.datetime.utcnow", "datetime.datetime.today",
    "datetime.date.today",
})

#: Legacy numpy module-level random functions backed by a hidden
#: global ``RandomState`` (DET002).
NP_LEGACY_RANDOM = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "bytes", "shuffle", "permutation", "seed",
    "normal", "uniform", "standard_normal", "exponential", "poisson",
    "binomial", "beta", "gamma",
})


@register
class WallClockRule(FileRule):
    id = "DET001"
    title = "wall-clock read outside the measurement shim"
    rationale = ("Simulated results must be a function of configuration "
                 "only; host time may feed nothing but the elapsed-time "
                 "shim in repro.core.walltime.")

    def check_file(self, source, config: LintConfig) -> Iterator:
        if path_matches(source.relpath, config.wallclock_allow):
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            full = source.imports.resolve_call(node)
            if full in WALL_CLOCK_CALLS:
                yield self.finding(
                    source.relpath, node.lineno, node.col_offset,
                    f"wall-clock call {full}() outside the allowlisted "
                    f"shim; use repro.core.walltime (Stopwatch/wall_now)")


def _is_unseeded(call: ast.Call) -> bool:
    """No positional seed and no seed= keyword (or an explicit None)."""
    if call.args:
        first = call.args[0]
        return isinstance(first, ast.Constant) and first.value is None
    for keyword in call.keywords:
        if keyword.arg == "seed":
            return (isinstance(keyword.value, ast.Constant) and
                    keyword.value.value is None)
    return True


@register
class UnseededRandomRule(FileRule):
    id = "DET002"
    title = "unseeded or globally-seeded randomness"
    rationale = ("All randomness must flow through seeded "
                 "np.random.Generator objects so campaigns replay "
                 "bit-identically.")

    def check_file(self, source, config: LintConfig) -> Iterator:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            full = source.imports.resolve_call(node)
            if full is None:
                continue
            if full.startswith("random.") and full.count(".") == 1:
                yield self.finding(
                    source.relpath, node.lineno, node.col_offset,
                    f"stdlib {full}() uses the global random stream; "
                    f"use a seeded np.random.Generator")
            elif (full.startswith("numpy.random.") and
                    full.rsplit(".", 1)[-1] in NP_LEGACY_RANDOM):
                yield self.finding(
                    source.relpath, node.lineno, node.col_offset,
                    f"legacy {full}() draws from numpy's hidden global "
                    f"state; use a seeded np.random.Generator")
            elif (full in ("numpy.random.default_rng",
                           "numpy.random.RandomState") and
                    _is_unseeded(node)):
                yield self.finding(
                    source.relpath, node.lineno, node.col_offset,
                    f"{full}() without a seed is entropy-seeded; pass "
                    f"an explicit seed")


def _is_unordered_iterable(node: ast.AST) -> bool:
    """Set literals/calls and dict-view ``.keys()`` calls."""
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr == "keys":
            return True
    return False


@register
class UnorderedIterationRule(FileRule):
    id = "DET003"
    title = "unordered iteration feeding rendered/serialized output"
    rationale = ("Set iteration order varies with PYTHONHASHSEED; "
                 "output paths must iterate sorted(...) so reports and "
                 "JSON records are byte-stable across runs.")

    def check_file(self, source, config: LintConfig) -> Iterator:
        if not path_matches(source.relpath, config.det003_paths):
            return
        iterables = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.For):
                iterables.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                iterables.extend(gen.iter for gen in node.generators)
        for it in iterables:
            if _is_unordered_iterable(it):
                kind = ("set" if isinstance(it, ast.Set) or (
                    isinstance(it, ast.Call) and
                    isinstance(it.func, ast.Name)) else "dict.keys()")
                yield self.finding(
                    source.relpath, it.lineno, it.col_offset,
                    f"iterating a {kind} in an output path; wrap the "
                    f"iterable in sorted(...) for stable ordering")
