"""Cross-module consistency rules.

These rules read *several* modules and check that hand-maintained
parallel structures have not drifted:

* **SNAP001** — the checkpoint must cover the campaign's mutable
  state. ``repro.fuzzer.checkpoint.snapshot_campaign`` lists campaign
  attributes by hand; ``Campaign.__init__``/``start`` grow new ones
  over time. A field assigned in the campaign but neither captured by
  the snapshot nor declared exempt (``snapshot-exempt`` in
  ``[tool.statlint]``) would silently break bit-identical resume — the
  property PR 2's supervisor relies on. Drift is flagged in *both*
  directions: uncovered mutable fields, and stale exemptions (exempt
  fields that are captured after all, or no longer exist).
* **EXP001** — every experiment module (``fig*``, ``table*``,
  ``extra_*``) must be registered in the runner's ``EXPERIMENTS``
  dict, appear in ``ORDER``, and declare its metadata: a module
  docstring, a top-level ``run`` callable, and an ``EXPERIMENT_ID``
  constant equal to its registry key (what ``--list`` prints).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from ..config import LintConfig
from ..registry import ProjectRule, register


def _class_def(tree: ast.Module, name: str) -> Optional[ast.ClassDef]:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _function_def(tree: ast.Module, name: str):
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef,
                             ast.AsyncFunctionDef)) and node.name == name:
            return node
    return None


def _self_assignments(func) -> Dict[str, int]:
    """``self.<attr>`` assignment targets → first line assigned."""
    out: Dict[str, int] = {}
    targets = []
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            targets.extend((t, node.lineno) for t in node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets.append((node.target, node.lineno))
    for target, lineno in targets:
        if (isinstance(target, ast.Attribute) and
                isinstance(target.value, ast.Name) and
                target.value.id == "self"):
            out.setdefault(target.attr, lineno)
    return out


def _param_attribute_reads(func, param: str) -> Set[str]:
    """First-level attributes read off ``param`` inside ``func``,
    including ``getattr(param, "name", ...)`` forms."""
    reads: Set[str] = set()
    for node in ast.walk(func):
        if (isinstance(node, ast.Attribute) and
                isinstance(node.value, ast.Name) and
                node.value.id == param):
            reads.add(node.attr)
        elif (isinstance(node, ast.Call) and
                isinstance(node.func, ast.Name) and
                node.func.id == "getattr" and len(node.args) >= 2 and
                isinstance(node.args[0], ast.Name) and
                node.args[0].id == param and
                isinstance(node.args[1], ast.Constant)):
            reads.add(str(node.args[1].value))
    return reads


@register
class SnapshotCoverageRule(ProjectRule):
    id = "SNAP001"
    title = "checkpoint snapshot does not cover campaign state"
    rationale = ("snapshot_campaign() lists fields by hand; a Campaign "
                 "attribute it misses breaks bit-identical resume "
                 "silently. Exemptions live in [tool.statlint] "
                 "snapshot-exempt with a justification comment.")

    #: Hard-coded structural names (class/function under diff).
    campaign_class = "Campaign"
    snapshot_function = "snapshot_campaign"

    def check_project(self, project, config: LintConfig) -> Iterator:
        campaign = project.find(config.campaign_path)
        checkpoint = project.find(config.checkpoint_path)
        if campaign is None or checkpoint is None:
            return

        cls = _class_def(campaign.tree, self.campaign_class)
        snap = _function_def(checkpoint.tree, self.snapshot_function)
        if cls is None:
            yield self.finding(
                campaign.relpath, 1, 0,
                f"class {self.campaign_class} not found; SNAP001 "
                f"cannot verify snapshot coverage")
            return
        if snap is None:
            yield self.finding(
                checkpoint.relpath, 1, 0,
                f"function {self.snapshot_function} not found; SNAP001 "
                f"cannot verify snapshot coverage")
            return

        assigned: Dict[str, int] = {}
        for method_name in config.snapshot_methods:
            method = next(
                (n for n in cls.body
                 if isinstance(n, ast.FunctionDef) and
                 n.name == method_name), None)
            if method is not None:
                for attr, lineno in _self_assignments(method).items():
                    assigned.setdefault(attr, lineno)

        param = snap.args.args[0].arg if snap.args.args else "campaign"
        captured = _param_attribute_reads(snap, param)
        exempt = set(config.snapshot_exempt)

        for attr in sorted(assigned):
            if attr in captured or attr in exempt:
                continue
            yield self.finding(
                campaign.relpath, assigned[attr], 0,
                f"mutable campaign field 'self.{attr}' is not captured "
                f"by {self.snapshot_function}() and not declared in "
                f"snapshot-exempt; resume would silently drop it")
        for attr in sorted(exempt & captured):
            yield self.finding(
                checkpoint.relpath, snap.lineno, 0,
                f"snapshot-exempt field {attr!r} IS captured by "
                f"{self.snapshot_function}(); remove the stale "
                f"exemption")
        for attr in sorted(exempt - set(assigned)):
            yield self.finding(
                campaign.relpath, 1, 0,
                f"snapshot-exempt field {attr!r} is never assigned in "
                f"{self.campaign_class}; remove the stale exemption")


def _experiments_registry(tree: ast.Module):
    """Statically read ``EXPERIMENTS = {"name": module.run, ...}``
    and ``ORDER = ("name", ...)`` from the runner module."""
    registry: Dict[str, str] = {}
    order = []
    for node in tree.body:
        if isinstance(node, ast.Assign):
            names = [t.id for t in node.targets
                     if isinstance(t, ast.Name)]
        elif (isinstance(node, ast.AnnAssign) and
                isinstance(node.target, ast.Name) and
                node.value is not None):
            names = [node.target.id]
        else:
            continue
        if "EXPERIMENTS" in names and isinstance(node.value, ast.Dict):
            for key, value in zip(node.value.keys, node.value.values):
                if not isinstance(key, ast.Constant):
                    continue
                if (isinstance(value, ast.Attribute) and
                        isinstance(value.value, ast.Name)):
                    registry[str(key.value)] = value.value.id
        elif "ORDER" in names and isinstance(node.value, (ast.Tuple,
                                                          ast.List)):
            order = [e.value for e in node.value.elts
                     if isinstance(e, ast.Constant)]
    return registry, order


def _module_constant(tree: ast.Module, name: str):
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    if isinstance(node.value, ast.Constant):
                        return node.value.value
    return None


_EXPERIMENT_PATTERNS = ("fig", "table", "extra_")


@register
class ExperimentRegistryRule(ProjectRule):
    id = "EXP001"
    title = "experiment module not registered or missing metadata"
    rationale = ("An experiment outside the runner registry never runs "
                 "in CI and silently rots; EXPERIMENT_ID + docstring + "
                 "run() are the metadata contract the runner and "
                 "--list rely on.")

    def check_project(self, project, config: LintConfig) -> Iterator:
        runner = project.find(config.runner_path)
        if runner is None:
            return
        registry, order = _experiments_registry(runner.tree)
        if not registry:
            yield self.finding(
                runner.relpath, 1, 0,
                "EXPERIMENTS dict not statically readable; EXP001 "
                "cannot verify the registry")
            return
        module_to_key = {mod: key for key, mod in registry.items()}

        runner_dir = "/".join(
            runner.relpath.replace("\\", "/").split("/")[:-1])
        for source in project.files:
            normalized = source.relpath.replace("\\", "/")
            parent, _, filename = normalized.rpartition("/")
            if parent != runner_dir or not filename.endswith(".py"):
                continue
            stem = filename[:-3]
            if not stem.startswith(_EXPERIMENT_PATTERNS):
                continue
            if stem not in module_to_key:
                yield self.finding(
                    source.relpath, 1, 0,
                    f"experiment module {stem!r} is not registered in "
                    f"the runner's EXPERIMENTS dict")
                continue
            key = module_to_key[stem]
            declared = _module_constant(source.tree, "EXPERIMENT_ID")
            if declared is None:
                yield self.finding(
                    source.relpath, 1, 0,
                    f"experiment module {stem!r} does not declare "
                    f"EXPERIMENT_ID (expected {key!r})")
            elif declared != key:
                yield self.finding(
                    source.relpath, 1, 0,
                    f"EXPERIMENT_ID {declared!r} does not match the "
                    f"runner registry key {key!r}")
            if ast.get_docstring(source.tree) is None:
                yield self.finding(
                    source.relpath, 1, 0,
                    f"experiment module {stem!r} has no module "
                    f"docstring (required metadata)")
            if _function_def(source.tree, "run") is None:
                yield self.finding(
                    source.relpath, 1, 0,
                    f"experiment module {stem!r} has no top-level "
                    f"run() entry point")
            if key not in order:
                yield self.finding(
                    runner.relpath, 1, 0,
                    f"experiment {key!r} is registered but missing "
                    f"from ORDER (never runs under 'all')")
        for key in order:
            if key not in registry:
                yield self.finding(
                    runner.relpath, 1, 0,
                    f"ORDER entry {key!r} is not in the EXPERIMENTS "
                    f"registry")
