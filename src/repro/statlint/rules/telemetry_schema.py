"""Whole-program telemetry schema rules (TEL101–TEL103).

``telemetry/events.py`` declares the wire contract (``EVENT_SCHEMA``)
and :func:`make_event` enforces it — *at runtime, inside the run that
emitted the bad event*. A misspelled payload field in a rarely taken
branch (a fault path, a resume path) therefore ships broken and fails
an hour-long campaign instead of CI. These rules move that check to
lint time by resolving every emit site in the project through the call
graph:

1. **base emitters** are ``make_event`` plus every ``emit``
   callable in the telemetry subsystem from which ``make_event`` is
   reachable (sinks' ``emit(event)`` methods take an already-built
   dict and are naturally excluded);
2. **forwarders** are computed as a fixpoint: any function with a
   ``kind`` parameter that calls an emitter or another forwarder
   (``FleetDispatcher._emit``, ``SessionSupervisor._emit``) — this is
   what carries the check through the wrapper layers real code uses;
3. at every call site resolving to one of those, the ``kind`` argument
   is evaluated by constant propagation; sites whose kind is not
   statically known are skipped (never guessed).

* **TEL101** — the emitted kind is not in ``EVENT_SCHEMA``.
* **TEL102** — a payload keyword is not a schema field of that kind.
* **TEL103** — a schema field is missing at a site with a fully
  literal payload (no ``**`` expansion), net of fields the forwarding
  chain itself injects.
* **TEL104** — the consumer-side dual of TEL101: every schema kind
  must be *consumed* by the live aggregator — an ``_on_<kind>``
  handler on ``TelemetryAggregator`` or an explicit entry in its
  ``IGNORED_KINDS`` — so a newly declared event kind cannot silently
  vanish from the dashboard, and stale handlers/ignores are flagged
  when a kind is renamed away.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..config import LintConfig, path_matches
from ..registry import ProjectRule, register

MAKE_EVENT = "make_event"

#: Common-field keywords every emitter accepts besides the payload.
_COMMON = frozenset({"kind", "t", "instance"})


@dataclass
class EmitSite:
    """One emit call with a statically known kind."""

    site: object
    kind: str
    payload: FrozenSet[str]
    #: schema fields the forwarding chain injects downstream.
    provided: FrozenSet[str]
    #: named (non-payload) parameters of the resolved targets.
    reserved: FrozenSet[str]
    #: whether the payload is fully literal (no ``**``/``*``).
    literal: bool


class _TelemetryModel:
    """Schema + resolved emit sites, computed once per project."""

    def __init__(self, project, config: LintConfig) -> None:
        self.schema: Optional[Dict[str, Dict[str, str]]] = None
        self.sites: List[EmitSite] = []
        events = project.find(config.events_path)
        if events is None:
            return
        syms = project.symbols.module_for(events)
        if syms is None:
            return
        schema_symbol = syms.constants.get("EVENT_SCHEMA")
        if schema_symbol is None or not isinstance(
                schema_symbol.value, dict):
            return
        self.schema = {
            str(kind): dict(fields)
            for kind, fields in schema_symbol.value.items()
            if isinstance(fields, dict)}

        graph = project.callgraph
        emitters = self._base_emitters(project, config, syms, graph)
        if not emitters:
            return
        forwarders, provided = self._forwarders(graph, emitters)
        targets = emitters | forwarders
        self._collect_sites(project, graph, targets, provided)

    # -- emitter discovery ---------------------------------------------

    def _base_emitters(self, project, config, events_syms,
                       graph) -> Set[str]:
        """``make_event`` + telemetry ``emit`` callables reaching it."""
        emitters: Set[str] = set()
        make = events_syms.functions.get(MAKE_EVENT)
        if make is None:
            return emitters
        emitters.add(make.qualified)
        for node_id, (source, func) in graph.functions.items():
            if func is None or not node_id.rsplit(
                    ".", 1)[-1] == "emit":
                continue
            if not path_matches(source.relpath, config.telemetry_paths):
                continue
            if make.qualified in graph.reachable([node_id]):
                emitters.add(node_id)
        return emitters

    def _forwarders(self, graph,
                    emitters: Set[str]) -> Tuple[Set[str],
                                                 Dict[str, Set[str]]]:
        """Fixpoint of kind-forwarding wrappers, with injected fields.

        ``provided[node]`` is the set of payload keywords the chain
        below ``node`` passes on its own (a wrapper adding
        ``trial=trial_id`` means its callers need not supply it).
        """
        provided: Dict[str, Set[str]] = {e: set() for e in emitters}
        forwarders: Set[str] = set()
        changed = True
        while changed:
            changed = False
            known = emitters | forwarders
            for node_id, (source, func) in graph.functions.items():
                if func is None or node_id in known:
                    continue
                if not _has_kind_param(func):
                    continue
                inner = [s for s in graph.sites
                         if s.caller == node_id and
                         set(s.targets) & known]
                if not inner:
                    continue
                forwarders.add(node_id)
                injected: Set[str] = set()
                for site in inner:
                    downstream = set()
                    for target in site.targets:
                        downstream |= provided.get(target, set())
                    injected |= downstream | {
                        kw.arg for kw in site.call.keywords
                        if kw.arg is not None and
                        kw.arg not in _COMMON}
                provided[node_id] = injected
                changed = True
        return forwarders, provided

    # -- site collection -----------------------------------------------

    def _collect_sites(self, project, graph, targets: Set[str],
                       provided: Dict[str, Set[str]]) -> None:
        for site in graph.sites:
            resolved = set(site.targets) & targets
            if not resolved:
                continue
            kind_expr = _kind_argument(site.call)
            if kind_expr is None:
                continue
            flow = project.dataflow_for(site.source, site.func)
            value = flow.value_of(kind_expr)
            kind = value.const
            if not isinstance(kind, str):
                continue  # unknown or multi-valued: never guess
            reserved = set(_COMMON)
            injected: Set[str] = set()
            for target in resolved:
                entry = graph.functions.get(target)
                if entry is not None and entry[1] is not None:
                    reserved |= _named_params(entry[1])
                injected |= provided.get(target, set())
            literal = (all(kw.arg is not None
                           for kw in site.call.keywords) and
                       not any(isinstance(a, ast.Starred)
                               for a in site.call.args))
            payload = frozenset(
                kw.arg for kw in site.call.keywords
                if kw.arg is not None and kw.arg not in reserved)
            self.sites.append(EmitSite(
                site=site, kind=kind, payload=payload,
                provided=frozenset(injected),
                reserved=frozenset(reserved), literal=literal))


def _has_kind_param(func: ast.AST) -> bool:
    args = getattr(func, "args", None)
    if args is None:
        return False
    names = [a.arg for a in args.posonlyargs + args.args +
             args.kwonlyargs]
    return "kind" in names


def _named_params(func: ast.AST) -> Set[str]:
    args = func.args
    return {a.arg for a in args.posonlyargs + args.args +
            args.kwonlyargs} - {"self"}


def _kind_argument(call: ast.Call) -> Optional[ast.AST]:
    for kw in call.keywords:
        if kw.arg == "kind":
            return kw.value
    return call.args[0] if call.args else None


def _model(project, config: LintConfig) -> _TelemetryModel:
    """One shared model per project (the three rules split its output)."""
    cached = getattr(project, "_telemetry_model", None)
    if cached is None:
        cached = _TelemetryModel(project, config)
        project._telemetry_model = cached
    return cached


class _TelRule(ProjectRule):
    def check_project(self, project, config: LintConfig) -> Iterator:
        model = _model(project, config)
        if model.schema is None:
            return
        for emit in model.sites:
            yield from self.check_site(emit, model.schema)

    def check_site(self, emit: EmitSite, schema) -> Iterator:
        raise NotImplementedError

    def at(self, emit: EmitSite, message: str):
        call = emit.site.call
        return self.finding(emit.site.source.relpath, call.lineno,
                            call.col_offset, message)


@register
class UnknownKindRule(_TelRule):
    id = "TEL101"
    title = "emit of an event kind absent from EVENT_SCHEMA"
    rationale = ("make_event raises TelemetryError at runtime for an "
                 "undeclared kind — in whatever branch first reaches "
                 "the emit, possibly hours into a campaign; the schema "
                 "is statically readable, so check it here.")

    def check_site(self, emit: EmitSite, schema) -> Iterator:
        if emit.kind not in schema:
            yield self.at(
                emit, f"event kind {emit.kind!r} is not declared in "
                      f"EVENT_SCHEMA ({len(schema)} known kinds)")


@register
class UnknownFieldRule(_TelRule):
    id = "TEL102"
    title = "emit payload field absent from the kind's schema"
    rationale = ("validate_event rejects unexpected fields at runtime; "
                 "a misspelled payload keyword in a rarely taken "
                 "branch ships broken and fails the campaign that "
                 "first hits it.")

    def check_site(self, emit: EmitSite, schema) -> Iterator:
        fields = schema.get(emit.kind)
        if fields is None:
            return
        for name in sorted(emit.payload - set(fields)):
            yield self.at(
                emit, f"{emit.kind!r} events have no field {name!r} "
                      f"(schema: {', '.join(sorted(fields))})")


#: Handler-method prefix TEL104 recognizes on the aggregator class.
_HANDLER_PREFIX = "_on_"
_AGGREGATOR_CLASS = "TelemetryAggregator"
_IGNORED_NAME = "IGNORED_KINDS"


@register
class AggregatorCoverageRule(ProjectRule):
    id = "TEL104"
    title = "EVENT_SCHEMA kind unhandled by the telemetry aggregator"
    rationale = ("The aggregator's constructor raises at runtime when "
                 "a schema kind has neither an _on_<kind> handler nor "
                 "an IGNORED_KINDS entry — i.e. the first time someone "
                 "starts the dashboard after declaring a new event "
                 "kind. Both sides are statically readable, so the "
                 "mismatch (and stale handlers/ignores) fails lint "
                 "instead.")

    def check_project(self, project, config: LintConfig) -> Iterator:
        model = _model(project, config)
        if model.schema is None:
            return
        source = project.find(config.aggregator_path)
        if source is None:
            return
        syms = project.symbols.module_for(source)
        if syms is None:
            return
        relpath = source.relpath
        methods = syms.methods.get(_AGGREGATOR_CLASS, {})
        handlers = {name[len(_HANDLER_PREFIX):]: symbol
                    for name, symbol in methods.items()
                    if name.startswith(_HANDLER_PREFIX)}
        ignored: Tuple[str, ...] = ()
        ignored_line = 1
        ignored_symbol = syms.constants.get(_IGNORED_NAME)
        if ignored_symbol is not None and isinstance(
                ignored_symbol.value, (tuple, list)):
            ignored = tuple(str(k) for k in ignored_symbol.value)
            ignored_line = ignored_symbol.lineno
        class_symbol = syms.classes.get(_AGGREGATOR_CLASS)
        class_line = (class_symbol.lineno
                      if class_symbol is not None else 1)

        for kind in sorted(model.schema):
            if kind in handlers and kind in ignored:
                yield self.finding(
                    relpath, handlers[kind].lineno, 0,
                    f"event kind {kind!r} is both handled "
                    f"({_HANDLER_PREFIX}{kind}) and listed in "
                    f"{_IGNORED_NAME}; pick one")
            elif kind not in handlers and kind not in ignored:
                yield self.finding(
                    relpath, class_line, 0,
                    f"EVENT_SCHEMA kind {kind!r} is neither handled "
                    f"(add {_AGGREGATOR_CLASS}.{_HANDLER_PREFIX}"
                    f"{kind}) nor explicitly ignored (add it to "
                    f"{_IGNORED_NAME})")
        for kind in sorted(handlers):
            if kind not in model.schema:
                yield self.finding(
                    relpath, handlers[kind].lineno, 0,
                    f"handler {_HANDLER_PREFIX}{kind} matches no "
                    f"EVENT_SCHEMA kind (renamed or removed?)")
        for kind in sorted(ignored):
            if kind not in model.schema:
                yield self.finding(
                    relpath, ignored_line, 0,
                    f"{_IGNORED_NAME} entry {kind!r} matches no "
                    f"EVENT_SCHEMA kind (renamed or removed?)")


@register
class MissingFieldRule(_TelRule):
    id = "TEL103"
    title = "emit with a literal payload missing schema fields"
    rationale = ("A fully literal emit site that omits a declared "
                 "field can never produce a valid event; sites using "
                 "**-expansion are skipped (their payload is not "
                 "statically enumerable).")

    def check_site(self, emit: EmitSite, schema) -> Iterator:
        fields = schema.get(emit.kind)
        if fields is None or not emit.literal:
            return
        missing = sorted(set(fields) - emit.payload - emit.provided)
        if missing:
            yield self.at(
                emit, f"{emit.kind!r} emit omits required field(s) "
                      f"{', '.join(repr(m) for m in missing)}")
