"""Telemetry determinism rule (TEL001).

The telemetry subsystem's artifacts are part of the reproduction's
contract: two same-config campaigns must flush byte-identical
``events.jsonl`` / ``fuzzer_stats`` / ``plot_data``, and a resumed
checkpoint must continue the series exactly. That only holds if the
telemetry code itself is a pure function of campaign state, so TEL001
holds every file under ``telemetry-paths`` to a stricter bar than the
general codebase:

* no wall-clock reads at all — not even the ``repro.core.walltime``
  shim (timestamps must come from the virtual clock the campaign
  binds);
* no unseeded randomness (same surface DET002 polices);
* ``json.dump``/``json.dumps`` must pass ``sort_keys=True`` so encoded
  artifacts are independent of dict construction order;
* no iteration over sets or ``dict.keys()`` views anywhere — every
  loop in a sink or renderer is an output path.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..config import LintConfig, path_matches
from ..registry import FileRule, register
from .determinism import (NP_LEGACY_RANDOM, WALL_CLOCK_CALLS,
                          _is_unordered_iterable, _is_unseeded)

#: Keyword that makes a json encode call canonical.
_SORT_KEYS = "sort_keys"


def _sorts_keys(call: ast.Call) -> bool:
    for keyword in call.keywords:
        if keyword.arg == _SORT_KEYS:
            return (isinstance(keyword.value, ast.Constant) and
                    keyword.value.value is True)
        if keyword.arg is None:  # **kwargs: assume the caller knows
            return True
    return False


@register
class TelemetryDeterminismRule(FileRule):
    id = "TEL001"
    title = "non-deterministic construct in the telemetry subsystem"
    rationale = ("Telemetry artifacts must be byte-identical across "
                 "same-config runs and checkpoint resumes; telemetry "
                 "code may not read host time, draw unseeded "
                 "randomness, encode JSON without sort_keys, or "
                 "iterate unordered containers.")

    def check_file(self, source, config: LintConfig) -> Iterator:
        if not path_matches(source.relpath, config.telemetry_paths):
            return
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(source, node)
        for it in _loop_iterables(source.tree):
            if _is_unordered_iterable(it):
                yield self.finding(
                    source.relpath, it.lineno, it.col_offset,
                    "iterating an unordered container in telemetry "
                    "code; wrap the iterable in sorted(...)")

    def _check_call(self, source, node: ast.Call) -> Iterator:
        full = source.imports.resolve_call(node)
        if full is None:
            return
        if full in WALL_CLOCK_CALLS or full == "repro.core.walltime.wall_now":
            yield self.finding(
                source.relpath, node.lineno, node.col_offset,
                f"wall-clock call {full}() in telemetry code; event "
                f"timestamps must come from the campaign's virtual "
                f"clock")
        elif full.startswith("random.") and full.count(".") == 1:
            yield self.finding(
                source.relpath, node.lineno, node.col_offset,
                f"stdlib {full}() in telemetry code; telemetry must "
                f"not draw randomness")
        elif (full.startswith("numpy.random.") and
                full.rsplit(".", 1)[-1] in NP_LEGACY_RANDOM):
            yield self.finding(
                source.relpath, node.lineno, node.col_offset,
                f"legacy {full}() in telemetry code; telemetry must "
                f"not draw from numpy's hidden global state")
        elif (full in ("numpy.random.default_rng",
                       "numpy.random.RandomState") and
                _is_unseeded(node)):
            yield self.finding(
                source.relpath, node.lineno, node.col_offset,
                f"{full}() without a seed in telemetry code")
        elif full in ("json.dumps", "json.dump") and not _sorts_keys(node):
            yield self.finding(
                source.relpath, node.lineno, node.col_offset,
                f"{full}() without sort_keys=True; telemetry artifacts "
                f"must encode with stable key order")


def _loop_iterables(tree: ast.AST):
    for node in ast.walk(tree):
        if isinstance(node, ast.For):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for gen in node.generators:
                yield gen.iter
