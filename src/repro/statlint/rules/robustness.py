"""Robustness rules: silent exception swallows and narrow-int overflow.

* **ERR001** — ``except Exception`` / bare ``except`` whose handler
  neither re-raises nor routes the failure into the
  :mod:`repro.core.errors` taxonomy. Klees et al. single out silently
  divergent runs as the chief fuzzing-evaluation failure; a swallowed
  exception is exactly that. Handlers that construct or raise a
  ``*Error`` (chaining the original as ``__cause__``) pass — that is
  the supervised-fault pattern the parallel session uses.
* **ERR002** — on fleet artifact paths (``err002_paths``): a broad
  ``except`` whose entire body is ``pass``, or a plain
  ``open(..., "w"/"wb")`` write. The crash-safety contract
  (DESIGN.md §10) hangs on artifacts being written atomically
  (:func:`repro.fleet.artifacts.atomic_write_bytes`) and corruption
  being *routed* (quarantine + integrity log), never ignored; a torn
  ``open("w")`` write or a pass-swallowed integrity failure silently
  voids both. Append-mode opens pass (the integrity log is
  append-only by design), as do reads and ``r+b`` (chaos injection).
* **NUM001** — ``+``/``-``/``*`` arithmetic where an operand is a
  ``uint8``/``uint16`` numpy array (map counters, virgin bytes)
  without a widening ``.astype`` on either side. 8-bit counter adds
  wrap at 256; every intentional widening in ``core``/``memsim`` casts
  first (``store[slots].astype(np.int64) + summed``), and this rule
  keeps it that way.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..config import LintConfig, path_matches
from ..registry import FileRule, register

_BROAD = ("Exception", "BaseException")


def _is_broad_handler(handler: ast.ExceptHandler) -> bool:
    node = handler.type
    if node is None:
        return True
    types = node.elts if isinstance(node, ast.Tuple) else [node]
    for t in types:
        if isinstance(t, ast.Name) and t.id in _BROAD:
            return True
    return False


def _handler_routes_error(handler: ast.ExceptHandler) -> bool:
    """Re-raises, or references a ``*Error`` name (taxonomy chaining)."""
    for node in ast.walk(ast.Module(body=handler.body,
                                    type_ignores=[])):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Name) and node.id.endswith("Error"):
            return True
        if isinstance(node, ast.Attribute) and node.attr.endswith("Error"):
            return True
    return False


@register
class BroadExceptRule(FileRule):
    id = "ERR001"
    title = "broad except neither re-raises nor chains an Error"
    rationale = ("A swallowed exception silently diverges the run; "
                 "either re-raise, or wrap into a repro.core.errors "
                 "class (with __cause__) so supervision can account "
                 "for the failure.")

    def check_file(self, source, config: LintConfig) -> Iterator:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                if (_is_broad_handler(handler) and
                        not _handler_routes_error(handler)):
                    caught = ("bare except" if handler.type is None
                              else "except Exception")
                    yield self.finding(
                        source.relpath, handler.lineno,
                        handler.col_offset,
                        f"{caught} swallows the failure; re-raise or "
                        f"chain it into a repro.core.errors class")


def _open_write_mode(node: ast.Call) -> bool:
    """``open(...)`` with a truncating write mode (``w``/``wb``/...)."""
    if not (isinstance(node.func, ast.Name) and node.func.id == "open"):
        return False
    mode: ast.AST = ast.Constant("r")
    if len(node.args) >= 2:
        mode = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    return (isinstance(mode, ast.Constant) and
            isinstance(mode.value, str) and
            mode.value.startswith(("w", "x")))


@register
class FleetArtifactWriteRule(FileRule):
    id = "ERR002"
    title = "pass-swallowed failure or non-atomic write on a fleet path"
    rationale = ("Fleet artifacts must be written atomically "
                 "(atomic_write_bytes: temp + fsync + rename) and "
                 "failures routed (quarantine + integrity log); a "
                 "torn open('w') write or an except:pass on these "
                 "paths silently voids the crash-safety contract.")

    def check_file(self, source, config: LintConfig) -> Iterator:
        if not path_matches(source.relpath, config.err002_paths):
            return
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Try):
                for handler in node.handlers:
                    if (_is_broad_handler(handler) and
                            all(isinstance(stmt, ast.Pass)
                                for stmt in handler.body)):
                        yield self.finding(
                            source.relpath, handler.lineno,
                            handler.col_offset,
                            "broad except with a pass-only body on a "
                            "fleet artifact path; route the failure "
                            "(quarantine/log_integrity) or narrow the "
                            "exception")
            elif isinstance(node, ast.Call) and _open_write_mode(node):
                yield self.finding(
                    source.relpath, node.lineno, node.col_offset,
                    "non-atomic open(..., 'w') on a fleet artifact "
                    "path; a crash mid-write leaves a torn file — use "
                    "atomic_write_bytes/write_artifact")


_SMALL_DTYPES = ("uint8", "uint16", "int8", "int16")
_ARRAY_FACTORIES = ("zeros", "full", "empty", "ones", "zeros_like",
                    "full_like", "empty_like", "ones_like", "array",
                    "frombuffer", "asarray")


def _dtype_is_small(node: ast.AST, imports) -> bool:
    if isinstance(node, ast.Constant) and node.value in _SMALL_DTYPES:
        return True
    full = imports.resolve(node)
    return bool(full) and full.rsplit(".", 1)[-1] in _SMALL_DTYPES


def _is_small_producer(value: ast.AST, imports) -> bool:
    """A call that yields a small-int array: np.zeros(..., dtype=u8),
    arr.astype(np.uint8), ..."""
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Attribute) and func.attr == "astype":
        return any(_dtype_is_small(a, imports) for a in value.args)
    full = imports.resolve(func)
    if full and full.split(".", 1)[0] == "numpy" and \
            full.rsplit(".", 1)[-1] in _ARRAY_FACTORIES:
        for keyword in value.keywords:
            if keyword.arg == "dtype":
                return _dtype_is_small(keyword.value, imports)
    return False


def _target_key(node: ast.AST):
    """Tracking key for assignment targets: `name` or `self.attr`."""
    if isinstance(node, ast.Name):
        return node.id
    if (isinstance(node, ast.Attribute) and
            isinstance(node.value, ast.Name) and node.value.id == "self"):
        return f"self.{node.attr}"
    return None


def _expr_key(node: ast.AST):
    """Tracking key for an operand, looking through subscripts/slices."""
    while isinstance(node, ast.Subscript):
        node = node.value
    return _target_key(node)


def _is_widening_cast(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call) and
            isinstance(node.func, ast.Attribute) and
            node.func.attr == "astype")


@register
class NarrowIntArithmeticRule(FileRule):
    id = "NUM001"
    title = "arithmetic on a narrow-int array without a widening cast"
    rationale = ("uint8/uint16 map counters wrap silently under +/-/*; "
                 "cast with .astype(np.int64) first (saturation or "
                 "wrap must then be applied explicitly).")

    def _collect_small(self, source) -> Set[str]:
        small: Set[str] = set()
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Assign):
                if _is_small_producer(node.value, source.imports):
                    for target in node.targets:
                        key = _target_key(target)
                        if key:
                            small.add(key)
            elif isinstance(node, ast.AnnAssign) and node.value:
                if _is_small_producer(node.value, source.imports):
                    key = _target_key(node.target)
                    if key:
                        small.add(key)
        return small

    def check_file(self, source, config: LintConfig) -> Iterator:
        small = self._collect_small(source)
        if not small:
            return
        arith = (ast.Add, ast.Sub, ast.Mult)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, arith):
                left_small = _expr_key(node.left) in small
                right_small = _expr_key(node.right) in small
                if not (left_small or right_small):
                    continue
                if (_is_widening_cast(node.left) or
                        _is_widening_cast(node.right)):
                    continue
                name = (_expr_key(node.left) if left_small
                        else _expr_key(node.right))
                yield self.finding(
                    source.relpath, node.lineno, node.col_offset,
                    f"arithmetic on narrow-int array {name!r} can "
                    f"overflow; widen with .astype(np.int64) first")
            elif (isinstance(node, ast.AugAssign) and
                    isinstance(node.op, arith) and
                    _expr_key(node.target) in small):
                yield self.finding(
                    source.relpath, node.lineno, node.col_offset,
                    f"in-place arithmetic on narrow-int array "
                    f"{_expr_key(node.target)!r} wraps at the dtype "
                    f"bound; widen or make the policy explicit")
