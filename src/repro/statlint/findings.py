"""Finding records produced by statlint rules.

A :class:`Finding` is one rule violation anchored to a source location.
Findings sort by location so reports are stable regardless of rule
execution order, and they carry status flags rather than being dropped
when silenced: ``suppressed`` (an in-source ``# statlint:`` comment)
and ``baselined`` (grandfathered by the committed ratchet file).
Reporters can therefore show honest totals, and the engine can
distinguish "clean" from "clean because silenced".

Both flags are excluded from equality/ordering: identity is *what is
wrong where*, and status is applied deterministically afterwards (the
engine dedupes before either flag is set, so equal findings can never
disagree on status).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    suppressed: bool = field(default=False, compare=False)
    baselined: bool = field(default=False, compare=False)

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path, "line": self.line, "col": self.col,
            "rule": self.rule, "message": self.message,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Finding":
        return cls(path=str(data["path"]), line=int(data["line"]),
                   col=int(data["col"]), rule=str(data["rule"]),
                   message=str(data["message"]),
                   suppressed=bool(data.get("suppressed", False)),
                   baselined=bool(data.get("baselined", False)))

    def suppress(self) -> "Finding":
        return replace(self, suppressed=True)

    def grandfather(self) -> "Finding":
        return replace(self, baselined=True)


@dataclass
class LintResult:
    """Outcome of one lint run over a set of files."""

    findings: List[Finding]
    n_files: int

    @property
    def active(self) -> List[Finding]:
        """Findings not silenced by a suppression comment."""
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def new(self) -> List[Finding]:
        """Active findings not grandfathered by the baseline."""
        return [f for f in self.findings
                if not f.suppressed and not f.baselined]

    @property
    def grandfathered(self) -> List[Finding]:
        """Active findings covered by the baseline ratchet."""
        return [f for f in self.findings
                if not f.suppressed and f.baselined]

    @property
    def ok(self) -> bool:
        return not self.active
