"""Finding records produced by statlint rules.

A :class:`Finding` is one rule violation anchored to a source location.
Findings sort by location so reports are stable regardless of rule
execution order, and they carry a ``suppressed`` flag rather than being
dropped when silenced — reporters can show suppression counts and the
engine can distinguish "clean" from "clean because suppressed".
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    suppressed: bool = field(default=False, compare=False)

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path, "line": self.line, "col": self.col,
            "rule": self.rule, "message": self.message,
            "suppressed": self.suppressed,
        }

    def suppress(self) -> "Finding":
        return replace(self, suppressed=True)


@dataclass
class LintResult:
    """Outcome of one lint run over a set of files."""

    findings: List[Finding]
    n_files: int

    @property
    def active(self) -> List[Finding]:
        """Findings not silenced by a suppression comment."""
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def ok(self) -> bool:
        return not self.active
