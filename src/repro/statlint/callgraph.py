"""Approximate call graph over the collected project.

Nodes are qualified callables (``repro.fleet.dispatcher.FleetDispatcher
._dispatch``, ``repro.fleet.workers.execute_trial``; module body code
lives under ``<module>``). Edges are *may-call* relations gathered from
one AST pass per file:

* **direct calls** — ``f(...)`` where ``f`` is defined locally or
  resolves through the import table;
* **constructor calls** — ``Cls(...)`` adds an edge to
  ``Cls.__init__`` when one exists;
* **self calls** — ``self.m(...)`` binds to the enclosing class's
  method when it defines one;
* **method calls** — ``obj.m(...)`` binds by method name to *every*
  project class defining ``m`` (class-hierarchy-insensitive: the
  classic cheap over-approximation);
* **function references** — a bare function name passed as an argument
  (``Process(target=_worker_main)``, ``functools.partial(f, x)``,
  ``map(f, xs)``) counts as a potential call of ``f``. This is what
  carries reachability across process-spawn and partial-application
  boundaries.

The over-approximation direction is deliberate: reachability queries
(CONC001's fork-boundary rule) must not miss a path; rules that need
precision filter on the resolved target instead.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .symbols import FUNCTION, CLASS, SymbolTable

#: Pseudo-function holding a module's top-level statements.
MODULE_BODY = "<module>"


@dataclass
class CallSite:
    """One call expression, with everything a rule needs to judge it.

    Attributes:
        caller: qualified node id of the enclosing callable.
        source: the :class:`~repro.statlint.engine.SourceFile`.
        module: the caller's dotted module name.
        call: the ``ast.Call`` node.
        name: the called name's last component (``transition`` for
            ``self.store.transition(...)``).
        targets: qualified node ids the call may resolve to (possibly
            empty for unresolvable calls).
        func: the enclosing function's AST node (``None`` for module
            bodies) — rules run dataflow over it lazily.
    """

    caller: str
    source: object
    module: str
    call: ast.Call
    name: str
    targets: Tuple[str, ...]
    func: Optional[ast.AST]


class CallGraph:
    """Project-wide approximate call graph (see module docstring)."""

    def __init__(self, files, symbols: SymbolTable) -> None:
        self.symbols = symbols
        self.edges: Dict[str, Set[str]] = {}
        self.sites: List[CallSite] = []
        #: method name → qualified node ids of classes defining it.
        self._methods_by_name: Dict[str, List[str]] = {}
        #: qualified node id → (source, func node), for rule dataflow.
        self.functions: Dict[str, Tuple[object, Optional[ast.AST]]] = {}
        self._index_methods()
        for source in files:
            self._build_file(source)

    # -- construction --------------------------------------------------

    def _index_methods(self) -> None:
        for module, syms in sorted(self.symbols.modules.items()):
            for cls, methods in sorted(syms.methods.items()):
                for method in methods.values():
                    self._methods_by_name.setdefault(
                        method.name.rsplit(".", 1)[-1],
                        []).append(method.qualified)

    def _build_file(self, source) -> None:
        syms = self.symbols.module_for(source)
        if syms is None:
            return
        module = syms.module
        # Walk each top-level callable once; nested defs/lambdas are
        # attributed to the enclosing def (a nested function escaping
        # its definer is rare enough to ignore).
        claimed: Set[int] = set()
        for cls_name, methods in sorted(syms.methods.items()):
            for method in methods.values():
                node_id = method.qualified
                self.functions[node_id] = (source, method.node)
                self._walk_callable(node_id, source, module,
                                    method.node, cls_name)
                claimed.add(id(method.node))
        for func in syms.functions.values():
            node_id = func.qualified
            self.functions[node_id] = (source, func.node)
            self._walk_callable(node_id, source, module, func.node, None)
            claimed.add(id(func.node))
        # Module body: everything not inside a claimed callable.
        module_node = f"{module}.{MODULE_BODY}"
        self.functions.setdefault(module_node, (source, None))
        for stmt in source.tree.body:
            if id(stmt) in claimed or isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(stmt, ast.ClassDef):
                continue  # methods claimed above; class body is decl-only
            self._walk_stmts(module_node, source, module, [stmt], None,
                             enclosing_func=None)

    def _walk_callable(self, node_id: str, source, module: str,
                       func: ast.AST, cls: Optional[str]) -> None:
        self._walk_stmts(node_id, source, module, func.body, cls,
                         enclosing_func=func)

    def _walk_stmts(self, node_id: str, source, module: str, stmts,
                    cls: Optional[str], enclosing_func) -> None:
        for stmt in stmts:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    self._record_call(node_id, source, module, node,
                                      cls, enclosing_func)

    def _add_edge(self, caller: str, callee: str) -> None:
        self.edges.setdefault(caller, set()).add(callee)

    def _resolve_symbol_targets(self, module: str,
                                dotted: str) -> Tuple[str, ...]:
        symbol = self.symbols.resolve(module, dotted)
        if symbol is None:
            return ()
        if symbol.kind == FUNCTION:
            return (symbol.qualified,)
        if symbol.kind == CLASS:
            owner = self.symbols.module(symbol.module)
            methods = owner.methods.get(symbol.name, {}) if owner else {}
            init = methods.get("__init__")
            return (init.qualified,) if init is not None \
                else (symbol.qualified,)
        return ()

    def _record_call(self, caller: str, source, module: str,
                     call: ast.Call, cls: Optional[str],
                     enclosing_func) -> None:
        func = call.func
        name: Optional[str] = None
        targets: Tuple[str, ...] = ()
        syms = self.symbols.module(module)

        if isinstance(func, ast.Name):
            name = func.id
            targets = self._resolve_symbol_targets(module, name)
        elif isinstance(func, ast.Attribute):
            name = func.attr
            dotted = _dotted(func)
            if dotted is not None:
                targets = self._resolve_symbol_targets(module, dotted)
            if not targets and _is_self_attr(func) and cls and syms:
                method = syms.methods.get(cls, {}).get(name)
                if method is not None:
                    targets = (method.qualified,)
            if not targets:
                targets = tuple(sorted(
                    self._methods_by_name.get(name, ())))

        if name is None:
            return
        for target in targets:
            self._add_edge(caller, target)

        # Function references escaping as arguments: potential calls.
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            ref = _dotted(arg) if isinstance(
                arg, (ast.Name, ast.Attribute)) else None
            if ref is None:
                continue
            for target in self._resolve_symbol_targets(module, ref):
                self._add_edge(caller, target)

        self.sites.append(CallSite(
            caller=caller, source=source, module=module, call=call,
            name=name, targets=targets, func=enclosing_func))

    # -- queries -------------------------------------------------------

    def callees(self, node: str) -> Set[str]:
        return self.edges.get(node, set())

    def reachable(self, roots: Iterable[str]) -> Set[str]:
        """All nodes reachable from ``roots`` (roots included)."""
        seen: Set[str] = set()
        stack = [r for r in roots]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self.edges.get(node, ()))
        return seen

    def nodes_in_file(self, relpath: str) -> List[str]:
        """Every callable node defined in one file (incl. module body)."""
        suffix = relpath.replace("\\", "/")
        out = []
        for node_id, (source, _func) in sorted(self.functions.items()):
            normalized = source.relpath.replace("\\", "/")
            if normalized == suffix or normalized.endswith("/" + suffix):
                out.append(node_id)
        return out

    def sites_named(self, names) -> List[CallSite]:
        """Call sites whose called name is in ``names`` (set-like)."""
        return [site for site in self.sites if site.name in names]

    def sites_targeting(self, target_suffixes) -> List[CallSite]:
        """Call sites resolving to a target ending in any suffix."""
        out = []
        for site in self.sites:
            for target in site.targets:
                if any(target == s or target.endswith("." + s)
                       for s in target_suffixes):
                    out.append(site)
                    break
        return out


def _dotted(node: ast.AST) -> Optional[str]:
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _is_self_attr(func: ast.Attribute) -> bool:
    return isinstance(func.value, ast.Name) and func.value.id == "self"
