"""SARIF 2.1.0 renderer for statlint results.

SARIF is the interchange format CI code-scanning UIs ingest (GitHub
surfaces it as inline PR annotations). One run object carries the full
rule catalog — id, short/full description, default severity level —
and one result per finding:

* suppressed findings are included with an ``inSource`` suppression
  record (so the UI shows them struck through, and totals reconcile
  with the human report instead of silently shrinking);
* when a baseline was applied, each result carries ``baselineState``
  (``new`` vs ``unchanged``), which is exactly the axis the exit-code
  contract ratchets on.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .engine import SYNTAX
from .findings import Finding, LintResult
from .registry import RULES

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

#: ``severity`` attribute → SARIF ``level``.
_LEVELS = {"error": "error", "warning": "warning", "note": "note"}


def _rule_catalog(result: LintResult) -> List[dict]:
    """Rules array: every registered rule, plus SYNTAX if it fired."""
    catalog = []
    for rule_id in sorted(RULES):
        cls = RULES[rule_id]
        catalog.append({
            "id": rule_id,
            "shortDescription": {"text": cls.title},
            "fullDescription": {"text": cls.rationale},
            "defaultConfiguration": {
                "level": _LEVELS.get(cls.severity, "error")},
        })
    if any(f.rule == SYNTAX for f in result.findings):
        catalog.append({
            "id": SYNTAX,
            "shortDescription": {"text": "file does not parse"},
            "defaultConfiguration": {"level": "error"},
        })
    return catalog


def _result(finding: Finding, rule_index: Dict[str, int],
            baseline_used: bool) -> dict:
    cls = RULES.get(finding.rule)
    level = _LEVELS.get(cls.severity, "error") if cls else "error"
    out = {
        "ruleId": finding.rule,
        "ruleIndex": rule_index[finding.rule],
        "level": level,
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": finding.path,
                    "uriBaseId": "SRCROOT",
                },
                "region": {
                    "startLine": max(finding.line, 1),
                    "startColumn": finding.col + 1,
                },
            },
        }],
        "suppressions": ([{"kind": "inSource"}]
                         if finding.suppressed else []),
    }
    if baseline_used and not finding.suppressed:
        out["baselineState"] = ("unchanged" if finding.baselined
                                else "new")
    return out


def render_sarif(result: LintResult, *,
                 baseline_used: bool = False) -> str:
    catalog = _rule_catalog(result)
    rule_index = {entry["id"]: i for i, entry in enumerate(catalog)}
    run = {
        "tool": {
            "driver": {
                "name": "statlint",
                "informationUri":
                    "https://example.invalid/repro/statlint",
                "rules": catalog,
            },
        },
        "originalUriBaseIds": {"SRCROOT": {"uri": "file:///./"}},
        "results": [_result(f, rule_index, baseline_used)
                    for f in result.findings],
    }
    return json.dumps({
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [run],
    }, indent=2, sort_keys=True)
