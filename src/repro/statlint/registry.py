"""Rule base classes and the global rule registry.

Rules come in two granularities:

* :class:`FileRule` — sees one parsed module at a time (the
  determinism and robustness family);
* :class:`ProjectRule` — sees every collected module at once and can
  cross-check them (snapshot coverage, experiment registry).

Registration is declarative: subclass one of the bases and decorate
with :func:`register`. The engine instantiates each enabled rule once
per run, so rules must be stateless across files.
"""

from __future__ import annotations

from typing import Dict, Iterator, Type

from .findings import Finding


class Rule:
    """Common interface: an id, a one-line title, and a rationale.

    ``severity`` feeds the SARIF ``level`` property: ``error`` for
    violations of a hard contract, ``warning`` for hot-path efficiency
    hazards that are legal but wasteful.
    """

    id: str = ""
    title: str = ""
    rationale: str = ""
    severity: str = "error"

    def finding(self, path: str, line: int, col: int,
                message: str) -> Finding:
        return Finding(path=path, line=line, col=col, rule=self.id,
                       message=message)


class FileRule(Rule):
    """A rule evaluated independently on each source file."""

    def check_file(self, source, config) -> Iterator[Finding]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule evaluated once over the whole collected file set."""

    def check_project(self, project, config) -> Iterator[Finding]:
        raise NotImplementedError


RULES: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in RULES:
        raise ValueError(f"duplicate rule id {cls.id}")
    RULES[cls.id] = cls
    return cls


def all_rule_ids() -> list:
    return sorted(RULES)
