"""Small intraprocedural dataflow framework.

One forward pass per function, in statement order, propagating two
abstract properties the whole-program rules need:

* **constant sets** — the set of literal values a local may hold at a
  use site (bounded; degrades to unknown beyond
  :data:`MAX_CONST_SET`). This is what lets FSM001 check
  ``state = QUARANTINED if quarantined else LOST;
  store.transition(tid, state)`` — the argument's possible values are
  ``{"quarantined", "lost"}`` even though it is not a single literal.
* **numpy dtypes** — array dtypes inferred from factory calls
  (``np.zeros(..., dtype=np.uint8)``), ``.astype`` casts, arithmetic
  promotion (via ``np.promote_types``), and the dtype behavior of the
  reductions the NUM1xx rules police (``np.bincount`` with ``weights``
  accumulates in float64; ``np.sum`` of narrow ints widens to the
  platform word).

Branches are joined conservatively (values agreeing on both arms
survive; disagreements keep the *union* of constants up to the bound,
and the *promoted* dtype when both are known). Loops get a single pass:
a binding rebound inside a loop body joins with its pre-loop value,
which is sound for the rules built on top — they only act on *known*
facts and treat anything else as unknown.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Optional, Tuple

import numpy as np

#: Constant-set bound before degrading to unknown.
MAX_CONST_SET = 4

#: Dtypes the NUM1xx rules consider overflow-prone under arithmetic.
NARROW_INT_DTYPES = ("int8", "int16", "uint8", "uint16")

#: Dtypes whose reductions accumulate platform-dependently without an
#: explicit ``dtype=`` (numpy widens to the platform word).
SMALL_SUM_DTYPES = NARROW_INT_DTYPES + ("int32", "uint32", "bool")

#: numpy array factories whose ``dtype=`` keyword fixes the result.
ARRAY_FACTORIES = frozenset({
    "zeros", "ones", "empty", "full", "array", "asarray", "arange",
    "frombuffer", "fromiter", "zeros_like", "ones_like", "empty_like",
    "full_like", "linspace",
})

#: Factories that default to float64 when ``dtype=`` is omitted.
_FLOAT64_DEFAULT = frozenset({"zeros", "ones", "empty", "full", "linspace"})

#: numpy calls returning platform-word index arrays (``intp``).
_INTP_RETURNS = frozenset({
    "argsort", "argmin", "argmax", "flatnonzero", "nonzero",
    "searchsorted", "where", "lexsort", "digitize",
})

#: Elementwise/structural ops preserving their first operand's dtype.
_PRESERVING = frozenset({
    "diff", "repeat", "sort", "unique", "copy", "ravel", "reshape",
    "ascontiguousarray", "atleast_1d", "roll", "flip", "tile",
})

#: Binary ufuncs promoting their operand dtypes.
_PROMOTING = frozenset({
    "minimum", "maximum", "add", "subtract", "multiply", "mod",
    "fmin", "fmax", "hypot", "concatenate",
})


@dataclass(frozen=True)
class Value:
    """Abstract value of an expression.

    Attributes:
        consts: possible literal values, when statically known (a
            bounded frozenset); ``None`` means unknown.
        dtype: numpy dtype name for array(-producing) expressions;
            ``None`` means unknown / not an array.
        is_array: whether the expression is known to be a numpy array
            (as opposed to a numpy scalar or python value).
    """

    consts: Optional[FrozenSet[object]] = None
    dtype: Optional[str] = None
    is_array: bool = False

    @property
    def const(self) -> Optional[object]:
        """The single known constant, when exactly one is possible."""
        if self.consts is not None and len(self.consts) == 1:
            return next(iter(self.consts))
        return None

    @classmethod
    def of_const(cls, value: object) -> "Value":
        try:
            return cls(consts=frozenset([value]))
        except TypeError:
            return UNKNOWN

    @classmethod
    def of_dtype(cls, dtype: Optional[str],
                 is_array: bool = True) -> "Value":
        return cls(dtype=dtype, is_array=is_array)


UNKNOWN = Value()


def join(a: Value, b: Value) -> Value:
    """Least upper bound of two abstract values."""
    if a is UNKNOWN and b is UNKNOWN:
        return UNKNOWN
    consts: Optional[FrozenSet[object]] = None
    if a.consts is not None and b.consts is not None:
        merged = a.consts | b.consts
        if len(merged) <= MAX_CONST_SET:
            consts = merged
    dtype = None
    if a.dtype is not None and b.dtype is not None:
        dtype = a.dtype if a.dtype == b.dtype else promote(a.dtype, b.dtype)
    return Value(consts=consts, dtype=dtype,
                 is_array=a.is_array and b.is_array)


def promote(a: str, b: str) -> Optional[str]:
    """Promoted dtype name per numpy's rules (None when not promotable)."""
    try:
        return np.promote_types(a, b).name
    except TypeError:
        return None


def _dtype_name(node: ast.AST, imports,
                env: Optional[Dict[str, Value]] = None) -> Optional[str]:
    """Dtype named by an expression used as a ``dtype=`` argument."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            return np.dtype(node.value).name
        except TypeError:
            return None
    full = imports.resolve(node)
    if full:
        leaf = full.rsplit(".", 1)[-1]
        root = full.split(".", 1)[0]
        if root in ("numpy", "np") or full.startswith("numpy."):
            try:
                return np.dtype(leaf).name
            except TypeError:
                return None
    if isinstance(node, ast.Name):
        # ``int``/``float`` builtins as dtype arguments.
        if node.id in ("int", "bool"):
            return np.dtype(node.id).name
        if node.id == "float":
            return "float64"
        if env is not None:
            value = env.get(node.id)
            if value is not None and isinstance(value.const, str):
                try:
                    return np.dtype(value.const).name
                except TypeError:
                    return None
    return None


def _call_keyword(call: ast.Call, name: str) -> Optional[ast.AST]:
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


class FunctionDataflow:
    """One function's abstract environments, computed on construction.

    ``value_of(node)`` returns the :class:`Value` inferred for an
    expression node visited during the pass (identity-keyed), and
    ``env_at`` holds the environment *after* the whole body — useful
    for tests. ``imports`` is the module's
    :class:`~repro.statlint.imports.ImportMap`; ``symbols`` /
    ``module`` (optional) let ``Name`` loads fall back to project-wide
    constants, so ``transition(tid, DISPATCHED)`` resolves through an
    import to the defining module's literal.
    """

    def __init__(self, func: ast.AST, imports, *, symbols=None,
                 module: Optional[str] = None) -> None:
        self.imports = imports
        self.symbols = symbols
        self.module = module
        self._values: Dict[int, Value] = {}
        env: Dict[str, Value] = {}
        body = getattr(func, "body", None) or []
        self.env_at = self._exec_block(body, env)

    # -- public --------------------------------------------------------

    def value_of(self, node: ast.AST) -> Value:
        cached = self._values.get(id(node))
        if cached is not None:
            return cached
        # Expression outside any visited statement (defensive): evaluate
        # against the final environment.
        return self._eval(node, self.env_at)

    # -- statement walk ------------------------------------------------

    def _exec_block(self, body, env: Dict[str, Value]) -> Dict[str, Value]:
        for stmt in body:
            env = self._exec_stmt(stmt, env)
        return env

    def _join_env(self, a: Dict[str, Value],
                  b: Dict[str, Value]) -> Dict[str, Value]:
        out: Dict[str, Value] = {}
        for name in set(a) | set(b):
            out[name] = join(a.get(name, UNKNOWN), b.get(name, UNKNOWN))
        return out

    def _exec_stmt(self, stmt: ast.stmt,
                   env: Dict[str, Value]) -> Dict[str, Value]:
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, env)
            env = dict(env)
            for target in stmt.targets:
                self._bind(target, value, env)
            return env
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            value = self._eval(stmt.value, env)
            env = dict(env)
            self._bind(stmt.target, value, env)
            return env
        if isinstance(stmt, ast.AugAssign):
            self._eval(ast.BinOp(left=stmt.target, op=stmt.op,
                                 right=stmt.value), env)
            self._eval(stmt.value, env)
            env = dict(env)
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = UNKNOWN
            return env
        if isinstance(stmt, ast.If):
            self._eval(stmt.test, env)
            then_env = self._exec_block(stmt.body, dict(env))
            else_env = self._exec_block(stmt.orelse, dict(env))
            return self._join_env(then_env, else_env)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_value = self._eval(stmt.iter, env)
            loop_env = dict(env)
            # The loop variable holds elements of the iterable: keep
            # the dtype (iterating an array yields its scalars/rows).
            self._bind(stmt.target,
                       Value(dtype=iter_value.dtype), loop_env)
            body_env = self._exec_block(stmt.body, loop_env)
            after = self._join_env(env, body_env)
            return self._exec_block(stmt.orelse, after)
        if isinstance(stmt, ast.While):
            self._eval(stmt.test, env)
            body_env = self._exec_block(stmt.body, dict(env))
            after = self._join_env(env, body_env)
            return self._exec_block(stmt.orelse, after)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            env = dict(env)
            for item in stmt.items:
                self._eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, UNKNOWN, env)
            return self._exec_block(stmt.body, env)
        if isinstance(stmt, ast.Try):
            body_env = self._exec_block(stmt.body, dict(env))
            joined = self._join_env(env, body_env)
            for handler in stmt.handlers:
                handler_env = dict(joined)
                if handler.name:
                    handler_env[handler.name] = UNKNOWN
                joined = self._join_env(
                    joined, self._exec_block(handler.body, handler_env))
            joined = self._exec_block(stmt.orelse, joined)
            return self._exec_block(stmt.finalbody, joined)
        if isinstance(stmt, (ast.Return, ast.Expr)):
            if stmt.value is not None:
                self._eval(stmt.value, env)
            return env
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            env = dict(env)
            env[stmt.name] = UNKNOWN
            return env
        if isinstance(stmt, ast.Assert):
            self._eval(stmt.test, env)
            return env
        if isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc, env)
            return env
        if isinstance(stmt, ast.Delete):
            env = dict(env)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
            return env
        return env

    def _bind(self, target: ast.AST, value: Value,
              env: Dict[str, Value]) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, UNKNOWN, env)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, UNKNOWN, env)
        # Attribute/subscript targets are not tracked (aliasing).

    # -- expression evaluation -----------------------------------------

    def _remember(self, node: ast.AST, value: Value) -> Value:
        self._values[id(node)] = value
        return value

    def _eval(self, node: ast.AST, env: Dict[str, Value]) -> Value:
        value = self._eval_inner(node, env)
        return self._remember(node, value)

    def _eval_inner(self, node: ast.AST,
                    env: Dict[str, Value]) -> Value:
        if isinstance(node, ast.Constant):
            return Value.of_const(node.value)
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            if self.symbols is not None and self.module is not None:
                known, const = self.symbols.constant_value(
                    self.module, node.id)
                if known:
                    return Value.of_const(const)
            return UNKNOWN
        if isinstance(node, ast.Attribute):
            self._eval(node.value, env)
            if self.symbols is not None and self.module is not None:
                dotted = _dotted_name(node)
                if dotted is not None:
                    known, const = self.symbols.constant_value(
                        self.module, dotted)
                    if known:
                        return Value.of_const(const)
            return UNKNOWN
        if isinstance(node, ast.IfExp):
            self._eval(node.test, env)
            return join(self._eval(node.body, env),
                        self._eval(node.orelse, env))
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, env)
            right = self._eval(node.right, env)
            return self._eval_binop(node, left, right)
        if isinstance(node, ast.UnaryOp):
            operand = self._eval(node.operand, env)
            if isinstance(node.op, ast.USub) and isinstance(
                    operand.const, (int, float)):
                return Value.of_const(-operand.const)
            return Value(dtype=operand.dtype, is_array=operand.is_array)
        if isinstance(node, ast.BoolOp):
            values = [self._eval(v, env) for v in node.values]
            out = values[0]
            for value in values[1:]:
                out = join(out, value)
            return out
        if isinstance(node, ast.Compare):
            self._eval(node.left, env)
            for comparator in node.comparators:
                self._eval(comparator, env)
            operand = self._eval_first_array(
                [node.left, *node.comparators], env)
            if operand is not None:
                return Value.of_dtype("bool")
            return UNKNOWN
        if isinstance(node, ast.Subscript):
            value = self._eval(node.value, env)
            self._eval(node.slice, env)
            # Indexing/slicing an array keeps its dtype.
            return Value(dtype=value.dtype, is_array=value.is_array)
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for elt in node.elts:
                self._eval(elt, env)
            return UNKNOWN
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    self._eval(key, env)
            for value in node.values:
                self._eval(value, env)
            return UNKNOWN
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            for gen in node.generators:
                self._eval(gen.iter, env)
            return UNKNOWN
        if isinstance(node, ast.JoinedStr):
            return UNKNOWN
        if isinstance(node, ast.Starred):
            return self._eval(node.value, env)
        return UNKNOWN

    def _eval_first_array(self, nodes, env) -> Optional[Value]:
        for node in nodes:
            value = self._values.get(id(node)) or self._eval(node, env)
            if value.dtype is not None:
                return value
        return None

    def _eval_binop(self, node: ast.BinOp, left: Value,
                    right: Value) -> Value:
        # Python-constant folding for +/-/* on numbers and + on str.
        if left.const is not None and right.const is not None:
            try:
                if isinstance(node.op, ast.Add):
                    return Value.of_const(left.const + right.const)
                if isinstance(node.op, ast.Sub):
                    return Value.of_const(left.const - right.const)
                if isinstance(node.op, ast.Mult):
                    return Value.of_const(left.const * right.const)
            except TypeError:
                return UNKNOWN
        if left.dtype is None and right.dtype is None:
            return UNKNOWN
        if isinstance(node.op, (ast.Div,)):
            # True division always yields a float dtype.
            base = promote(left.dtype or "int64", right.dtype or "int64")
            result = promote(base or "float64", "float64")
            return Value(dtype=result,
                         is_array=left.is_array or right.is_array)
        dtypes = []
        for operand in (left, right):
            if operand.dtype is not None:
                dtypes.append(operand.dtype)
            elif isinstance(operand.const, bool):
                dtypes.append("bool")
            elif isinstance(operand.const, int):
                # NEP 50: python ints adopt the array operand's dtype.
                continue
            elif isinstance(operand.const, float):
                dtypes.append("float64")
            else:
                return Value(is_array=left.is_array or right.is_array)
        result = dtypes[0]
        for other in dtypes[1:]:
            result = promote(result, other)
            if result is None:
                return UNKNOWN
        return Value(dtype=result,
                     is_array=left.is_array or right.is_array)

    def _eval_call(self, node: ast.Call,
                   env: Dict[str, Value]) -> Value:
        for arg in node.args:
            self._eval(arg, env)
        for keyword in node.keywords:
            self._eval(keyword.value, env)

        # Module-qualified numpy calls first: ``np.zeros(...)`` is an
        # ``Attribute`` call too, and must not fall into the method
        # branch below (which would see an unknown owner and give up).
        full = self.imports.resolve_call(node)
        if full is not None and full.startswith("numpy"):
            return self._eval_numpy_call(node, full, env)

        func = node.func
        # method calls: arr.astype(...), arr.copy(), arr.sum(...) ...
        if isinstance(func, ast.Attribute):
            owner = self._eval(func.value, env)
            if func.attr == "astype":
                dtype = None
                if node.args:
                    dtype = _dtype_name(node.args[0], self.imports, env)
                else:
                    keyword = _call_keyword(node, "dtype")
                    if keyword is not None:
                        dtype = _dtype_name(keyword, self.imports, env)
                return Value.of_dtype(dtype)
            if func.attr in ("copy", "ravel", "reshape", "view",
                            "flatten", "squeeze"):
                return Value(dtype=owner.dtype, is_array=owner.is_array)
            if func.attr in ("sum", "cumsum", "prod"):
                return self._reduction_dtype(node, owner, env)
            if func.attr in ("min", "max", "item"):
                return Value(dtype=owner.dtype, is_array=False)
            return UNKNOWN
        return UNKNOWN

    def _eval_numpy_call(self, node: ast.Call, full: str,
                         env: Dict[str, Value]) -> Value:
        leaf = full.rsplit(".", 1)[-1]
        if leaf in ARRAY_FACTORIES:
            keyword = _call_keyword(node, "dtype")
            if keyword is not None:
                return Value.of_dtype(
                    _dtype_name(keyword, self.imports, env))
            if leaf in _FLOAT64_DEFAULT:
                return Value.of_dtype("float64")
            if leaf.endswith("_like") and node.args:
                template = self._values.get(id(node.args[0]), UNKNOWN)
                return Value.of_dtype(template.dtype)
            return Value.of_dtype(None)
        # np.uint8(x) and friends: scalar/array cast constructors.
        try:
            cast = np.dtype(leaf).name
        except TypeError:
            cast = None
        if cast is not None:
            return Value.of_dtype(cast, is_array=False)
        if leaf in _INTP_RETURNS:
            return Value.of_dtype("intp")
        if leaf == "bincount":
            if _call_keyword(node, "weights") is not None or \
                    len(node.args) >= 2:
                return Value.of_dtype("float64")
            return Value.of_dtype("intp")
        if leaf in ("sum", "cumsum", "prod"):
            operand = (self._values.get(id(node.args[0]), UNKNOWN)
                       if node.args else UNKNOWN)
            return self._reduction_dtype(node, operand, env)
        if leaf in _PRESERVING:
            operand = (self._values.get(id(node.args[0]), UNKNOWN)
                       if node.args else UNKNOWN)
            return Value(dtype=operand.dtype, is_array=True)
        if leaf in _PROMOTING:
            dtypes = [self._values.get(id(a), UNKNOWN).dtype
                      for a in node.args]
            dtypes = [d for d in dtypes if d is not None]
            if len(dtypes) == len(node.args) and dtypes:
                result = dtypes[0]
                for other in dtypes[1:]:
                    result = promote(result, other)
                return Value.of_dtype(result)
            return Value.of_dtype(None)
        return UNKNOWN

    def _reduction_dtype(self, node: ast.Call, operand: Value,
                         env: Dict[str, Value]) -> Value:
        keyword = _call_keyword(node, "dtype")
        if keyword is not None:
            return Value.of_dtype(
                _dtype_name(keyword, self.imports, env), is_array=False)
        if operand.dtype is None:
            return UNKNOWN
        if operand.dtype in SMALL_SUM_DTYPES:
            # numpy widens small-int reductions to the platform word.
            widened = "intp" if operand.dtype != "bool" else "intp"
            return Value.of_dtype(widened, is_array=False)
        return Value.of_dtype(operand.dtype, is_array=False)


def _dotted_name(node: ast.AST) -> Optional[str]:
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def analyze_function(func: ast.AST, imports, *, symbols=None,
                     module: Optional[str] = None) -> FunctionDataflow:
    """Convenience constructor (the rules' entry point)."""
    return FunctionDataflow(func, imports, symbols=symbols, module=module)
