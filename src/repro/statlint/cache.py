"""Content-hash incremental cache for ``--changed-only`` runs.

The cache stores, per file, the sha256 of its source and the file-rule
findings the last run produced for it. On an incremental run the
engine still *parses* everything (project rules need the whole symbol
table either way — parsing is the cheap part), but:

* file rules re-run only on files whose content hash changed (or that
  are new); unchanged files replay their cached findings;
* project rules re-run whenever anything changed at all — they are
  cross-file by definition, so per-file reuse would be unsound;
* when *nothing* changed (same files, same hashes, same config), the
  entire cached result — project findings included — is replayed
  without executing a single rule.

The cache is keyed on a config fingerprint: any configuration change
invalidates it wholesale. It is a pure accelerator — deleting the file
is always safe — and lives untracked next to the baseline
(``.statlint-cache.json``, gitignored).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from .config import LintConfig
from .findings import Finding

CACHE_VERSION = 1
CACHE_FILENAME = ".statlint-cache.json"


def config_fingerprint(config: LintConfig) -> str:
    """Stable digest of the effective configuration."""
    return hashlib.sha256(repr(config).encode("utf-8")).hexdigest()


@dataclass
class LintCache:
    """Last run's per-file findings keyed by content hash."""

    config_key: str = ""
    #: relpath → {"hash": sha256, "findings": [finding dict, ...]}
    files: Dict[str, dict] = field(default_factory=dict)
    #: whole-program findings of the last complete run.
    project_findings: List[dict] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path) -> "LintCache":
        """Read a cache file; anything unusable degrades to empty."""
        path = Path(path)
        if not path.is_file():
            return cls()
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return cls()
        if (not isinstance(data, dict) or
                data.get("version") != CACHE_VERSION):
            return cls()
        return cls(
            config_key=str(data.get("config_key", "")),
            files={str(k): v for k, v in data.get("files", {}).items()
                   if isinstance(v, dict)},
            project_findings=list(data.get("project_findings", [])))

    def save(self, path: Path) -> None:
        payload = {
            "version": CACHE_VERSION,
            "config_key": self.config_key,
            "files": {k: self.files[k] for k in sorted(self.files)},
            "project_findings": self.project_findings,
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")

    # -- queries -------------------------------------------------------

    def valid_for(self, config: LintConfig) -> bool:
        return self.config_key == config_fingerprint(config)

    def cached_findings(self, relpath: str,
                        content_hash: str) -> Optional[List[Finding]]:
        """File-rule findings for an unchanged file, else ``None``."""
        entry = self.files.get(relpath)
        if entry is None or entry.get("hash") != content_hash:
            return None
        return [Finding.from_dict(d) for d in entry.get("findings", [])]

    def cached_project_findings(self) -> List[Finding]:
        return [Finding.from_dict(d) for d in self.project_findings]

    # -- updates -------------------------------------------------------

    def record_file(self, relpath: str, content_hash: str,
                    findings: List[Finding]) -> None:
        self.files[relpath] = {
            "hash": content_hash,
            "findings": [f.as_dict() for f in sorted(findings)],
        }

    def record_project(self, findings: List[Finding]) -> None:
        self.project_findings = [f.as_dict()
                                 for f in sorted(findings)]

    def prune_to(self, relpaths) -> None:
        """Drop entries for files no longer collected (deleted/moved)."""
        keep = set(relpaths)
        for stale in [k for k in self.files if k not in keep]:
            del self.files[stale]
