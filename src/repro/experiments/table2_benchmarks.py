"""Table II: benchmark characteristics.

Reports, for the 19 benchmarks: seed-corpus size, discoverable edges,
the 64 kB collision rate (Equation 1 on the discoverable-edge count,
matching the paper's footnote 2), and static edges. At ``scale=1.0``
the numbers match the paper's table by construction (they parameterize
the generator); the harness also *measures* the discoverable count on
the materialized program to show construction and measurement agree.
"""

from __future__ import annotations

from typing import List

from ..analysis.collision import collision_rate
from ..analysis.reporting import render_table
from ..target import TABLE2_BENCHMARKS, generate_program
from .common import Profile, get_profile

#: Runner registry id for this experiment (statlint EXP001 keeps the
#: module, the registry and ORDER consistent).
EXPERIMENT_ID = "table2"


def compute(profile: Profile) -> List[dict]:
    rows = []
    for config in TABLE2_BENCHMARKS:
        spec = config.spec(profile.scale)
        program = generate_program(spec)
        measured = int(program.practically_discoverable_mask().sum())
        configured = config.discovered_edges
        scaled = int(round(configured * profile.scale))
        rows.append({
            "benchmark": config.name,
            "n_seeds": config.n_seeds,
            "discovered_edges": configured,
            "measured_discoverable": measured,
            "scaled_target": scaled,
            "collision_rate_64k": 100.0 * collision_rate(1 << 16,
                                                         configured),
            "static_edges": config.static_edges,
            "version": config.version,
        })
    return rows


def run(profile: Profile) -> str:
    rows = compute(profile)
    table_rows = [[r["benchmark"], r["n_seeds"], r["discovered_edges"],
                   f"{r['collision_rate_64k']:.2f}", r["static_edges"],
                   r["version"], r["measured_discoverable"]]
                  for r in rows]
    report = render_table(
        ["Benchmark", "Seeds", "Discovered edges¹", "Collision %²",
         "Static edges", "Version", f"Materialized@{profile.scale:g}"],
        table_rows,
        title="Table II — benchmark characteristics "
              "(¹ paper value = generator target; ² Equation 1, 64 kB)")
    report += ("\n\nPaper checkpoints: sqlite3 25.64%, instcombine "
               "56.90% collision at 64 kB; measured: "
               f"sqlite3 {100 * collision_rate(1 << 16, 40_948):.2f}%, "
               f"instcombine {100 * collision_rate(1 << 16, 131_677):.2f}%.")
    return report


def main() -> None:
    print(run(get_profile("default")))


if __name__ == "__main__":
    main()
