"""Figure 6: test-case generation throughput, AFL vs BigMap, 4 map sizes.

The paper's headline: AFL collapses as the map grows (4,400/s at 64 kB
to 125/s at 8 MB on average) while BigMap stays flat; average speedups
0.98x / 1.4x / 4.5x / 33.1x for 64 kB / 256 kB / 2 MB / 8 MB.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.reporting import render_table
from ..analysis.throughput import arithmetic_mean
from ..target import TABLE2_BENCHMARKS
from .common import (MAP_SIZE_LABELS, MAP_SIZES, PAPER_FIG6_AVG_SPEEDUPS,
                     BenchmarkCache, Profile, get_profile,
                     throughput_probe)

#: Runner registry id for this experiment (statlint EXP001 keeps the
#: module, the registry and ORDER consistent).
EXPERIMENT_ID = "fig6"


def compute(profile: Profile, cache: BenchmarkCache = None,
            benchmarks: List[str] = None) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Throughput per benchmark/fuzzer/size.

    Returns ``{benchmark: {fuzzer: {size_label: execs_per_sec}}}``,
    averaged over ``profile.replicas`` runs.
    """
    cache = cache or BenchmarkCache()
    names = benchmarks or [b.name for b in TABLE2_BENCHMARKS]
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in names:
        built = cache.get(name, profile.scale, profile.seed_scale)
        out[name] = {"afl": {}, "bigmap": {}}
        for fuzzer in ("afl", "bigmap"):
            for size in MAP_SIZES:
                rates = [
                    throughput_probe(name, fuzzer, size, built, profile,
                                     rng_seed=replica).throughput
                    for replica in range(profile.replicas)]
                out[name][fuzzer][MAP_SIZE_LABELS[size]] = \
                    arithmetic_mean(rates)
    return out


def speedup_summary(data: Dict) -> Dict[str, float]:
    """Average BigMap/AFL speedup per map size (the paper's headline)."""
    sums: Dict[str, List[float]] = {label: [] for label in
                                    MAP_SIZE_LABELS.values()}
    for name, fuzzers in data.items():
        for label in sums:
            afl = fuzzers["afl"].get(label, 0.0)
            big = fuzzers["bigmap"].get(label, 0.0)
            if afl > 0:
                sums[label].append(big / afl)
    return {label: arithmetic_mean(vals) for label, vals in sums.items()}


def run(profile: Profile, cache: BenchmarkCache = None,
        benchmarks: List[str] = None) -> str:
    data = compute(profile, cache, benchmarks)
    labels = list(MAP_SIZE_LABELS.values())
    rows = []
    for name, fuzzers in data.items():
        rows.append([name] +
                    [f"{fuzzers['afl'][lbl]:,.0f}" for lbl in labels] +
                    [f"{fuzzers['bigmap'][lbl]:,.0f}" for lbl in labels])
    report = render_table(
        ["Benchmark"] + [f"AFL {l}" for l in labels] +
        [f"BigMap {l}" for l in labels],
        rows,
        title="Figure 6 — throughput (execs/sec), AFL vs BigMap")

    speeds = speedup_summary(data)
    afl_avg = {lbl: arithmetic_mean([f["afl"][lbl]
                                     for f in data.values()])
               for lbl in labels}
    big_avg = {lbl: arithmetic_mean([f["bigmap"][lbl]
                                     for f in data.values()])
               for lbl in labels}
    report += "\n\nAverage speedups (BigMap over AFL):"
    for lbl in labels:
        report += (f"\n  {lbl:>5}: measured {speeds[lbl]:6.2f}x   "
                   f"paper {PAPER_FIG6_AVG_SPEEDUPS[lbl]:5.2f}x   "
                   f"(AFL avg {afl_avg[lbl]:8,.0f}/s, BigMap avg "
                   f"{big_avg[lbl]:8,.0f}/s)")
    return report


def main() -> None:
    print(run(get_profile("default")))


if __name__ == "__main__":
    main()
