"""Table III: the laf-intel + N-gram composition (§V-C).

All 13 LLVM harnesses, with laf-intel applied to the target and N-gram
(N=3) as the coverage metric — *both* configurations use BigMap; the
comparison is 64 kB vs 2 MB maps. The paper's findings:

* the composed metric pushes collision rates to ~79% on 64 kB and down
  to ~7.5% on 2 MB;
* edge coverage is essentially unchanged (insensitive to collisions);
* unique crashes improve by **33%** on average with the big map.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.collision import collision_rate
from ..analysis.reporting import render_table
from ..analysis.throughput import arithmetic_mean
from ..target import TABLE3_BENCHMARKS
from .common import (BenchmarkCache, Profile, discovery_campaign,
                     get_profile)

#: Runner registry id for this experiment (statlint EXP001 keeps the
#: module, the registry and ORDER consistent).
EXPERIMENT_ID = "table3"

TABLE3_MAP_SIZES = (1 << 16, 1 << 21)
_LABELS = {1 << 16: "64kB", 1 << 21: "2MB"}

#: Paper's Table III AVERAGE row for reference.
PAPER_AVERAGE = {"collision_64k": 78.8, "collision_2m": 7.5,
                 "coverage_64k": 333_217, "coverage_2m": 335_387,
                 "crash_64k": 264, "crash_2m": 352}


def compute(profile: Profile, cache: BenchmarkCache = None,
            benchmarks=None) -> List[dict]:
    cache = cache or BenchmarkCache()
    configs = benchmarks or TABLE3_BENCHMARKS
    rows: List[dict] = []
    scale = profile.composition_scale
    for config in configs:
        built = cache.get(config.name, scale, profile.seed_scale)
        row = {"benchmark": config.name}
        for size in TABLE3_MAP_SIZES:
            label = _LABELS[size]
            coverages, crashes, pressures = [], [], []
            for replica in range(profile.replicas):
                result = discovery_campaign(
                    config.name, "bigmap", size, built, profile,
                    metric="ngram3", lafintel=True, rng_seed=replica,
                    compute_true_coverage=True)
                # The paper's coverage column is the *bias-free*
                # evaluation of the output corpus (it exceeds 64k on a
                # 64 kB map, which only an independent build can show).
                coverages.append(float(result.true_edge_coverage))
                crashes.append(float(result.unique_crashes))
                pressures.append(result.used_key or 0)
            row[f"coverage_{label}"] = arithmetic_mean(coverages)
            row[f"crash_{label}"] = arithmetic_mean(crashes)
            row[f"used_{label}"] = int(arithmetic_mean(pressures))
        # Collision rate via Equation 1 from the realized key pressure.
        # The 2 MB run's used_key is the better pressure estimate: the
        # 64 kB map saturates and under-counts its own pressure.
        pressure = row["used_2MB"]
        for size in TABLE3_MAP_SIZES:
            row[f"collision_{_LABELS[size]}"] = \
                100.0 * collision_rate(size, pressure)
        rows.append(row)
    return rows


def run(profile: Profile, cache: BenchmarkCache = None) -> str:
    rows = compute(profile, cache)
    table_rows = []
    for r in rows:
        table_rows.append([
            r["benchmark"],
            f"{r['collision_64kB']:.1f}", f"{r['collision_2MB']:.1f}",
            f"{r['coverage_64kB']:,.0f}", f"{r['coverage_2MB']:,.0f}",
            f"{r['crash_64kB']:.0f}", f"{r['crash_2MB']:.0f}"])
    avg = {key: arithmetic_mean([r[key] for r in rows])
           for key in ("collision_64kB", "collision_2MB",
                       "coverage_64kB", "coverage_2MB",
                       "crash_64kB", "crash_2MB")}
    table_rows.append([
        "AVERAGE", f"{avg['collision_64kB']:.1f}",
        f"{avg['collision_2MB']:.1f}", f"{avg['coverage_64kB']:,.0f}",
        f"{avg['coverage_2MB']:,.0f}", f"{avg['crash_64kB']:.0f}",
        f"{avg['crash_2MB']:.0f}"])
    report = render_table(
        ["Benchmark (laf+ngram)", "Coll% 64kB", "Coll% 2MB",
         "Edges 64kB", "Edges 2MB", "Crash 64kB", "Crash 2MB"],
        table_rows,
        title="Table III — laf-intel + N-gram composition "
              "(both BigMap; scaled targets)")
    crash_gain = (100.0 * (avg["crash_2MB"] / avg["crash_64kB"] - 1.0)
                  if avg["crash_64kB"] else 0.0)
    cov_change = (100.0 * (avg["coverage_2MB"] / avg["coverage_64kB"] - 1)
                  if avg["coverage_64kB"] else 0.0)
    report += (f"\n\nUnique-crash improvement with the 2MB map: "
               f"{crash_gain:+.1f}% (paper: +33%)."
               f"\nEdge-coverage change: {cov_change:+.1f}% "
               f"(paper: ~unchanged, +0.7%).")
    return report


def main() -> None:
    print(run(get_profile("default")))


if __name__ == "__main__":
    main()
