"""Extension experiment: CollAFL alone vs CollAFL + BigMap (§VI).

The paper's related-work claim: CollAFL eliminates collisions by sizing
the map to the *static* edge count, which makes AFL's full-map sweeps
expensive on large binaries — but BigMap "can be used in combination
with CollAFL to completely eliminate collisions while providing more
efficient access". This harness quantifies both halves on an LLVM
benchmark:

* collision counts: afl-edge hashing vs CollAFL static assignment;
* throughput at the CollAFL-required map size: flat AFL vs BigMap.
"""

from __future__ import annotations

from typing import Dict

from ..analysis.collision import collision_rate
from ..analysis.reporting import render_table
from ..fuzzer import Campaign, CampaignConfig
from ..instrumentation import (CollAflInstrumentation,
                               build_instrumentation, required_map_size)
from .common import BenchmarkCache, Profile, get_profile

#: Runner registry id for this experiment (statlint EXP001 keeps the
#: module, the registry and ORDER consistent).
EXPERIMENT_ID = "collafl"

BENCHMARK = "licm"


def compute(profile: Profile, cache: BenchmarkCache = None) -> Dict:
    cache = cache or BenchmarkCache()
    built = cache.get(BENCHMARK, profile.scale, profile.seed_scale)
    program = built.program

    # CollAFL needs the map sized to the static assignment. At reduced
    # scale we size to the materialized program (the full-scale LLVM
    # binary would demand 1 MB+ for its 978k static edges).
    needed = max(program.n_edges, 1)
    collafl_map = 1
    while collafl_map < needed:
        collafl_map <<= 1

    afl_hash = build_instrumentation("afl-edge", program, collafl_map)
    collafl = CollAflInstrumentation(program, collafl_map)

    out: Dict = {
        "benchmark": BENCHMARK,
        "map_size": collafl_map,
        "edges": program.n_edges,
        "hash_expected_collision_pct":
            100 * collision_rate(collafl_map, program.n_edges),
        "hash_realized_distinct": afl_hash.distinct_keys_possible(),
        "collafl_direct_collisions": collafl.direct_collision_count(),
        "collafl_distinct": collafl.distinct_keys_possible(),
    }

    for fuzzer in ("afl", "bigmap"):
        result = Campaign(CampaignConfig(
            benchmark=BENCHMARK, fuzzer=fuzzer, map_size=collafl_map,
            metric="collafl", scale=profile.scale,
            seed_scale=profile.seed_scale, virtual_seconds=1e9,
            max_real_execs=profile.throughput_execs),
            built=built).run()
        out[f"throughput_{fuzzer}"] = result.throughput
    return out


def run(profile: Profile, cache: BenchmarkCache = None) -> str:
    data = compute(profile, cache)
    rows = [
        ["map size (fits static assignment)", f"{data['map_size']:,} B"],
        ["materialized edges", f"{data['edges']:,}"],
        ["afl-edge hashing: expected collision",
         f"{data['hash_expected_collision_pct']:.2f}%"],
        ["afl-edge hashing: distinct keys",
         f"{data['hash_realized_distinct']:,}"],
        ["CollAFL: direct-edge collisions",
         f"{data['collafl_direct_collisions']:,}"],
        ["CollAFL: distinct keys", f"{data['collafl_distinct']:,}"],
        ["CollAFL on flat AFL map: throughput",
         f"{data['throughput_afl']:,.0f}/s"],
        ["CollAFL + BigMap: throughput",
         f"{data['throughput_bigmap']:,.0f}/s"],
        ["combination speedup",
         f"{data['throughput_bigmap'] / data['throughput_afl']:.1f}x"],
    ]
    report = render_table(
        ["Quantity", "Value"], rows,
        title=f"Extension — CollAFL vs CollAFL+BigMap on {BENCHMARK} "
              "(paper §VI)")
    report += ("\n\nReading: CollAFL removes the collisions but forces "
               "a static-assignment-sized map; BigMap removes that "
               "map's per-execution cost. Orthogonal, as the paper "
               "argues.")
    return report


def main() -> None:
    print(run(get_profile("default")))


if __name__ == "__main__":
    main()
