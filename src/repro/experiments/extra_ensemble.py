"""Extension experiment: metric stacking vs ensemble fuzzing (§VI).

The paper contrasts BigMap-enabled *stacking* (laf-intel + N-gram in
one instance, §V-C) with *ensemble* fuzzing (one instance per metric,
periodically cross-pollinating) and names their comparison "an
interesting avenue for future research". This harness runs that
comparison at equal core budgets:

* **stacked**: k identical BigMap instances, each running the composed
  laf-intel + N-gram metric on a 2 MB map;
* **ensemble**: k BigMap instances with *different* metrics (edge,
  N-gram, context, trace-pc-guard), sharing a corpus.

Reported: total executions, union of unique crashes, and the bias-free
edge coverage of the merged corpora.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict

from ..analysis.coverage_eval import evaluate_corpus
from ..analysis.reporting import render_table
from ..fuzzer import CampaignConfig, ParallelSession
from ..target import Executor
from .common import BenchmarkCache, Profile, get_profile

#: Runner registry id for this experiment (statlint EXP001 keeps the
#: module, the registry and ORDER consistent).
EXPERIMENT_ID = "ensemble"

BENCHMARK = "gvn"
ENSEMBLE_METRICS = ("afl-edge", "ngram3", "afl-edge+context",
                    "trace-pc-guard")
MAP_SIZE = 1 << 21


def compute(profile: Profile, cache: BenchmarkCache = None) -> Dict:
    cache = cache or BenchmarkCache()
    scale = profile.composition_scale
    built = cache.get(BENCHMARK, scale, profile.seed_scale)
    k = len(ENSEMBLE_METRICS)
    base = CampaignConfig(
        benchmark=BENCHMARK, fuzzer="bigmap", map_size=MAP_SIZE,
        scale=scale, seed_scale=profile.seed_scale,
        virtual_seconds=profile.campaign_virtual_seconds,
        max_real_execs=max(profile.campaign_max_execs // k, 400))

    stacked = ParallelSession(
        replace(base, metric="ngram3", lafintel=True), k,
        built=built).run()
    ensemble = ParallelSession(
        [replace(base, metric=metric, rng_seed=i * 37)
         for i, metric in enumerate(ENSEMBLE_METRICS)],
        built=built).run()

    executor = Executor(built.program)
    out: Dict = {"k": k}
    for label, summary in (("stacked", stacked),
                           ("ensemble", ensemble)):
        merged = []
        for result in summary.per_instance:
            merged.extend(result.corpus)
        out[label] = {
            "execs": summary.total_execs,
            "crashes": summary.unique_crashes,
            "corpus": len(merged),
        }
        if label == "ensemble":
            out[label]["true_coverage"] = evaluate_corpus(
                built.program, merged, executor=executor)
        else:
            # Stacked instances run the laf-transformed program; their
            # corpus is re-evaluated on it for a fair true count.
            from ..instrumentation import apply_lafintel
            transformed = apply_lafintel(built.program)
            out[label]["true_coverage"] = evaluate_corpus(
                transformed, merged)
    return out


def run(profile: Profile, cache: BenchmarkCache = None) -> str:
    data = compute(profile, cache)
    rows = []
    for label in ("stacked", "ensemble"):
        d = data[label]
        rows.append([label, d["execs"], d["corpus"],
                     d["true_coverage"], d["crashes"]])
    report = render_table(
        ["Strategy", "Total execs", "Corpus", "True edges", "Crashes"],
        rows,
        title=f"Extension — stacked (laf+ngram) vs ensemble fuzzing, "
              f"{data['k']} instances on {BENCHMARK} (paper §VI "
              "future work)")
    report += ("\n\nReading: stacking explores one rich metric deeply "
               "(and is what needs BigMap's large maps); the ensemble "
               "diversifies cheaply but each member sees a coarser "
               "signal. Crash columns decide which wins at this budget.")
    return report


def main() -> None:
    print(run(get_profile("default")))


if __name__ == "__main__":
    main()
