"""Experiment runner CLI: regenerate any table or figure of the paper.

Usage (installed as ``repro-experiments``)::

    repro-experiments --list
    repro-experiments fig6 --profile quick
    repro-experiments fig9 fig10 ensemble --profile quick
    repro-experiments all --profile default --out results/
    repro-experiments all --keep-going --resume --out results/

Each experiment prints a paper-layout text report; ``--out`` also
writes one ``<experiment>.txt`` per report for inclusion in
EXPERIMENTS.md.

Long runs are fault-tolerant and resumable: ``--keep-going`` runs the
remaining experiments when one fails (reporting every failure, exiting
non-zero), and ``--resume`` skips experiments whose report file already
exists under ``--out`` — together they let a multi-hour ``all`` sweep
be re-invoked until it completes without redoing finished work.

Output is funnelled through :class:`~repro.experiments.reporter.Reporter`:
``--quiet`` for one line per experiment, ``--json`` for a
machine-readable record stream. ``--telemetry-dir DIR`` flushes
per-campaign telemetry artifacts (events.jsonl, fuzzer_stats,
plot_data, metrics.json) under DIR for every campaign the selected
experiments run.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Dict, List

from ..core.errors import ExperimentError
from ..core.walltime import Stopwatch
from . import (extra_collafl, extra_dedup_bias, extra_ensemble,
               extra_fault_tolerance, extra_fleet, extra_fleet_chaos,
               fig2_collision, fig3_runtime, fig6_throughput,
               fig7_edge_coverage, fig8_crashes, fig9_scalability,
               fig10_parallel_crashes, table2_benchmarks,
               table3_composition)
from .common import TELEMETRY, BenchmarkCache, Profile, get_profile
from .reporter import JSON, QUIET, TEXT, Reporter

EXPERIMENTS: Dict[str, Callable] = {
    "fig2": fig2_collision.run,
    "fig3": fig3_runtime.run,
    "table2": table2_benchmarks.run,
    "fig6": fig6_throughput.run,
    "fig7": fig7_edge_coverage.run,
    "fig8": fig8_crashes.run,
    "table3": table3_composition.run,
    "fig9": fig9_scalability.run,
    "fig10": fig10_parallel_crashes.run,
    # Extensions beyond the paper's evaluation (see each module's doc).
    "collafl": extra_collafl.run,
    "dedup-bias": extra_dedup_bias.run,
    "ensemble": extra_ensemble.run,
    "fault-tolerance": extra_fault_tolerance.run,
    "fleet": extra_fleet.run,
    "fleet-chaos": extra_fleet_chaos.run,
}

#: Paper order for ``all``.
ORDER = ("fig2", "fig3", "table2", "fig6", "fig7", "fig8", "table3",
         "fig9", "fig10", "collafl", "dedup-bias", "ensemble",
         "fault-tolerance", "fleet", "fleet-chaos")


def run_experiment(name: str, profile: Profile,
                   cache: BenchmarkCache = None) -> str:
    """Run one experiment; failures surface as :class:`ExperimentError`
    with the original exception chained as ``__cause__``."""
    runner = EXPERIMENTS[name]
    try:
        if name in ("fig2", "table2"):
            return runner(profile)
        return runner(profile, cache or BenchmarkCache())
    except ExperimentError:
        raise
    except Exception as exc:
        raise ExperimentError(
            f"experiment {name!r} failed: {exc!r}") from exc


def _resolve_names(requested: List[str],
                   parser: argparse.ArgumentParser) -> List[str]:
    if not requested or "all" in requested:
        return list(ORDER)
    unknown = [n for n in requested if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")
    return requested


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the BigMap paper's tables and figures.")
    parser.add_argument("experiments", nargs="*", default=["all"],
                        metavar="experiment",
                        help="experiment ids (fig2..fig10, table2, "
                             "table3, extensions) or 'all'")
    parser.add_argument("--profile", default="default",
                        choices=["quick", "default", "full"],
                        help="run size: quick (CI smoke), default, full "
                             "(paper scale)")
    parser.add_argument("--out", type=Path, default=None,
                        help="directory to write per-experiment reports")
    parser.add_argument("--keep-going", action="store_true",
                        help="on failure, run the remaining experiments "
                             "and exit non-zero at the end")
    parser.add_argument("--resume", action="store_true",
                        help="skip experiments whose <name>.txt already "
                             "exists under --out")
    parser.add_argument("--list", action="store_true",
                        help="list experiment ids and exit")
    parser.add_argument("--telemetry-dir", type=Path, default=None,
                        metavar="DIR",
                        help="flush per-campaign telemetry artifacts "
                             "under DIR")
    parser.add_argument("--serve", action="store_true",
                        help="with --telemetry-dir: serve the live "
                             "dashboard over DIR while experiments run")
    parser.add_argument("--serve-port", type=int, default=8722,
                        help="--serve listen port; 0 picks a free one "
                             "(default 8722)")
    output = parser.add_mutually_exclusive_group()
    output.add_argument("--quiet", action="store_true",
                        help="one status line per experiment, no "
                             "report bodies")
    output.add_argument("--json", action="store_true",
                        help="emit one JSON record per line instead of "
                             "text reports")
    args = parser.parse_args(argv)

    mode = JSON if args.json else QUIET if args.quiet else TEXT
    reporter = Reporter(mode)

    if args.list:
        for name in ORDER:
            module = sys.modules[EXPERIMENTS[name].__module__]
            summary = (module.__doc__ or "").strip().splitlines()[0]
            reporter.listing(name, summary)
        return 0
    if args.resume and args.out is None:
        parser.error("--resume requires --out (it skips by report file)")

    profile = get_profile(args.profile)
    names = _resolve_names(args.experiments, parser)

    if args.serve and args.telemetry_dir is None:
        parser.error("--serve requires --telemetry-dir (it serves "
                     "that directory)")

    if args.telemetry_dir is not None:
        TELEMETRY.activate(args.telemetry_dir)
    server = None
    if args.serve:
        from ..telemetry.serve.background import BackgroundServer
        server = BackgroundServer(str(args.telemetry_dir),
                                  port=args.serve_port).start()
        reporter.info(f"live dashboard: {server.url}")
    cache = BenchmarkCache()
    failures: List[str] = []
    try:
        for name in names:
            if args.resume and (args.out / f"{name}.txt").exists():
                reporter.skipped(name, "report exists (resume)")
                continue
            watch = Stopwatch()
            try:
                report = run_experiment(name, profile, cache)
            except ExperimentError as exc:
                failures.append(name)
                reporter.failed(name, watch.elapsed(), exc)
                if not args.keep_going:
                    reporter.summary(failures, keep_going=False)
                    return 1
                continue
            reporter.completed(name, profile.name, watch.elapsed(),
                               report)
            if args.out:
                args.out.mkdir(parents=True, exist_ok=True)
                (args.out / f"{name}.txt").write_text(report + "\n")
    finally:
        TELEMETRY.deactivate()
        if server is not None:
            server.stop()
    if args.telemetry_dir is not None:
        reporter.info(f"telemetry artifacts: {args.telemetry_dir}")
    if failures:
        reporter.summary(failures)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
