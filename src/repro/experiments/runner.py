"""Experiment runner CLI: regenerate any table or figure of the paper.

Usage (installed as ``repro-experiments``)::

    repro-experiments --list
    repro-experiments fig6 --profile quick
    repro-experiments all --profile default --out results/

Each experiment prints a paper-layout text report; ``--out`` also
writes one ``<experiment>.txt`` per report for inclusion in
EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Dict

from . import (extra_collafl, extra_dedup_bias, extra_ensemble,
               fig2_collision, fig3_runtime, fig6_throughput,
               fig7_edge_coverage, fig8_crashes, fig9_scalability,
               fig10_parallel_crashes, table2_benchmarks,
               table3_composition)
from .common import BenchmarkCache, Profile, get_profile

EXPERIMENTS: Dict[str, Callable] = {
    "fig2": fig2_collision.run,
    "fig3": fig3_runtime.run,
    "table2": table2_benchmarks.run,
    "fig6": fig6_throughput.run,
    "fig7": fig7_edge_coverage.run,
    "fig8": fig8_crashes.run,
    "table3": table3_composition.run,
    "fig9": fig9_scalability.run,
    "fig10": fig10_parallel_crashes.run,
    # Extensions beyond the paper's evaluation (see each module's doc).
    "collafl": extra_collafl.run,
    "dedup-bias": extra_dedup_bias.run,
    "ensemble": extra_ensemble.run,
}

#: Paper order for ``all``.
ORDER = ("fig2", "fig3", "table2", "fig6", "fig7", "fig8", "table3",
         "fig9", "fig10", "collafl", "dedup-bias", "ensemble")


def run_experiment(name: str, profile: Profile,
                   cache: BenchmarkCache = None) -> str:
    runner = EXPERIMENTS[name]
    if name in ("fig2", "table2"):
        return runner(profile)
    return runner(profile, cache or BenchmarkCache())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the BigMap paper's tables and figures.")
    parser.add_argument("experiment", nargs="?", default="all",
                        help="experiment id (fig2..fig10, table2, "
                             "table3) or 'all'")
    parser.add_argument("--profile", default="default",
                        choices=["quick", "default", "full"],
                        help="run size: quick (CI smoke), default, full "
                             "(paper scale)")
    parser.add_argument("--out", type=Path, default=None,
                        help="directory to write per-experiment reports")
    parser.add_argument("--list", action="store_true",
                        help="list experiment ids and exit")
    args = parser.parse_args(argv)

    if args.list:
        for name in ORDER:
            print(name)
        return 0

    profile = get_profile(args.profile)
    names = list(ORDER) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")

    cache = BenchmarkCache()
    for name in names:
        start = time.time()
        report = run_experiment(name, profile, cache)
        elapsed = time.time() - start
        banner = (f"\n{'=' * 72}\n{name}  (profile={profile.name}, "
                  f"{elapsed:.1f}s)\n{'=' * 72}")
        print(banner)
        print(report)
        if args.out:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / f"{name}.txt").write_text(report + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
