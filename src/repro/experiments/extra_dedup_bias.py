"""Extension experiment: AFL's crash dedup is biased by map size (§V-A3).

The paper replaces AFL's built-in unique-crash counting with Crashwalk
because the built-in mechanism "requires maintaining a local and global
crash-coverage bitmap, making it inherently biased towards larger
maps". This harness runs the same campaigns at several map sizes and
reports both counters side by side: the Crashwalk count reflects actual
distinct bugs; AFL's count inflates/deflates with the map.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.reporting import render_table
from .common import (MAP_SIZE_LABELS, MAP_SIZES, BenchmarkCache, Profile,
                     discovery_campaign, get_profile)

#: Runner registry id for this experiment (statlint EXP001 keeps the
#: module, the registry and ORDER consistent).
EXPERIMENT_ID = "dedup-bias"

BENCHMARKS = ("licm", "gvn")


def compute(profile: Profile, cache: BenchmarkCache = None,
            benchmarks=None) -> List[Dict]:
    cache = cache or BenchmarkCache()
    rows: List[Dict] = []
    for name in benchmarks or BENCHMARKS:
        built = cache.get(name, profile.scale, profile.seed_scale)
        for size in MAP_SIZES:
            result = discovery_campaign(name, "bigmap", size, built,
                                        profile)
            rows.append({
                "benchmark": name,
                "map": MAP_SIZE_LABELS[size],
                "crashwalk": result.unique_crashes,
                "afl_dedup": result.afl_unique_crashes,
                "bias": (result.afl_unique_crashes -
                         result.unique_crashes),
            })
    return rows


def run(profile: Profile, cache: BenchmarkCache = None) -> str:
    rows = compute(profile, cache)
    report = render_table(
        ["Benchmark", "Map", "Crashwalk unique", "AFL dedup", "Bias"],
        [[r["benchmark"], r["map"], r["crashwalk"], r["afl_dedup"],
          f"{r['bias']:+d}"] for r in rows],
        title="Extension — crash-dedup bias vs map size "
              "(same campaigns, two counters)")
    report += ("\n\nReading: the Crashwalk column depends only on which "
               "bugs were hit; the AFL column additionally depends on "
               "the map, which is why the paper does not use it for "
               "cross-map comparisons.")
    return report


def main() -> None:
    print(run(get_profile("default")))


if __name__ == "__main__":
    main()
