"""Figure 8: unique crashes vs map size on the LLVM benchmarks.

Crash counts (Crashwalk-deduplicated) from budgeted campaigns on the
six LLVM Table II benchmarks, for AFL and BigMap across the four map
sizes. The paper's shape:

* AFL peaks at **256 kB** — 64 kB loses crashes to collisions, 2 MB and
  8 MB lose them to throughput collapse;
* BigMap has no such trade-off (big map, no penalty), so it dominates
  at large sizes, making the "optimal map size oracle" unnecessary.
"""

from __future__ import annotations

from typing import Dict

from ..analysis.reporting import render_table
from ..analysis.throughput import arithmetic_mean
from ..target.benchmarks import FIG8_BENCHMARK_NAMES
from .common import (MAP_SIZE_LABELS, MAP_SIZES, BenchmarkCache, Profile,
                     discovery_campaign, get_profile)

#: Runner registry id for this experiment (statlint EXP001 keeps the
#: module, the registry and ORDER consistent).
EXPERIMENT_ID = "fig8"


def compute(profile: Profile, cache: BenchmarkCache = None,
            benchmarks=None) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Unique crashes per benchmark/fuzzer/size (replica-averaged)."""
    cache = cache or BenchmarkCache()
    names = benchmarks or FIG8_BENCHMARK_NAMES
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in names:
        built = cache.get(name, profile.scale, profile.seed_scale)
        out[name] = {"afl": {}, "bigmap": {}}
        for fuzzer in ("afl", "bigmap"):
            for size in MAP_SIZES:
                counts = []
                for replica in range(profile.replicas):
                    result = discovery_campaign(
                        name, fuzzer, size, built, profile,
                        rng_seed=replica)
                    counts.append(float(result.unique_crashes))
                out[name][fuzzer][MAP_SIZE_LABELS[size]] = \
                    arithmetic_mean(counts)
    return out


def run(profile: Profile, cache: BenchmarkCache = None) -> str:
    data = compute(profile, cache)
    labels = list(MAP_SIZE_LABELS.values())
    rows = []
    for name, fuzzers in data.items():
        for fuzzer in ("afl", "bigmap"):
            rows.append([f"{name} ({fuzzer})"] +
                        [f"{fuzzers[fuzzer][lbl]:.1f}" for lbl in labels])
    report = render_table(
        ["Benchmark (fuzzer)"] + labels, rows,
        title="Figure 8 — unique crashes (Crashwalk dedup) vs map size, "
              "LLVM benchmarks")
    afl_avg = {lbl: arithmetic_mean([f["afl"][lbl]
                                     for f in data.values()])
               for lbl in labels}
    big_avg = {lbl: arithmetic_mean([f["bigmap"][lbl]
                                     for f in data.values()])
               for lbl in labels}
    best_afl = max(afl_avg, key=afl_avg.get)
    report += (f"\n\nAFL average crashes per size: " +
               ", ".join(f"{l}={afl_avg[l]:.1f}" for l in labels) +
               f"  (best at {best_afl}; paper: best at 256k)")
    report += ("\nBigMap average crashes per size: " +
               ", ".join(f"{l}={big_avg[l]:.1f}" for l in labels))
    return report


def main() -> None:
    print(run(get_profile("default")))


if __name__ == "__main__":
    main()
