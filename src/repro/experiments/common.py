"""Shared machinery for the experiment harnesses.

Each ``figN_*.py`` / ``tableN_*.py`` module regenerates one table or
figure of the paper. They share:

* the paper's four map sizes;
* run *profiles* — ``full`` approximates the paper's scale (hours of
  wall time across all experiments), ``quick`` shrinks benchmarks,
  budgets and exec caps for CI-speed smoke runs (minutes). Profile
  parameters, and the resulting deviations from the paper's absolute
  numbers, are documented in EXPERIMENTS.md;
* a built-benchmark cache, so one program generation serves every
  configuration of an experiment.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..fuzzer import Campaign, CampaignConfig
from ..fuzzer.stats import CampaignResult
from ..target import BuiltBenchmark, get_benchmark
from ..telemetry.recorder import TelemetryRecorder

#: The paper's map sizes (§V-B).
MAP_SIZES: Tuple[int, ...] = (1 << 16, 1 << 18, 1 << 21, 1 << 23)
MAP_SIZE_LABELS: Dict[int, str] = {
    1 << 16: "64k", 1 << 18: "256k", 1 << 21: "2M", 1 << 23: "8M"}

#: Paper-reported average speedups for Figure 6 (BigMap over AFL).
PAPER_FIG6_AVG_SPEEDUPS: Dict[str, float] = {
    "64k": 0.98, "256k": 1.4, "2M": 4.5, "8M": 33.1}


@dataclass(frozen=True)
class Profile:
    """Experiment sizing knobs.

    Attributes:
        name: profile name.
        scale: benchmark edge-count scaling (1.0 = Table II sizes).
        seed_scale: seed-corpus scaling.
        throughput_execs: executions used for a throughput probe.
        campaign_virtual_seconds: virtual budget for discovery/crash
            campaigns (the paper's is 86,400 = 24 h).
        campaign_max_execs: real-execution cap per campaign.
        composition_scale: extra shrink for the (much larger)
            laf-intel + N-gram Table III programs.
        replicas: independent runs averaged per configuration (the
            paper averages three).
    """

    name: str
    scale: float
    seed_scale: float
    throughput_execs: int
    campaign_virtual_seconds: float
    campaign_max_execs: int
    composition_scale: float
    replicas: int


PROFILES: Dict[str, Profile] = {
    "quick": Profile(name="quick", scale=0.05, seed_scale=0.02,
                     throughput_execs=400,
                     campaign_virtual_seconds=2.0,
                     campaign_max_execs=3_000,
                     composition_scale=0.02, replicas=1),
    "default": Profile(name="default", scale=0.25, seed_scale=0.10,
                       throughput_execs=1_500,
                       campaign_virtual_seconds=20.0,
                       campaign_max_execs=25_000,
                       composition_scale=0.20, replicas=1),
    "full": Profile(name="full", scale=1.0, seed_scale=0.25,
                    throughput_execs=3_000,
                    campaign_virtual_seconds=60.0,
                    campaign_max_execs=60_000,
                    composition_scale=0.50, replicas=3),
}


def get_profile(name: str) -> Profile:
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(f"unknown profile {name!r}; known: "
                         f"{', '.join(PROFILES)}") from None


class TelemetryContext:
    """Process-wide telemetry switch for the experiment harnesses.

    The figure modules call :func:`throughput_probe` and
    :func:`discovery_campaign` through many layers; rather than thread
    a recorder argument through every experiment signature, the runner
    activates this context (``--telemetry-dir``) and the two campaign
    helpers consult it. Each campaign gets its own recorder and flushes
    its artifacts into a sequence-numbered directory under the root —
    the sequence number keeps repeated configurations (replicas) apart
    and, because experiments run in a deterministic order, two runs of
    the same invocation produce identical directory layouts.
    """

    def __init__(self) -> None:
        self.root: Optional[str] = None
        self._seq = 0

    @property
    def active(self) -> bool:
        return self.root is not None

    def activate(self, root) -> None:
        self.root = os.fspath(root)
        self._seq = 0

    def deactivate(self) -> None:
        self.root = None
        self._seq = 0

    def recorder_for(self, benchmark: str, fuzzer: str, map_size: int,
                     rng_seed: int
                     ) -> Tuple[Optional[TelemetryRecorder],
                                Optional[str]]:
        """A (recorder, flush directory) pair, or (None, None)."""
        if self.root is None:
            return None, None
        self._seq += 1
        directory = os.path.join(
            self.root,
            f"{self._seq:04d}-{benchmark}-{fuzzer}-{map_size}"
            f"-s{rng_seed}")
        return TelemetryRecorder(instance=0), directory


#: The runner's (and tests') single activation point.
TELEMETRY = TelemetryContext()


def _run_with_telemetry(config: CampaignConfig,
                        built: BuiltBenchmark) -> CampaignResult:
    """Run one campaign, flushing telemetry if the context is active."""
    recorder, directory = TELEMETRY.recorder_for(
        config.benchmark, config.fuzzer, config.map_size,
        config.rng_seed)
    result = Campaign(config, built=built, telemetry=recorder).run()
    if recorder is not None:
        recorder.flush(directory)
    return result


class BenchmarkCache:
    """Builds each (benchmark, scale, seed_scale) combination once."""

    def __init__(self) -> None:
        self._cache: Dict[Tuple[str, float, float], BuiltBenchmark] = {}

    def get(self, name: str, scale: float,
            seed_scale: float) -> BuiltBenchmark:
        key = (name, scale, seed_scale)
        if key not in self._cache:
            self._cache[key] = get_benchmark(name).build(
                scale, seed_scale=seed_scale)
        return self._cache[key]


def throughput_probe(benchmark: str, fuzzer: str, map_size: int,
                     built: BuiltBenchmark, profile: Profile, *,
                     metric: str = "afl-edge", lafintel: bool = False,
                     rng_seed: int = 0,
                     merged: bool = True) -> CampaignResult:
    """Short campaign measuring steady-state throughput.

    The probe runs a fixed number of executions (identical for every
    configuration) under a generous virtual budget; throughput is the
    model-derived execs per virtual second.
    """
    config = CampaignConfig(
        benchmark=benchmark, fuzzer=fuzzer, map_size=map_size,
        metric=metric, lafintel=lafintel, scale=profile.scale,
        seed_scale=profile.seed_scale,
        virtual_seconds=1e9,  # the exec cap is the binding limit
        max_real_execs=profile.throughput_execs, rng_seed=rng_seed,
        merged_classify_compare=merged)
    return _run_with_telemetry(config, built)


def discovery_campaign(benchmark: str, fuzzer: str, map_size: int,
                       built: BuiltBenchmark, profile: Profile, *,
                       metric: str = "afl-edge", lafintel: bool = False,
                       rng_seed: int = 0,
                       compute_true_coverage: bool = False,
                       virtual_seconds: Optional[float] = None
                       ) -> CampaignResult:
    """Budgeted campaign for coverage/crash experiments."""
    config = CampaignConfig(
        benchmark=benchmark, fuzzer=fuzzer, map_size=map_size,
        metric=metric, lafintel=lafintel, scale=profile.scale,
        seed_scale=profile.seed_scale,
        virtual_seconds=virtual_seconds or
        profile.campaign_virtual_seconds,
        max_real_execs=profile.campaign_max_execs, rng_seed=rng_seed,
        compute_true_coverage=compute_true_coverage)
    return _run_with_telemetry(config, built)


def averaged(values) -> float:
    vals = list(values)
    return sum(vals) / len(vals) if vals else 0.0
