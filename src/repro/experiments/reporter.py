"""Single output funnel for the experiments runner.

Every human-facing line the runner produces goes through one
:class:`Reporter`, so output policy lives in exactly one place instead
of scattered ``print()`` calls:

* ``text`` — the classic banners-and-reports stream;
* ``quiet`` — one status line per experiment, no report bodies;
* ``json`` — one canonically encoded JSON object per line
  (``sort_keys``, machine-consumable), the mode telemetry pipelines
  ingest.

Failures and tracebacks go to the error stream in every mode — a CI
log must show *why* an experiment failed even when stdout is a JSON
stream another tool is parsing.
"""

from __future__ import annotations

import json
import sys
import traceback
from typing import List, Optional, TextIO

TEXT = "text"
QUIET = "quiet"
JSON = "json"

MODES = (TEXT, QUIET, JSON)


class Reporter:
    """Runner output in one of three modes (see module docstring)."""

    def __init__(self, mode: str = TEXT,
                 stream: Optional[TextIO] = None,
                 err_stream: Optional[TextIO] = None) -> None:
        if mode not in MODES:
            raise ValueError(f"unknown reporter mode {mode!r}; "
                             f"known: {', '.join(MODES)}")
        self.mode = mode
        self.stream = stream if stream is not None else sys.stdout
        self.err_stream = (err_stream if err_stream is not None
                           else sys.stderr)

    # -- plumbing ------------------------------------------------------

    def _line(self, text: str, err: bool = False) -> None:
        print(text, file=self.err_stream if err else self.stream)

    def _record(self, kind: str, **fields) -> None:
        record = {"kind": kind}
        record.update(fields)
        self._line(json.dumps(record, sort_keys=True))

    # -- runner events -------------------------------------------------

    def listing(self, name: str, summary: str) -> None:
        if self.mode == JSON:
            self._record("experiment", name=name, summary=summary)
        else:
            self._line(f"{name:<16} {summary}")

    def skipped(self, name: str, reason: str) -> None:
        if self.mode == JSON:
            self._record("skip", name=name, reason=reason)
        else:
            self._line(f"[skip] {name}: {reason}")

    def completed(self, name: str, profile: str, elapsed: float,
                  report: str) -> None:
        if self.mode == JSON:
            self._record("completed", name=name, profile=profile,
                         elapsed_seconds=round(elapsed, 3),
                         report=report)
        elif self.mode == QUIET:
            self._line(f"[ok]   {name} ({elapsed:.1f}s)")
        else:
            rule = "=" * 72
            self._line(f"\n{rule}\n{name}  (profile={profile}, "
                       f"{elapsed:.1f}s)\n{rule}")
            self._line(report)

    def failed(self, name: str, elapsed: float,
               exc: BaseException) -> None:
        if self.mode == JSON:
            self._record("failed", name=name,
                         elapsed_seconds=round(elapsed, 3),
                         error=repr(exc))
        elif self.mode == QUIET:
            self._line(f"[FAIL] {name} ({elapsed:.1f}s)")
        else:
            rule = "=" * 72
            self._line(f"\n{rule}\n{name}  FAILED after {elapsed:.1f}s"
                       f"\n{rule}", err=True)
        traceback.print_exception(type(exc), exc, exc.__traceback__,
                                  file=self.err_stream)

    def summary(self, failures: List[str],
                keep_going: bool = True) -> None:
        if not failures:
            return
        if self.mode == JSON:
            self._record("summary", failed=list(failures))
        hint = "" if keep_going else " (use --keep-going to run the rest)"
        self._line(f"\n{len(failures)} experiment(s) failed: "
                   f"{', '.join(failures)}{hint}", err=True)

    def info(self, text: str) -> None:
        """Incidental status (telemetry paths, resume notes)."""
        if self.mode == JSON:
            self._record("info", message=text)
        else:
            self._line(text)
