"""Extension experiment: deterministic recovery under fleet chaos.

The crash-safety contract (DESIGN.md §10) promises that a fleet which
loses its dispatcher, its workers, its on-disk artifacts, and its store
writes — and recovers through resume reconciliation, checkpoint retry,
quarantine, and bounded IO retry — lands **bit-identical** trial
results and statistics to an undisturbed run. This harness is the
contract's executable form: it runs the same fleet spec twice on the
deterministic in-process backend,

1. *reference* — no chaos beyond the plan's worker faults (which are
   part of the spec either way), uninterrupted;
2. *chaos* — under a seeded :class:`repro.faults.FleetFaultPlan` that
   kills the dispatcher mid-fleet (twice), corrupts and truncates
   checkpoints, and injects transient store lock errors, with
   :func:`repro.fleet.run_fleet_with_chaos` resuming through each
   dispatcher death;

and then asserts that trial identity + result columns and the rendered
statistical report (Mann-Whitney p-values, Â₁₂ effect sizes, bootstrap
CIs) are equal byte for byte. Only the ``attempts`` bookkeeping column
may differ — an interrupted trial legitimately took more dispatches.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.errors import ExperimentError
from ..faults.fleetplan import (ARTIFACT_CORRUPT, ARTIFACT_TRUNCATE,
                                DISPATCHER_KILL, STORE_LOCK,
                                WORKER_KILL, FleetFaultEvent,
                                FleetFaultPlan)
from ..fleet import (ChaosController, FleetSpec, ResultsStore,
                     render_report, run_fleet, run_fleet_with_chaos)
from .common import BenchmarkCache, Profile, get_profile

#: Runner registry id for this experiment (statlint EXP001 keeps the
#: module, the registry and ORDER consistent).
EXPERIMENT_ID = "fleet-chaos"

BENCHMARK = "zlib"
FUZZERS = ("afl", "bigmap")
MAP_SIZE = 1 << 16

#: Row slices of the trials table: identity (trial id through rng
#: seed + status) and result metrics. Column 7 — ``attempts`` — sits
#: between them and is excluded on purpose: retry bookkeeping is the
#: one column chaos is *allowed* to change.
IDENT_COLUMNS = slice(0, 7)
RESULT_COLUMNS = slice(8, None)


def _spec(profile: Profile, n_trials: int) -> FleetSpec:
    return FleetSpec(
        fuzzers=FUZZERS, benchmarks=(BENCHMARK,),
        map_sizes=(MAP_SIZE,), n_trials=n_trials,
        scale=profile.scale, seed_scale=profile.seed_scale,
        virtual_seconds=profile.campaign_virtual_seconds,
        max_real_execs=profile.campaign_max_execs)


def _plan(n_trials_expanded: int) -> FleetFaultPlan:
    """The chaos schedule: every fault family the contract covers,
    fixed ticks so the experiment reproduces bit-identically.

    The tick choreography matters: trial 1's worker dies after writing
    its segment-1 checkpoint, so a checkpoint *exists* when the
    artifact-corrupt/truncate events target it — and trial 1 is still
    owed a retry dispatch, so the damaged checkpoint *will be read*,
    forcing the quarantine → from-scratch-rerun recovery path (which
    determinism makes result-identical to a checkpoint resume).
    """
    return FleetFaultPlan([
        FleetFaultEvent(at_tick=1, kind=WORKER_KILL, trial=1,
                        at_segment=1),
        FleetFaultEvent(at_tick=2, kind=DISPATCHER_KILL),
        FleetFaultEvent(at_tick=4, kind=STORE_LOCK, lock_count=2),
        FleetFaultEvent(at_tick=5, kind=ARTIFACT_CORRUPT, trial=1),
        FleetFaultEvent(at_tick=6, kind=DISPATCHER_KILL),
        FleetFaultEvent(at_tick=7, kind=ARTIFACT_TRUNCATE, trial=1),
    ])


def _comparable(store: ResultsStore) -> List[Tuple]:
    return [tuple(row)[IDENT_COLUMNS] + tuple(row)[RESULT_COLUMNS]
            for row in store.trial_rows()]


def compute(profile: Profile, cache: BenchmarkCache = None) -> Dict:
    n_trials = 3 if profile.name == "quick" else max(3, profile.replicas * 3)
    spec = _spec(profile, n_trials)
    plan = _plan(spec.n_expanded)

    # The reference run carries the plan's worker faults too (they are
    # lowered into the spec, i.e. part of the experiment definition);
    # the chaos-only delta is dispatcher kills + artifact damage +
    # store lock errors, which must all be absorbed without a trace.
    lowered = ChaosController(plan).lower_onto(spec)
    ref_store = ResultsStore()
    ref_summary = run_fleet(lowered, store=ref_store, measure=False)

    chaos_store = ResultsStore()
    outcome = run_fleet_with_chaos(spec, plan, store=chaos_store,
                                   measure=False)

    if outcome.dispatcher_restarts < 2:
        raise ExperimentError(
            f"chaos plan was supposed to kill the dispatcher twice, "
            f"observed {outcome.dispatcher_restarts} restarts")
    if outcome.summary.store_retries < 1:
        raise ExperimentError(
            "injected store lock errors were never retried — the "
            "store-lock fault did not reach the retry path")
    incidents = (outcome.summary.integrity_events +
                 outcome.summary.quarantined_artifacts)
    if incidents < 1:
        raise ExperimentError(
            "injected artifact damage was never detected — the "
            "corruption events missed every read path")
    rows_equal = _comparable(ref_store) == _comparable(chaos_store)
    ref_report = render_report(ref_store, lowered)
    chaos_report = render_report(chaos_store, lowered)
    return {
        "spec": lowered, "plan": plan,
        "ref_store": ref_store, "chaos_store": chaos_store,
        "ref_summary": ref_summary, "outcome": outcome,
        "rows_equal": rows_equal,
        "reports_equal": ref_report == chaos_report,
        "report": chaos_report,
    }


def run(profile: Profile, cache: BenchmarkCache = None) -> str:
    data = compute(profile, cache)
    outcome = data["outcome"]
    summary = outcome.summary
    if not data["rows_equal"]:
        raise ExperimentError(
            "chaos run's trial rows differ from the reference run — "
            "the crash-safety contract is broken")
    if not data["reports_equal"]:
        raise ExperimentError(
            "chaos run's statistical report differs from the "
            "reference run — the crash-safety contract is broken")
    header = (
        f"Extension — fleet chaos: {summary.completed}/"
        f"{summary.n_trials} trials through "
        f"{outcome.dispatcher_restarts} dispatcher kill(s), "
        f"{outcome.events_fired} chaos events, "
        f"{summary.store_retries} store IO retries, "
        f"{summary.quarantined_artifacts + summary.integrity_events} "
        f"artifact integrity incidents — trial rows and statistics "
        f"bit-identical to the uninterrupted reference run\n\n")
    footer = (
        "\n\nReading: the dispatcher was killed mid-fleet and resumed "
        "from the results store's durable trial state machine; "
        "corrupted/truncated checkpoints were caught by their "
        "integrity seals and quarantined; transient store lock errors "
        "were absorbed by bounded seeded-jitter retry. Every p-value, "
        "A12 and bootstrap CI above matches the uninterrupted run "
        "byte for byte (attempt counters excepted, by design).")
    for store in (data["ref_store"], data["chaos_store"]):
        store.close()
    return header + data["report"] + footer


def main() -> None:
    print(run(get_profile("default")))


if __name__ == "__main__":
    main()
